"""E6 — querying hidden (Deep Web) sources without instance access.

Paper anchor: the abstract ("hidden data sources such as those found in
the Deep Web") and the wrapper section ("the ability to query full
accessible databases and databases which provide a reduced access").

Compares, per scenario, full access vs the hidden-source wrapper (regex /
datatype / ontology evidence only, uniform join weights, SQL executed
through the endpoint). Expected shape: hidden mode loses quality — it is
working from schema metadata alone — but remains usable, which no
index-based competitor can do at all (their row would be all zeros).
"""

from __future__ import annotations

import pytest

from benchmarks._common import all_scenarios, print_banner, scenario
from repro.core import Quest, QuestSettings
from repro.eval import evaluate, format_results, quest_engine
from repro.wrapper import FullAccessWrapper, HiddenSourceWrapper


def hidden_engine(db) -> Quest:
    wrapper = HiddenSourceWrapper(db.schema, remote_db=db)
    settings = QuestSettings(
        mutual_information_weights=False,
        uncertainty_backward=0.5,
    )
    return Quest(wrapper, settings)


def run_e6() -> str:
    summaries, labels = [], []
    for sc in all_scenarios(queries_per_kind=3):
        for label, engine in (
            ("full-access", Quest(FullAccessWrapper(sc.db))),
            ("hidden-source", hidden_engine(sc.db)),
        ):
            result = evaluate(quest_engine(engine), sc.workload, k=10)
            summaries.append(result.summary())
            labels.append(f"{sc.name}/{label}")
    return format_results(
        summaries, labels, title="E6 full access vs Deep Web wrapper"
    )


@pytest.mark.benchmark(group="e6")
def test_e6_hidden_sources(benchmark):
    print_banner("E6", "keyword search over hidden sources (Deep Web)")
    print(run_e6())

    sc = scenario("mondial")
    engine = hidden_engine(sc.db)
    query = sc.workload.queries[0].text
    benchmark(lambda: engine.search(query, 10))
