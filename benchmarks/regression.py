"""Perf-regression harness over the E7 micro workload.

Measures two groups per kernel set (``optimized`` = the default numeric
kernels; ``reference`` = the retained pure-Python paths via
``QuestSettings.reference_kernels()``):

* **kernels** — List Viterbi, top-k Steiner, Dreyfus-Wagner, KMB and
  Dempster combination micro-timings. These are storage-backend
  independent (they never touch the backend) and are measured once.
* **cold_search** — a fresh-engine ``search_many`` pass per storage
  backend (cold caches), with per-stage trace seconds and cache counters.
* **index** — full-text index lifecycle on a larger (imdb) instance:
  ``fulltext-build`` (cold build + seal; columnar vs dict layout) and
  ``fulltext-load`` (re-attaching the saved ``.npz`` artifact, the
  warm-process path that skips the build). The artifact lives in
  ``--index-cache`` so CI can carry it between steps/runs.
* **batch_throughput** — ``search_many`` wall time serial vs forked
  process-pool (``workers-N``), with queries/sec. Recorded, not gated:
  the win depends on the runner's core count (reported alongside).
* **service_throughput** — concurrent ``QuestService`` wall time over a
  warm engine: N threads replaying the workload with request coalescing
  off vs on (an identical-query storm collapses onto one pipeline run
  per burst), with requests/sec and the service's own executed/coalesced
  counters. Recorded, not gated (thread scheduling is runner-dependent).
* **serving_storm** — the preforked HTTP tier end to end: per-worker
  warm-start seconds (mmap-attaching the shared ``.npz`` artifact vs
  rebuilding the index from rows), then a real fleet (2 forked workers
  on one listener) stormed by concurrent HTTP clients. Requests/sec,
  p50/p95 latency and the single-process in-memory baseline are
  recorded, not gated (1-cpu runners serve slower than they search);
  the two hard claims are that every storm response is 200 and that
  every worker's ranking is byte-identical to a direct in-process
  ``QuestService`` call over the same artifact.

``--profile`` skips measurement entirely and prints a per-stage cProfile
(top 20 by cumulative time) of one cold query instead, so the next
optimisation PR starts from data.

Each entry records raw runs, the median and the minimum. Results land in
``BENCH_e7.json``; the committed file is the baseline. With a baseline
present the harness compares and exits non-zero on regression:

* default (absolute) mode: an entry regresses when its current optimized
  *median* exceeds the baseline optimized median by more than
  ``--tolerance`` (meaningful when baseline and current run on the same
  machine);
* ``--relative`` mode (CI): an entry regresses when its *speedup ratio*
  (reference / optimized, computed from per-entry **minimums** — the
  noise-robust estimator) falls more than ``--tolerance`` below the
  baseline's ratio. Ratios cancel machine speed, minimums cancel runner
  jitter; a missing baseline is a hard error here, never a green gate.

It also reports the headline number the optimisation PR is accountable
for: the cold-query speedup of the current optimized run against the
committed baseline's reference kernels.

Usage::

    python benchmarks/regression.py                   # measure + compare
    python benchmarks/regression.py --update-baseline # refresh BENCH_e7.json
    python benchmarks/regression.py --smoke --relative  # CI
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks._common import scenario  # noqa: E402
from repro.core import Quest, QuestSettings  # noqa: E402
from repro.datasets import imdb  # noqa: E402
from repro.db import Catalog, ColumnRef  # noqa: E402
from repro.db.fulltext import FullTextIndex  # noqa: E402
from repro.dst import combine_scores  # noqa: E402
from repro.hmm import list_viterbi  # noqa: E402
from repro.pipeline.context import SearchContext  # noqa: E402
from repro.steiner import (  # noqa: E402
    approximate_steiner_tree,
    build_schema_graph,
    exact_steiner_tree,
    top_k_steiner_trees,
)
from repro.storage import create_backend  # noqa: E402
from repro.wrapper import FullAccessWrapper  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_e7.json"
KERNELSETS = ("optimized", "reference")
#: The headline entry the ≥2x acceptance criterion is measured on.
COLD_SEARCH_ENTRY = "cold-search per-query"
#: Entries whose minimums sit below this are timer noise on CI runners;
#: they are reported but never fail the comparison.
NOISE_FLOOR_S = 0.002


#: Scale of the index-lifecycle measurements: large enough that the
#: build-vs-load gap reflects real row counts, small enough for CI.
INDEX_SCALE = {"movies": 1000, "seed": 7}
#: Fork width of the parallel batch-throughput entry. At least 2 so the
#: fork machinery is always exercised and honestly timed — on a 1-cpu
#: machine that records a slowdown, which is the truth of the matter
#: (the entry reports the cpu count alongside and is never gated).
BATCH_WORKERS = max(2, min(4, os.cpu_count() or 1))
#: Thread count of the service-throughput storm (the acceptance
#: criterion's ">= 8 concurrent callers" scenario).
SERVICE_THREADS = 8


def _settings(optimized: bool, columnar: bool = True) -> QuestSettings:
    if not optimized:
        return QuestSettings.reference_kernels()
    return QuestSettings(columnar_index=columnar)


def _stats_of(runs: list[float]) -> dict[str, object]:
    return {"median_s": statistics.median(runs), "min_s": min(runs), "runs": runs}


def _measure_pair(
    variants: dict[str, object], repeats: int
) -> dict[str, dict[str, object]]:
    """Interleaved timing of the kernelset variants of one entry.

    Each repetition times every variant back to back, so a load transient
    (CPU throttling, a noisy CI neighbour) hits both kernel sets alike and
    cancels out of the speedup ratio — measuring each set in its own
    contiguous block is exactly how a mid-suite slowdown poisons one side
    only. One warmup per variant precedes the timed repetitions.
    """
    for fn in variants.values():
        fn()
    runs: dict[str, list[float]] = {kernelset: [] for kernelset in variants}
    for _ in range(repeats):
        for kernelset, fn in variants.items():
            start = time.perf_counter()
            fn()
            runs[kernelset].append(time.perf_counter() - start)
    return {kernelset: _stats_of(times) for kernelset, times in runs.items()}


def _kernel_measurements(sc) -> dict[str, dict[str, object]]:
    """Per-entry ``{kernelset: callable}`` on the mondial scenario.

    Backend-independent: these never touch a storage backend (the model
    and emission matrix are built once up front).
    """
    engine = Quest(FullAccessWrapper(create_backend("memory", sc.db)))
    model = engine.apriori_model
    keywords = ["rivers", "ruritania", "cities", "language", "capital"]
    emissions = model.emission_matrix(keywords, engine.wrapper)

    graph = build_schema_graph(sc.db.schema, Catalog.from_database(sc.db))
    terminals = [
        ColumnRef("country", "name"),
        ColumnRef("river", "name"),
        ColumnRef("city", "name"),
    ]
    frames = {
        size: (
            {f"h{i}": float(i + 1) for i in range(size)},
            {f"h{i}": float(size - i) for i in range(size)},
        )
        for size in (100, 400)
    }

    def cold_topk(optimized: bool):
        graph.steiner_cache.clear()
        top_k_steiner_trees(graph, terminals, 10, interned=optimized)

    def cold_exact(optimized: bool):
        graph.reset_derived_caches()
        exact_steiner_tree(graph, terminals, interned=optimized)

    # The plan-cache entry: overlapping terminal sets solved back to
    # back, the shape a query workload's configurations produce. The
    # optimized side shares Dreyfus-Wagner subset rows (and the batched
    # distance rows) across the sets through the plan cache; the
    # reference side recomputes every table from scratch per set.
    overlap_sets = [
        terminals,
        terminals[:2],
        [terminals[0], terminals[2]],
        terminals,
    ]

    def warm_overlap(optimized: bool):
        graph.reset_derived_caches()
        for subset in overlap_sets:
            exact_steiner_tree(
                graph,
                subset,
                interned=optimized,
                batched=optimized,
                plan_cache=optimized,
            )

    # KMB is measured *steady-state*: the optimisation is the per-graph
    # shortest-path cache, so the optimized side answers from the warm
    # cache (primed by the measurement warmup) while the reference side
    # recomputes its Dijkstras every call — exactly what a query workload
    # observes between graph mutations. The interleaved cold_exact resets
    # don't interfere: each entry's repetitions run as one block.
    def steady_kmb(optimized: bool):
        approximate_steiner_tree(graph, terminals, cached=optimized)

    def variants(fn) -> dict[str, object]:
        return {
            kernelset: (lambda optimized=(kernelset == "optimized"): fn(optimized))
            for kernelset in KERNELSETS
        }

    return {
        "list-viterbi T=5 k=30": variants(
            lambda optimized: list_viterbi(
                model, emissions, 30, vectorized=optimized
            )
        ),
        "top-k-steiner k=10": variants(cold_topk),
        "exact-steiner t=3": variants(cold_exact),
        "exact-steiner warm-overlap": variants(warm_overlap),
        "kmb-approx t=3 steady": variants(steady_kmb),
        "ds-combine frame=100": variants(
            lambda optimized: combine_scores(
                *frames[100], 0.3, 0.3, k=10, bitmask=optimized
            )
        ),
        "ds-combine frame=400": variants(
            lambda optimized: combine_scores(
                *frames[400], 0.3, 0.3, k=10, bitmask=optimized
            )
        ),
    }


def _index_measurements(repeats: int, cache_dir: Path) -> dict[str, dict[str, dict]]:
    """Index lifecycle entries: cold build+seal vs artifact load.

    Build interleaves the columnar ("optimized") and dict ("reference")
    layouts; load interleaves re-attaching the ``.npz`` artifact in each
    layout (the reference side pays the dict rehydration). The artifact is
    created through ``load_or_build``, so a cached copy from a previous
    run/step is validated and reused rather than rebuilt.
    """
    db = imdb.generate(**INDEX_SCALE)
    rows = db.total_rows()
    artifact = cache_dir / "imdb-fulltext.npz"
    FullTextIndex.load_or_build(artifact, db)

    def build(optimized: bool):
        FullTextIndex(db, columnar=optimized).warm()

    def load(optimized: bool):
        FullTextIndex.load(artifact, db, columnar=optimized)

    def variants(fn):
        return {
            kernelset: (lambda optimized=(kernelset == "optimized"): fn(optimized))
            for kernelset in KERNELSETS
        }

    entries: dict[str, dict[str, dict]] = {kernelset: {} for kernelset in KERNELSETS}
    measurements = {
        f"fulltext-build rows={rows}": variants(build),
        f"fulltext-load rows={rows}": variants(load),
    }
    for name, pair in measurements.items():
        for kernelset, stats in _measure_pair(pair, repeats).items():
            entries[kernelset][name] = stats
    return {
        kernelset: {"entries": kernel_entries}
        for kernelset, kernel_entries in entries.items()
    }


def _batch_throughput(sc, repeats: int, columnar: bool) -> dict:
    """Serial vs forked-process ``search_many`` wall time (not gated).

    Fresh engine per run (cold caches both sides — the forked pool cannot
    share cache warm-up across workers, so a warm serial engine would be
    an unfair baseline). Whether the fork wins depends on the runner's
    cores; the count is recorded so readers can interpret the numbers.
    """
    texts = [q.text for q in sc.workload]
    modes = {"workers-1": 1, f"workers-{BATCH_WORKERS}": BATCH_WORKERS}
    runs: dict[str, list[float]] = {mode: [] for mode in modes}
    for _ in range(repeats):
        for mode, workers in modes.items():
            engine = Quest(
                FullAccessWrapper(create_backend("memory", sc.db)),
                _settings(True, columnar),
            )
            start = time.perf_counter()
            engine.search_many(texts, workers=workers)
            runs[mode].append(time.perf_counter() - start)
    report: dict[str, object] = {
        "cpus": os.cpu_count(),
        "queries": len(texts),
    }
    for mode, times in runs.items():
        report[mode] = {
            **_stats_of(times),
            "queries_per_second": len(texts) / statistics.median(times),
        }
    serial = statistics.median(runs["workers-1"])
    parallel = statistics.median(runs[f"workers-{BATCH_WORKERS}"])
    report["parallel_speedup"] = serial / parallel
    return report


def _service_throughput(sc, repeats: int, columnar: bool) -> dict:
    """Concurrent ``QuestService`` storm, coalescing off vs on (not gated).

    One engine, warmed over the workload first (this measures the
    serving tier, not cold cache builds). Each run fires
    ``SERVICE_THREADS`` threads through the service; every query text is
    enqueued once per thread *consecutively*, so identical requests are
    in flight together — exactly the burst shape coalescing exists for.
    The result cache stays off in both modes: with it on, every repeat
    after the first is a cache hit and nothing distinguishes the modes.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import QuestService, ServiceSettings

    texts = [q.text for q in sc.workload]
    engine = Quest(
        FullAccessWrapper(create_backend("memory", sc.db)),
        _settings(True, columnar),
    )
    engine.search_many(texts)  # warm the emission/Steiner caches
    jobs = [text for text in texts for _ in range(SERVICE_THREADS)]
    report: dict[str, object] = {
        "cpus": os.cpu_count(),
        "threads": SERVICE_THREADS,
        "queries": len(texts),
        "requests_per_run": len(jobs),
    }
    medians: dict[str, float] = {}
    for mode, coalesce in (("uncoalesced", False), ("coalesced", True)):
        service = QuestService(
            engine,
            ServiceSettings(
                coalesce=coalesce,
                cache_results=False,
                max_concurrent=SERVICE_THREADS,
                max_queue=len(jobs),
            ),
        )
        runs: list[float] = []
        for _ in range(repeats):
            with ThreadPoolExecutor(max_workers=SERVICE_THREADS) as pool:
                start = time.perf_counter()
                list(pool.map(service.search, jobs))
                runs.append(time.perf_counter() - start)
        snapshot = service.metrics()
        stats = _stats_of(runs)
        medians[mode] = stats["median_s"]  # type: ignore[assignment]
        report[mode] = {
            **stats,
            "requests_per_second": len(jobs) / medians[mode],
            "executed": snapshot.executed,
            "coalesced": snapshot.coalesced,
            "shed": snapshot.shed,
        }
    report["coalesce_speedup"] = medians["uncoalesced"] / medians["coalesced"]
    return report


#: Flake probability of the degraded-mode section's storage faults, and
#: the seed that makes its schedule replayable across runs.
DEGRADED_FLAKE_RATE = 0.10
DEGRADED_FAULT_SEED = 17


def _degraded_mode(sc, repeats: int, columnar: bool) -> dict:
    """Service throughput under a 10% storage-flake rate (not gated).

    One SQLite-backed engine (the ``storage.query`` fault point fires
    inside its SQL read path), warmed over the workload, then stormed
    twice per repeat: once healthy, once with a seeded ``FaultPlan``
    flipping 10% of storage reads into transient
    ``sqlite3.OperationalError``. The in-call retry absorbs most flakes;
    a read that exhausts its retries falls through to the revision-stale
    cache (primed by a healthy pass over every distinct query), so every
    request is still answered. Everything here is recorded, never
    gated — the section exists so the cost of running degraded shows up
    in the BENCH history, not to fail CI on a slow runner.
    """
    import sqlite3
    from concurrent.futures import ThreadPoolExecutor

    from repro import faults
    from repro.faults import FaultPlan
    from repro.service import QuestService, ServiceSettings
    from repro.storage.sqlite import SQLiteBackend

    texts = [q.text for q in sc.workload]
    backend = SQLiteBackend.from_database(sc.db)
    engine = Quest(FullAccessWrapper(backend), _settings(True, columnar))
    engine.search_many(texts)  # warm the emission/Steiner caches
    jobs = [text for text in texts for _ in range(SERVICE_THREADS)]
    service = QuestService(
        engine,
        ServiceSettings(
            cache_results=False,
            coalesce=False,
            max_concurrent=SERVICE_THREADS,
            max_queue=len(jobs),
        ),
    )
    for text in texts:  # prime the revision-stale tier once per query
        service.search(text)

    def answered(text: str) -> str:
        try:
            response = service.search(text)
        except Exception:
            return "failed"
        return "stale" if response.stale else "ok"

    report: dict[str, object] = {
        "cpus": os.cpu_count(),
        "threads": SERVICE_THREADS,
        "queries": len(texts),
        "requests_per_run": len(jobs),
        "flake_rate": DEGRADED_FLAKE_RATE,
        "fault_seed": DEGRADED_FAULT_SEED,
    }
    medians: dict[str, float] = {}
    for mode in ("healthy", "degraded"):
        plan = None
        if mode == "degraded":
            plan = FaultPlan(seed=DEGRADED_FAULT_SEED).inject(
                "storage.query",
                kind="error",
                rate=DEGRADED_FLAKE_RATE,
                error=sqlite3.OperationalError,
            )
        before = service.metrics()
        runs: list[float] = []
        outcomes: list[str] = []
        with faults.injected(plan) if plan is not None else _noop():
            for _ in range(repeats):
                with ThreadPoolExecutor(max_workers=SERVICE_THREADS) as pool:
                    start = time.perf_counter()
                    outcomes.extend(pool.map(answered, jobs))
                    runs.append(time.perf_counter() - start)
        after = service.metrics()
        stats = _stats_of(runs)
        medians[mode] = stats["median_s"]  # type: ignore[assignment]
        entry: dict[str, object] = {
            **stats,
            "requests_per_second": len(jobs) / medians[mode],
            "answered": outcomes.count("ok") + outcomes.count("stale"),
            "failed": outcomes.count("failed"),
            "stale_served": after.stale_served - before.stale_served,
            "errors": after.errors - before.errors,
        }
        if plan is not None:
            decisions = plan.decisions("storage.query")
            entry["storage_reads"] = len(decisions)
            entry["injected_faults"] = decisions.count("error")
        report[mode] = entry
    report["degraded_overhead"] = medians["degraded"] / medians["healthy"]
    return report


def _noop():
    import contextlib

    return contextlib.nullcontext()


#: Mixed read/write workload shape: ops per pass and generator seed.
MIXED_OPS = 80
MIXED_SEED = 11
MIXED_PROFILES = ("ecommerce", "oltp")


def _mixed_workload(repeats: int, columnar: bool) -> dict:
    """Search latency while writers churn (the live-mutation section).

    One memory-backed engine per profile over a *private* mondial
    instance (the shared scenario database must survive this section
    unmutated), driven by :func:`repro.datasets.mixed.generate_ops` —
    a deterministic interleaving of searches, batched journaled inserts
    and batched deletes. Three latency families are recorded per
    profile: plain searches racing the writer, write applies
    (validate + journal-ack + delta-index), and **fresh reads** — a
    search for the probe keyword an ``add`` just inserted, answerable
    only by the delta layer over the sealed snapshot.

    Timings are recorded, never gated. The one hard claim (enforced by
    ``--mixed-only``) is read-your-writes: every probe is visible in
    the index the moment its batch is acknowledged.
    """
    from repro.datasets import mixed, mondial
    from repro.journal import MutationJournal

    report: dict[str, object] = {
        "ops": MIXED_OPS,
        "seed": MIXED_SEED,
        "repeats": repeats,
        "profiles": {},
        "missing_probes": 0,
    }
    missing_probes = 0
    for profile in MIXED_PROFILES:
        searches: list[float] = []
        fresh_reads: list[float] = []
        write_applies: list[float] = []
        totals: list[float] = []
        counts = {"search": 0, "add": 0, "delete": 0}
        with tempfile.TemporaryDirectory() as scratch:
            for repeat in range(repeats):
                db = mondial.generate(countries=10, seed=31)
                backend = create_backend("memory", db)
                journal = MutationJournal(
                    Path(scratch) / f"{profile}-{repeat}.journal"
                )
                backend.attach_journal(journal)
                engine = Quest(
                    FullAccessWrapper(backend), _settings(True, columnar)
                )
                ops = mixed.generate_ops(
                    db, MIXED_OPS, profile=profile, seed=MIXED_SEED
                )
                engine.search(ops[0].query or "quest", 5)  # warm caches
                pass_start = time.perf_counter()
                for op in ops:
                    if repeat == 0:
                        counts[op.kind] += 1
                    if op.kind == "search":
                        start = time.perf_counter()
                        engine.search(op.query, 5)
                        searches.append(time.perf_counter() - start)
                        continue
                    start = time.perf_counter()
                    mixed.apply_op(backend, op)
                    write_applies.append(time.perf_counter() - start)
                    if op.kind == "add":
                        start = time.perf_counter()
                        engine.search(op.probe, 5)
                        fresh_reads.append(time.perf_counter() - start)
                        # Read-your-writes: an acknowledged batch's rows
                        # are searchable immediately (delta layer).
                        if not backend.fulltext.attribute_scores(op.probe):
                            missing_probes += 1
                totals.append(time.perf_counter() - pass_start)
                journal.close()
        entry: dict[str, object] = {
            **counts,
            "total": _stats_of(totals),
            "ops_per_second": MIXED_OPS / statistics.median(totals),
        }
        if searches:
            entry["search"] = _stats_of(searches)
        if fresh_reads:
            entry["fresh_read"] = _stats_of(fresh_reads)
        if write_applies:
            entry["write_apply"] = _stats_of(write_applies)
        report["profiles"][profile] = entry  # type: ignore[index]
    report["missing_probes"] = missing_probes
    return report


#: Client threads and forked workers of the serving storm.
STORM_CLIENTS = 8
STORM_WORKERS = 2
#: Workload queries the storm replays (each once per client thread).
STORM_QUERIES = 6
#: The serving tier's warm-start contract: a worker attaching the shared
#: artifact must be at least this much faster than rebuilding the index.
WARM_START_MIN_SPEEDUP = 5.0


def _quantile(sorted_values: list[float], q: float) -> float:
    return sorted_values[min(len(sorted_values) - 1, int(q * len(sorted_values)))]


def _serving_storm(
    repeats: int, columnar: bool, cache_dir: Path
) -> tuple[dict, list[str]]:
    """The preforked HTTP tier under a concurrent client storm.

    Returns ``(report, failures)``. Timings are recorded, never gated;
    *failures* carries the two hard claims — every response a 200, every
    worker's ranking byte-identical to an in-process engine over the
    same artifact — plus the warm-start contract (mmap-attaching the
    shared artifact must beat rebuilding the index from rows).
    """
    import threading
    from urllib.parse import quote

    from repro.service import (
        PreforkServer,
        PreforkSettings,
        QuestService,
        shared_artifact_engine,
    )
    from repro.service.http import explanation_payload
    from repro.service.prefork import fetch_json

    sc = scenario("mondial")
    texts = [q.text for q in sc.workload][:STORM_QUERIES]
    artifact = cache_dir / "mondial-serving.npz"
    settings = _settings(True, columnar)
    prepare, factory = shared_artifact_engine(sc.db, artifact, settings)
    prepare()

    # Per-worker warm start: what one forked worker pays to become
    # servable — attach the shared artifact (mmap) vs build the index
    # from the rows (what every worker would do without the artifact).
    # Measured at the index section's imdb scale: the mondial demo index
    # builds in single-digit milliseconds, too small to resolve the gap
    # a production-sized index shows. The artifact name matches
    # ``_index_measurements`` so a shared ``--index-cache`` reuses it.
    index_db = imdb.generate(**INDEX_SCALE)
    index_artifact = cache_dir / "imdb-fulltext.npz"
    FullTextIndex.load_or_build(index_artifact, index_db)
    warm_runs: dict[str, list[float]] = {"mmap_attach": [], "cold_rebuild": []}
    for _ in range(repeats):
        start = time.perf_counter()
        FullTextIndex.load(index_artifact, index_db, mmap=True)
        warm_runs["mmap_attach"].append(time.perf_counter() - start)
        start = time.perf_counter()
        FullTextIndex(index_db).warm()
        warm_runs["cold_rebuild"].append(time.perf_counter() - start)
    warm_speedup = min(warm_runs["cold_rebuild"]) / min(warm_runs["mmap_attach"])
    report: dict[str, object] = {
        "cpus": os.cpu_count(),
        "workers": STORM_WORKERS,
        "clients": STORM_CLIENTS,
        "queries": len(texts),
        "warm_start_rows": index_db.total_rows(),
        "worker_warm_start": {
            mode: _stats_of(runs) for mode, runs in warm_runs.items()
        },
        "warm_start_speedup": warm_speedup,
    }
    failures: list[str] = []
    if warm_speedup < WARM_START_MIN_SPEEDUP:
        failures.append(
            f"mmap warm start ({min(warm_runs['mmap_attach']) * 1e3:.1f}ms) "
            f"is less than {WARM_START_MIN_SPEEDUP:.0f}x faster than a cold "
            f"rebuild ({min(warm_runs['cold_rebuild']) * 1e3:.1f}ms)"
        )

    # The in-process expectation per query: what every worker must
    # reproduce byte for byte through the wire.
    expected = {}
    in_process = QuestService(factory())
    for text in texts:
        response = in_process.search(text)
        expected[text] = json.loads(
            json.dumps(explanation_payload(response.explanations))
        )

    server = PreforkServer(
        factory,
        settings=PreforkSettings(workers=STORM_WORKERS),
        prepare=prepare,
    )
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    pids: set[int] = set()
    lock = threading.Lock()
    with server:
        server.wait_ready(120.0)
        port = server.port

        def client(thread_index: int) -> None:
            for text in texts:
                path = f"/search?q={quote(text)}"
                start = time.perf_counter()
                try:
                    status, body = fetch_json("127.0.0.1", port, path, timeout=120)
                except OSError as exc:
                    with lock:
                        failures.append(f"request {path!r} failed: {exc}")
                    continue
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    statuses[status] = statuses.get(status, 0) + 1
                    if status != 200:
                        failures.append(f"{path!r} returned {status}: {body}")
                    else:
                        pids.add(body["pid"])
                        if body["results"] != expected[text]:
                            failures.append(
                                f"worker {body['pid']} ranking for {text!r} "
                                "differs from the in-process engine"
                            )

        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(STORM_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start

    ordered = sorted(latencies)
    requests = len(latencies)
    report.update(
        {
            "requests": requests,
            "statuses": statuses,
            "distinct_worker_pids": len(pids),
            "wall_s": wall,
            "requests_per_second": requests / wall if wall else 0.0,
            "p50_latency_s": _quantile(ordered, 0.50) if ordered else None,
            "p95_latency_s": _quantile(ordered, 0.95) if ordered else None,
            "rank_identity": not any("differs" in f for f in failures),
        }
    )

    # The single-process floor: the same storm served by one in-process
    # QuestService (no sockets, no forks) — the number the multi-worker
    # req/s should exceed on multi-core runners.
    jobs = [text for _ in range(STORM_CLIENTS) for text in texts]
    start = time.perf_counter()
    for text in jobs:
        in_process.search(text)
    single_wall = time.perf_counter() - start
    report["single_process_requests_per_second"] = (
        len(jobs) / single_wall if single_wall else 0.0
    )
    return report, failures


def profile_cold_query(backend: str, columnar: bool) -> None:
    """Per-stage cProfile of one cold query (top 20 by cumulative time)."""
    sc = scenario("mondial")
    engine = Quest(
        FullAccessWrapper(create_backend(backend, sc.db)),
        _settings(True, columnar),
    )
    text = next(iter(sc.workload)).text
    keywords = engine.keywords_of(text)
    settings = engine.settings
    context = SearchContext.for_query(
        query=text,
        keywords=keywords,
        k=settings.k,
        pool=settings.k * settings.candidate_factor,
        tree_k=settings.k,
    )
    print(f"profiling cold query {text!r} on backend {backend!r}")
    for stage in engine.pipeline.stages:
        profiler = cProfile.Profile()
        profiler.enable()
        stage.run(engine, context)
        profiler.disable()
        print(f"\n== stage: {stage.name} " + "=" * 50)
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)


def _cold_search(
    sc, backend: str, repeats: int, queries: int, columnar: bool = True
) -> dict[str, dict[str, object]]:
    """Fresh-engine ``search_many`` per kernelset (cold caches, interleaved).

    ``stage_seconds`` values are normalised **per query** (like the
    top-level medians), so they stay comparable across runs with
    different workload sizes and read directly against the per-query
    acceptance targets.
    """
    texts = [q.text for q in sc.workload][:queries]
    per_query: dict[str, list[float]] = {kernelset: [] for kernelset in KERNELSETS}
    details: dict[str, dict] = {kernelset: {} for kernelset in KERNELSETS}
    for _ in range(repeats):
        for kernelset in KERNELSETS:
            engine = Quest(
                FullAccessWrapper(create_backend(backend, sc.db)),
                _settings(kernelset == "optimized", columnar),
            )
            start = time.perf_counter()
            engine.search_many(texts)
            per_query[kernelset].append(
                (time.perf_counter() - start) / len(texts)
            )
            stage_seconds: dict[str, float] = {}
            for trace in engine.batch_traces:
                for report in trace.stages:
                    stage_seconds[report.stage] = (
                        stage_seconds.get(report.stage, 0.0) + report.seconds
                    )
            stage_seconds = {
                stage: seconds / len(texts)
                for stage, seconds in stage_seconds.items()
            }
            emissions = engine.wrapper.emission_cache_stats
            steiner = engine.schema_graph.steiner_cache.stats
            subsets = engine.schema_graph.plan_cache.stats
            details[kernelset] = {
                "stage_seconds": stage_seconds,
                "cache": {
                    "emission": {
                        "hits": emissions.hits,
                        "misses": emissions.misses,
                    },
                    "steiner": {"hits": steiner.hits, "misses": steiner.misses},
                    "steiner-subset": {
                        "hits": subsets.hits,
                        "misses": subsets.misses,
                    },
                },
            }
    return {
        kernelset: {
            **_stats_of(per_query[kernelset]),
            "queries": len(texts),
            **details[kernelset],
        }
        for kernelset in KERNELSETS
    }


def run_suite(
    backends: list[str],
    repeats: int,
    queries: int,
    smoke: bool,
    columnar: bool = True,
    index_cache: Path | None = None,
) -> dict:
    """Measure kernels (once), per-backend cold searches, the index
    lifecycle and batch throughput."""
    sc = scenario("mondial")
    print("-- measuring kernels (interleaved kernel sets) ...", flush=True)
    kernel_entries: dict[str, dict[str, dict]] = {
        kernelset: {} for kernelset in KERNELSETS
    }
    for name, variants in _kernel_measurements(sc).items():
        for kernelset, stats in _measure_pair(variants, repeats).items():
            kernel_entries[kernelset][name] = stats
    kernels = {
        kernelset: {"entries": entries}
        for kernelset, entries in kernel_entries.items()
    }
    cold_search: dict[str, dict] = {}
    for backend in backends:
        print(f"-- measuring cold-search {backend} ...", flush=True)
        cold_search[backend] = _cold_search(sc, backend, repeats, queries, columnar)
    print("-- measuring index build/load ...", flush=True)
    if index_cache is None:
        with tempfile.TemporaryDirectory() as scratch:
            index = _index_measurements(repeats, Path(scratch))
    else:
        index_cache.mkdir(parents=True, exist_ok=True)
        index = _index_measurements(repeats, index_cache)
    print("-- measuring batch throughput ...", flush=True)
    batch = _batch_throughput(sc, repeats, columnar)
    print("-- measuring service throughput ...", flush=True)
    service = _service_throughput(sc, repeats, columnar)
    print("-- measuring degraded mode (10% storage flakes) ...", flush=True)
    degraded = _degraded_mode(sc, repeats, columnar)
    print("-- measuring mixed read/write workload ...", flush=True)
    mixed_section = _mixed_workload(repeats, columnar)
    print("-- measuring serving storm (preforked HTTP tier) ...", flush=True)
    if index_cache is None:
        with tempfile.TemporaryDirectory() as scratch:
            serving, serving_failures = _serving_storm(
                repeats, columnar, Path(scratch)
            )
    else:
        serving, serving_failures = _serving_storm(repeats, columnar, index_cache)
    for failure in serving_failures:
        print(f"SERVING STORM FAILURE: {failure}")
    serving["failures"] = serving_failures
    return {
        "workload": "e7-micro",
        "smoke": smoke,
        "repeats": repeats,
        "queries": queries,
        "columnar_index": columnar,
        "kernels": kernels,
        "cold_search": cold_search,
        "index": index,
        "batch_throughput": batch,
        "service_throughput": service,
        "degraded_mode": degraded,
        "mixed_workload": mixed_section,
        "serving_storm": serving,
    }


def _stage_entry(entry: dict | None, stage: str) -> dict | None:
    """A per-stage pseudo-entry derived from a cold-search entry.

    ``stage_seconds`` carries one per-query number per stage (the last
    interleaved repetition), so median and min coincide; ``queries`` is
    copied so the workload-size comparability guard applies to stages
    exactly as it does to the whole-query entry.
    """
    if not entry:
        return None
    seconds = (entry.get("stage_seconds") or {}).get(stage)
    if seconds is None:
        return None
    return {"median_s": seconds, "min_s": seconds, "queries": entry.get("queries")}


def _entry_pairs(report: dict):
    """Yield every comparable entry as ``(label, {kernelset: entry})``."""
    for section in ("kernels", "index"):
        groups = report.get(section, {})
        names: set[str] = set()
        for kernelset in groups.values():
            names.update(kernelset.get("entries", {}))
        prefix = "kernel" if section == "kernels" else "index"
        for name in sorted(names):
            yield (
                f"{prefix}/{name}",
                {
                    kernelset: groups.get(kernelset, {}).get("entries", {}).get(name)
                    for kernelset in KERNELSETS
                },
            )
    for backend, kernelsets in report.get("cold_search", {}).items():
        yield (
            f"{backend}/{COLD_SEARCH_ENTRY}",
            {kernelset: kernelsets.get(kernelset) for kernelset in KERNELSETS},
        )
        # Per-stage pseudo-entries, so a regression hiding inside one
        # stage (the backward Steiner pass, the explain counts) is gated
        # even when the whole-query median absorbs it.
        stage_names: set[str] = set()
        for entry in kernelsets.values():
            stage_names.update((entry or {}).get("stage_seconds", {}))
        for stage in sorted(stage_names):
            yield (
                f"{backend}/stage-{stage} per-query",
                {
                    kernelset: _stage_entry(kernelsets.get(kernelset), stage)
                    for kernelset in KERNELSETS
                },
            )


def _stat(entry: dict | None, key: str) -> float | None:
    if not entry:
        return None
    value = entry.get(key)
    return float(value) if value else None


def compare(
    current: dict, baseline: dict, tolerance: float, relative: bool
) -> list[str]:
    """Regressions of *current* against *baseline* (empty = all good)."""
    baseline_entries = dict(_entry_pairs(baseline))
    problems: list[str] = []
    for label, entries in _entry_pairs(current):
        base_entries = baseline_entries.get(label)
        if base_entries is None:
            continue
        # Cold-search medians are only comparable at equal workload size:
        # the per-query cost amortises cache warming over the queries.
        now_queries = (entries.get("optimized") or {}).get("queries")
        base_queries = (base_entries.get("optimized") or {}).get("queries")
        if now_queries != base_queries:
            continue
        if relative:
            # Ratio of minimums: machine speed cancels in the ratio,
            # runner jitter cancels in the min.
            now_fast = _stat(entries.get("optimized"), "min_s")
            now_slow = _stat(entries.get("reference"), "min_s")
            base_fast = _stat(base_entries.get("optimized"), "min_s")
            base_slow = _stat(base_entries.get("reference"), "min_s")
            if None in (now_fast, now_slow, base_fast, base_slow):
                continue
            if now_slow < NOISE_FLOOR_S or base_slow < NOISE_FLOOR_S:
                continue  # ratio of noise is noise
            current_ratio = now_slow / now_fast
            baseline_ratio = base_slow / base_fast
            if current_ratio < baseline_ratio * (1.0 - tolerance):
                problems.append(
                    f"{label}: speedup ratio {current_ratio:.2f}x fell below "
                    f"baseline {baseline_ratio:.2f}x (tolerance {tolerance:.0%})"
                )
        else:
            now = _stat(entries.get("optimized"), "median_s")
            base = _stat(base_entries.get("optimized"), "median_s")
            if now is None or base is None:
                continue
            if now < NOISE_FLOOR_S and base < NOISE_FLOOR_S:
                continue  # both under the timer noise floor
            if now > base * (1.0 + tolerance):
                problems.append(
                    f"{label}: optimized median {now * 1e3:.3f}ms exceeds "
                    f"baseline {base * 1e3:.3f}ms (tolerance {tolerance:.0%})"
                )
    return problems


def speedup_report(current: dict, baseline: dict | None) -> str:
    """Human-readable per-entry speedups (+ headline vs committed baseline)."""
    lines = ["optimized vs reference (this run):"]
    ratios = []
    for label, entries in _entry_pairs(current):
        fast = _stat(entries.get("optimized"), "median_s")
        slow = _stat(entries.get("reference"), "median_s")
        if fast and slow:
            ratios.append(slow / fast)
            lines.append(
                f"  {label:34s} {slow * 1e3:9.3f}ms -> {fast * 1e3:9.3f}ms "
                f"({slow / fast:5.2f}x)"
            )
    if ratios:
        lines.append(f"  median entry speedup: {statistics.median(ratios):.2f}x")
    for backend, kernelsets in current.get("cold_search", {}).items():
        fast_stages = (kernelsets.get("optimized") or {}).get("stage_seconds", {})
        slow_stages = (kernelsets.get("reference") or {}).get("stage_seconds", {})
        fast_forward = fast_stages.get("forward")
        slow_forward = slow_stages.get("forward")
        if fast_forward and slow_forward:
            lines.append(
                f"  [{backend}] forward stage-seconds: {slow_forward:.3f}s -> "
                f"{fast_forward:.3f}s ({slow_forward / fast_forward:.2f}x)"
            )
    index = current.get("index", {}).get("optimized", {}).get("entries", {})
    build = next(
        (e for name, e in index.items() if name.startswith("fulltext-build")), None
    )
    load = next(
        (e for name, e in index.items() if name.startswith("fulltext-load")), None
    )
    if build and load:
        lines.append(
            f"  index artifact load vs cold build: "
            f"{build['median_s'] * 1e3:.1f}ms build -> "
            f"{load['median_s'] * 1e3:.1f}ms load "
            f"({build['median_s'] / load['median_s']:.1f}x faster warm start)"
        )
    batch = current.get("batch_throughput", {})
    if batch:
        parallel_mode = f"workers-{BATCH_WORKERS}"
        serial = batch.get("workers-1", {})
        parallel = batch.get(parallel_mode, {})
        if serial and parallel:
            lines.append(
                f"  batch throughput ({batch.get('cpus')} cpus): "
                f"{serial['queries_per_second']:.1f} q/s serial, "
                f"{parallel['queries_per_second']:.1f} q/s {parallel_mode} "
                f"({batch.get('parallel_speedup', 0.0):.2f}x)"
            )
    serving = current.get("serving_storm", {})
    if serving and serving.get("requests"):
        lines.append(
            f"  serving storm ({serving.get('workers')} workers, "
            f"{serving.get('clients')} clients, {serving.get('cpus')} cpus): "
            f"{serving.get('requests_per_second', 0.0):.1f} req/s, "
            f"p95 {float(serving.get('p95_latency_s') or 0) * 1e3:.1f}ms; "
            f"worker warm start mmap vs rebuild "
            f"{serving.get('warm_start_speedup', 0.0):.1f}x"
        )
    service = current.get("service_throughput", {})
    if service:
        uncoalesced = service.get("uncoalesced", {})
        coalesced = service.get("coalesced", {})
        if uncoalesced and coalesced:
            lines.append(
                f"  service throughput ({service.get('threads')} threads): "
                f"{uncoalesced['requests_per_second']:.1f} req/s uncoalesced, "
                f"{coalesced['requests_per_second']:.1f} req/s coalesced "
                f"({service.get('coalesce_speedup', 0.0):.2f}x; "
                f"{coalesced.get('executed', 0)} engine runs answered "
                f"{coalesced.get('executed', 0) + coalesced.get('coalesced', 0)}"
                " requests)"
            )
    if baseline is not None:
        for backend, kernelsets in current.get("cold_search", {}).items():
            now = _stat(kernelsets.get("optimized"), "median_s")
            base_ref = _stat(
                baseline.get("cold_search", {}).get(backend, {}).get("reference"),
                "median_s",
            )
            if now and base_ref:
                lines.append(
                    f"  [{backend}] cold-query speedup vs committed baseline "
                    f"(reference kernels): {base_ref / now:.2f}x"
                )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--backends",
        default="memory",
        help="comma-separated storage backends for the cold-search pass "
        "(default: memory)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--queries", type=int, default=10, help="workload queries per cold pass"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: fewer repeats (the query count stays put — "
        "cold per-query cost amortises cache warming over the workload, "
        "so runs with different query counts are not comparable)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline to compare against (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write this run's JSON (default: the baseline path "
        "with --update-baseline, else BENCH_e7.current.json next to it)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default: 0.30)",
    )
    parser.add_argument(
        "--relative",
        action="store_true",
        help="compare optimized/reference speedup ratios (of per-entry "
        "minimums) instead of absolute medians — use on machines unlike "
        "the baseline's",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run to --baseline and skip the comparison",
    )
    parser.add_argument(
        "--no-columnar",
        action="store_true",
        help="run the optimized kernelset with columnar_index disabled "
        "(CI matrix leg proving the per-keyword emission path stays healthy)",
    )
    parser.add_argument(
        "--index-cache",
        type=Path,
        default=None,
        help="directory holding the .npz index artifacts (reused across "
        "runs when the data still matches; CI caches it between steps)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage cProfile (top 20 by cumtime) of one cold "
        "query instead of running the measurement suite",
    )
    parser.add_argument(
        "--service-only",
        action="store_true",
        help="measure only the service_throughput section (CI concurrency "
        "smoke); timings are recorded, not gated — the only failure is "
        "an identical-query storm that never coalesces",
    )
    parser.add_argument(
        "--serving-only",
        action="store_true",
        help="measure only the serving_storm section (CI serving smoke): "
        "boot the preforked HTTP fleet, storm it with concurrent clients, "
        "hard-fail on any non-200 or rank-identity break, record req/s, "
        "p50/p95 and per-worker warm-start (mmap vs rebuild) seconds; "
        "with --update-baseline the section is merged into the committed "
        "baseline without touching its other entries",
    )
    parser.add_argument(
        "--degraded-only",
        action="store_true",
        help="measure only the degraded_mode section (CI chaos smoke): "
        "service throughput under a seeded 10%% storage-flake rate, with "
        "retries absorbing single flakes and the revision-stale tier "
        "answering double-flakes; recorded, not gated — the only failure "
        "is a request that goes unanswered; with --update-baseline the "
        "section is merged into the committed baseline without touching "
        "its other entries",
    )
    parser.add_argument(
        "--mixed-only",
        action="store_true",
        help="measure only the mixed_workload section (CI recovery "
        "smoke): fresh-read/search/write-apply latency while journaled "
        "writers churn the delta layer; recorded, not gated — the only "
        "failure is a broken read-your-writes (an acknowledged batch "
        "whose probe keyword a search cannot see); with "
        "--update-baseline the section is merged into the committed "
        "baseline without touching its other entries",
    )
    parser.add_argument(
        "--backward-only",
        action="store_true",
        help="CI smoke of the backward stage alone: one cold-search pass "
        "per backend, gating only the backward per-query stage seconds "
        "(optimized must beat reference) — fast enough for every PR",
    )
    args = parser.parse_args(argv)

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    repeats = 3 if args.smoke else args.repeats
    queries = args.queries

    if args.profile:
        profile_cold_query(backends[0], not args.no_columnar)
        return 0

    if args.service_only:
        service = _service_throughput(
            scenario("mondial"), repeats, not args.no_columnar
        )
        print(json.dumps(service, indent=2, sort_keys=True))
        coalesced = service["coalesced"]
        # The smoke's one hard claim: the storm coalesced — identical
        # in-flight requests shared pipeline runs instead of repeating them.
        if not coalesced["coalesced"]:
            print("ERROR: the identical-query storm never coalesced")
            return 1
        print(
            f"coalesce speedup: {service['coalesce_speedup']:.2f}x "
            f"({coalesced['executed']} engine runs for "
            f"{service['requests_per_run'] * repeats} requests)"
        )
        return 0

    if args.serving_only:
        if args.index_cache is not None:
            args.index_cache.mkdir(parents=True, exist_ok=True)
            serving, failures = _serving_storm(
                repeats, not args.no_columnar, args.index_cache
            )
        else:
            with tempfile.TemporaryDirectory() as scratch:
                serving, failures = _serving_storm(
                    repeats, not args.no_columnar, Path(scratch)
                )
        serving["failures"] = failures
        print(json.dumps(serving, indent=2, sort_keys=True))
        print(
            f"serving storm: {serving['requests_per_second']:.1f} req/s over "
            f"{serving['workers']} workers ({serving['clients']} clients, "
            f"{serving.get('cpus')} cpus), "
            f"p95 {float(serving['p95_latency_s'] or 0) * 1e3:.1f}ms; "
            f"warm start mmap vs rebuild: "
            f"{serving['warm_start_speedup']:.1f}x"
        )
        if failures:
            for failure in failures:
                print(f"ERROR: {failure}")
            return 1
        if args.update_baseline:
            # Merge only this section into the committed baseline — the
            # other entries were measured on a different (possibly
            # slower/faster) run and must not be silently replaced.
            baseline = (
                json.loads(args.baseline.read_text())
                if args.baseline.exists()
                else {}
            )
            baseline["serving_storm"] = serving
            args.baseline.write_text(
                json.dumps(baseline, indent=2, sort_keys=True) + "\n"
            )
            print(f"merged serving_storm into {args.baseline}")
        return 0

    if args.degraded_only:
        degraded = _degraded_mode(scenario("mondial"), repeats, not args.no_columnar)
        print(json.dumps(degraded, indent=2, sort_keys=True))
        flaky = degraded["degraded"]
        print(
            f"degraded mode: {flaky['requests_per_second']:.1f} req/s at a "
            f"{degraded['flake_rate']:.0%} flake rate "
            f"({flaky['injected_faults']} faults over "
            f"{flaky['storage_reads']} reads, "
            f"{flaky['stale_served']} stale answers), "
            f"{degraded['degraded_overhead']:.2f}x the healthy pass"
        )
        # The one hard claim: degradation never loses a request — every
        # storm request was answered (fresh or revision-stale).
        unanswered = degraded["healthy"]["failed"] + flaky["failed"]
        if unanswered:
            print(f"ERROR: {unanswered} storm requests went unanswered")
            return 1
        if args.update_baseline:
            # Merge only this section into the committed baseline — the
            # other entries were measured on a different run and must
            # not be silently replaced.
            baseline = (
                json.loads(args.baseline.read_text())
                if args.baseline.exists()
                else {}
            )
            baseline["degraded_mode"] = degraded
            args.baseline.write_text(
                json.dumps(baseline, indent=2, sort_keys=True) + "\n"
            )
            print(f"merged degraded_mode into {args.baseline}")
        return 0

    if args.mixed_only:
        mixed_section = _mixed_workload(repeats, not args.no_columnar)
        print(json.dumps(mixed_section, indent=2, sort_keys=True))
        for profile, entry in sorted(mixed_section["profiles"].items()):
            fresh = entry.get("fresh_read", {}).get("median_s")
            search = entry.get("search", {}).get("median_s")
            apply_ = entry.get("write_apply", {}).get("median_s")
            print(
                f"mixed workload [{profile}]: "
                f"{entry['ops_per_second']:.1f} ops/s "
                f"(search p50 {float(search or 0) * 1e3:.3f}ms, "
                f"fresh read p50 {float(fresh or 0) * 1e3:.3f}ms, "
                f"write apply p50 {float(apply_ or 0) * 1e3:.3f}ms)"
            )
        # The one hard claim: read-your-writes — every acknowledged
        # add's probe keyword was searchable immediately.
        if mixed_section["missing_probes"]:
            print(
                f"ERROR: {mixed_section['missing_probes']} acknowledged "
                "batches were invisible to an immediate search"
            )
            return 1
        if args.update_baseline:
            # Merge only this section into the committed baseline — the
            # other entries were measured on a different run and must
            # not be silently replaced.
            baseline = (
                json.loads(args.baseline.read_text())
                if args.baseline.exists()
                else {}
            )
            baseline["mixed_workload"] = mixed_section
            args.baseline.write_text(
                json.dumps(baseline, indent=2, sort_keys=True) + "\n"
            )
            print(f"merged mixed_workload into {args.baseline}")
        return 0

    if args.backward_only:
        sc = scenario("mondial")
        failed = False
        for backend in backends:
            result = _cold_search(
                sc, backend, repeats, queries, not args.no_columnar
            )
            fast = result["optimized"]["stage_seconds"].get("backward")
            slow = result["reference"]["stage_seconds"].get("backward")
            subsets = result["optimized"]["cache"]["steiner-subset"]
            if not fast or not slow:
                print(f"ERROR: [{backend}] no backward stage timings")
                failed = True
                continue
            print(
                f"[{backend}] backward per-query: reference {slow * 1e3:.3f}ms "
                f"-> optimized {fast * 1e3:.3f}ms ({slow / fast:.2f}x); "
                f"subset cache hits={subsets['hits']} misses={subsets['misses']}"
            )
            # The one hard claim: the optimized backward stage is not
            # slower than the reference path beyond tolerance. An
            # absolute target would gate on machine speed; this gates on
            # the optimisation still existing.
            if fast > slow * (1.0 + args.tolerance):
                print(
                    f"ERROR: [{backend}] optimized backward stage "
                    f"({fast * 1e3:.3f}ms) slower than reference "
                    f"({slow * 1e3:.3f}ms) beyond {args.tolerance:.0%}"
                )
                failed = True
        return 1 if failed else 0

    current = run_suite(
        backends,
        repeats,
        queries,
        args.smoke,
        columnar=not args.no_columnar,
        index_cache=args.index_cache,
    )

    baseline = None
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    output = args.output
    if output is None:
        output = (
            args.baseline
            if args.update_baseline
            else args.baseline.with_name("BENCH_e7.current.json")
        )
    output.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    print()
    print(speedup_report(current, baseline))

    serving_failures = current.get("serving_storm", {}).get("failures") or []
    if serving_failures:
        print()
        print("SERVING STORM FAILURES:")
        for failure in serving_failures:
            print(f"  {failure}")
        return 1

    if args.update_baseline:
        return 0
    if baseline is None:
        # A gate with nothing to compare against must not read as green:
        # --relative is the CI mode, where a missing committed baseline
        # means the regression check silently stopped existing.
        if args.relative:
            print(f"ERROR: no committed baseline at {args.baseline}")
            return 2
        print("no committed baseline found: nothing to compare against")
        return 0

    problems = compare(current, baseline, args.tolerance, args.relative)
    if problems:
        print()
        print("PERF REGRESSIONS:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print()
    print(f"no regression beyond {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
