"""E8 — ablation of the mutual-information edge weighting.

Paper anchor: the backward section — "To create Steiner Trees consistent
with the database content and the user keywords, we use a mutual
information-based distance for computing the weights of the edges".

Compares MI-weighted vs uniform-weighted schema graphs on (a) ranking
quality and (b) how often the top-ranked raw interpretation (before
execution filtering) denotes an empty result — the failure mode the MI
weighting exists to avoid. Expected shape: MI reduces empty-result
interpretations and improves or preserves quality.
"""

from __future__ import annotations

import pytest

from benchmarks._common import all_scenarios, print_banner, scenario
from repro.core import Quest, QuestSettings
from repro.db.executor import execute
from repro.eval import evaluate, format_table, quest_engine
from repro.wrapper import FullAccessWrapper


def empty_top_interpretation_rate(engine: Quest, workload) -> float:
    """Fraction of queries whose *backward-ranked* best join path is empty.

    This isolates what the MI weighting actually controls: the backward
    module's own ordering of join paths, before forward evidence and
    execution filtering paper over bad choices. For each query the gold
    configuration is materialised and its top-1 tree (by tree score alone)
    is executed.
    """
    empty = 0
    total = 0
    for query in workload:
        try:
            interpretations = engine.backward(
                [query.gold_configuration], 5
            )
        except Exception:
            continue
        if not interpretations:
            continue
        interpretations.sort(key=lambda i: -i.score)
        total += 1
        sql = engine.build_sql(interpretations[0])
        if len(engine.wrapper.execute(sql)) == 0:
            empty += 1
    return empty / total if total else 0.0


def parallel_paths_db():
    """A schema with two structurally identical join paths to ``person``,
    of which only one is populated: ``movie.assistant_id`` is always NULL
    while ``movie.director_id`` always joins. Uniform weights cannot tell
    the paths apart (and alphabetical tie-breaking actively prefers the
    empty one); the MI distance makes the populated path strictly shorter.
    """
    import random

    from repro.db import Column, Database, ForeignKey, Schema, TableSchema
    from repro.db.types import DataType

    schema = Schema(
        tables=[
            TableSchema(
                "person",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("name", DataType.TEXT, nullable=False),
                ),
                ("id",),
            ),
            TableSchema(
                "movie",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("title", DataType.TEXT, nullable=False),
                    Column("assistant_id", DataType.INTEGER),
                    Column("director_id", DataType.INTEGER),
                ),
                ("id",),
            ),
        ],
        foreign_keys=[
            ForeignKey("movie", "assistant_id", "person", "id"),
            ForeignKey("movie", "director_id", "person", "id"),
        ],
        name="parallel",
    )
    db = Database(schema)
    rng = random.Random(3)
    for person_id in range(1, 21):
        db.insert("person", {"id": person_id, "name": f"Person {person_id}"})
    for movie_id in range(1, 101):
        db.insert(
            "movie",
            {
                "id": movie_id,
                "title": f"Movie {movie_id}",
                "assistant_id": None,
                "director_id": rng.randint(1, 20),
            },
        )
    return db


def run_e8_parallel_paths() -> str:
    from repro.core import Configuration, KeywordMapping
    from repro.hmm import State, StateKind

    db = parallel_paths_db()
    gold_configuration = Configuration(
        (
            KeywordMapping("7", State(StateKind.DOMAIN, "person", "name")),
            KeywordMapping("movies", State(StateKind.TABLE, "movie")),
        ),
        1.0,
    )
    rows = []
    for label, use_mi in (("mi-weights", True), ("uniform", False)):
        engine = Quest(
            FullAccessWrapper(db),
            QuestSettings(mutual_information_weights=use_mi),
        )
        interpretations = engine.backward([gold_configuration], 3)
        interpretations.sort(key=lambda i: -i.score)
        top_sql = engine.build_sql(interpretations[0])
        row_count = len(execute(db, top_sql))
        uses_director = any(
            fk.column == "director_id"
            for fk in interpretations[0].tree.foreign_keys()
        )
        rows.append([label, "director" if uses_director else "assistant",
                     row_count])
    return format_table(
        ["weighting", "top_join_path", "rows_returned"],
        rows,
        title=(
            "E8b parallel equal-hop paths: populated (director) vs "
            "empty (assistant) foreign key"
        ),
    )


def run_e8() -> str:
    rows = []
    for sc in all_scenarios(queries_per_kind=3):
        for label, use_mi in (("mi-weights", True), ("uniform", False)):
            settings = QuestSettings(mutual_information_weights=use_mi)
            engine = Quest(FullAccessWrapper(sc.db), settings)
            result = evaluate(quest_engine(engine), sc.workload, k=10)
            rows.append(
                [
                    f"{sc.name}/{label}",
                    result.success_at(1),
                    result.mrr,
                    empty_top_interpretation_rate(engine, sc.workload),
                ]
            )
    return format_table(
        ["setting", "success@1", "mrr", "empty_top_rate"],
        rows,
        title="E8 mutual-information weighting vs uniform weights",
    )


@pytest.mark.benchmark(group="e8")
def test_e8_mi_ablation(benchmark):
    print_banner("E8", "mutual-information edge weighting ablation")
    print(run_e8())
    print()
    print(run_e8_parallel_paths())

    sc = scenario("imdb")
    engine = Quest(
        FullAccessWrapper(sc.db),
        QuestSettings(mutual_information_weights=True),
    )
    query = sc.workload.queries[0].text
    benchmark(lambda: engine.search(query, 10))
