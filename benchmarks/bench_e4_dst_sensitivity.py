"""E4 — sensitivity to the Dempster-Shafer uncertainty parameters.

Paper anchor: demo message four — "setting different levels of uncertainty
to each module and operating mode, we obtain different results and we can
adapt the behaviour of the system to different scenarios".

Sweeps ``O_C`` / ``O_I`` (forward vs backward trust in the final
combination) and compares the DS combiner against a naive linear score
fusion. Expected shape: a balanced setting beats both extremes, and DS
tracks or beats naive fusion across the sweep.
"""

from __future__ import annotations

import pytest

from benchmarks._common import print_banner, quest_for, scenario
from repro.core import QuestSettings
from repro.eval import evaluate, format_table, quest_engine


def naive_fusion_engine(engine, alpha: float):
    """Linear fusion baseline: alpha*forward + (1-alpha)*backward."""

    def run(text: str, k: int):
        keywords = engine.keywords_of(text)
        configurations = engine.forward(keywords, k * 3)
        interpretations = engine.backward(configurations, k)
        forward_scores = {c: c.score for c in configurations}
        backward_total = sum(i.score for i in interpretations) or 1.0
        scored = sorted(
            interpretations,
            key=lambda i: -(
                alpha * forward_scores.get(i.configuration, 0.0)
                + (1 - alpha) * i.score / backward_total
            ),
        )
        queries, seen = [], set()
        for interpretation in scored:
            query = engine.build_sql(interpretation)
            signature = query.signature()
            if signature not in seen:
                seen.add(signature)
                queries.append(query)
            if len(queries) >= k:
                break
        return queries

    return run


def run_e4() -> str:
    sc = scenario("imdb")
    rows = []
    for forward_uncertainty, backward_uncertainty in (
        (0.05, 0.9),  # trust forward almost exclusively
        (0.3, 0.5),
        (0.3, 0.3),  # the defaults
        (0.5, 0.3),
        (0.9, 0.05),  # trust backward almost exclusively
    ):
        settings = QuestSettings(
            uncertainty_forward=forward_uncertainty,
            uncertainty_backward=backward_uncertainty,
        )
        engine = quest_for(sc.db, settings)
        result = evaluate(quest_engine(engine), sc.workload, k=10)
        rows.append(
            [
                f"O_C={forward_uncertainty} O_I={backward_uncertainty}",
                result.success_at(1),
                result.success_at(10),
                result.mrr,
            ]
        )

    engine = quest_for(sc.db)
    for alpha in (0.3, 0.5, 0.7):
        result = evaluate(
            naive_fusion_engine(engine, alpha), sc.workload, k=10
        )
        rows.append(
            [f"naive alpha={alpha}", result.success_at(1),
             result.success_at(10), result.mrr]
        )
    return format_table(
        ["setting", "success@1", "success@10", "mrr"],
        rows,
        title="E4 DST uncertainty sweep + naive-fusion comparison (imdb)",
    )


@pytest.mark.benchmark(group="e4")
def test_e4_dst_sensitivity(benchmark):
    print_banner("E4", "uncertainty parameters adapt behaviour (message 4)")
    print(run_e4())

    sc = scenario("imdb")
    engine = quest_for(sc.db)
    keywords = engine.keywords_of(sc.workload.queries[0].text)
    configurations = engine.forward(keywords, 10)
    interpretations = engine.backward(configurations, 10)
    benchmark(lambda: engine.combine(configurations, interpretations, 10))
