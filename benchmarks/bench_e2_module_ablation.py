"""E2 — partial results: each module in isolation vs the combination.

Paper anchor: demo message two — "the different types of semantics
implemented in the modules provide different results when applied to the
same keyword query ... we will compare and explain the partial results
provided by each module separately" — and message four (the DS combination
is what reconciles them).

Reports ranking quality of: forward a-priori alone, backward alone, and
the full DST combination, per scenario. Expected shape: the combination
dominates every isolated module.
"""

from __future__ import annotations

import pytest

from benchmarks._common import all_scenarios, print_banner, quest_for, scenario
from repro.eval import (
    backward_only_engine,
    evaluate,
    format_results,
    forward_only_engine,
    quest_engine,
)


def run_e2() -> str:
    summaries, labels = [], []
    for sc in all_scenarios():
        engine = quest_for(sc.db)
        variants = {
            "forward-only": forward_only_engine(engine, "apriori"),
            "backward-only": backward_only_engine(engine),
            "combined(DST)": quest_engine(engine),
        }
        for label, adapter in variants.items():
            result = evaluate(adapter, sc.workload, k=10)
            summaries.append(result.summary())
            labels.append(f"{sc.name}/{label}")
    return format_results(
        summaries, labels, title="E2 module ablation (demo message 2)"
    )


@pytest.mark.benchmark(group="e2")
def test_e2_module_ablation(benchmark):
    print_banner("E2", "partial results per module vs DST combination")
    print(run_e2())

    sc = scenario("imdb")
    engine = quest_for(sc.db)
    adapter = forward_only_engine(engine, "apriori")
    query = sc.workload.queries[0].text
    benchmark(lambda: adapter(query, 10))
