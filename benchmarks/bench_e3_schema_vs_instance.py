"""E3 — Steiner trees on schema graphs vs instance graphs.

Paper anchor: demo message three — "Steiner trees are effective in
computing answers to keyword queries even if applied to graphs representing
database schemas. This is an original use of Steiner trees" — and the
backward-module discussion of why instance graphs (BANKS lineage) blow up:
"the database size gives rise to graphs with millions of vertices and
edges, thus making the problem of finding Steiner Trees intractable".

Reports, as the IMDB instance grows: schema-graph size (constant) vs
instance-graph size (linear), and the time to find top-k trees on each.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._common import print_banner
from repro.baselines import BanksBaseline
from repro.datasets import imdb
from repro.db import Catalog, ColumnRef
from repro.eval import format_table
from repro.steiner import build_schema_graph, top_k_steiner_trees


def run_e3() -> str:
    rows = []
    terminals = [ColumnRef("person", "name"), ColumnRef("genre", "label")]
    for movies in (100, 300, 1000, 3000):
        db = imdb.generate(movies=movies, seed=7)

        start = time.perf_counter()
        graph = build_schema_graph(db.schema, Catalog.from_database(db))
        trees = top_k_steiner_trees(graph, terminals, 5)
        schema_seconds = time.perf_counter() - start

        start = time.perf_counter()
        banks = BanksBaseline(db)
        banks.search(["kubrick", "scifi"], 5)
        instance_seconds = time.perf_counter() - start

        rows.append(
            [
                movies,
                len(graph),
                graph.edge_count,
                banks.node_count,
                banks.edge_count,
                schema_seconds,
                instance_seconds,
                len(trees),
            ]
        )
    return format_table(
        [
            "movies",
            "schema_nodes",
            "schema_edges",
            "instance_nodes",
            "instance_edges",
            "schema_s",
            "instance_s",
            "trees",
        ],
        rows,
        title="E3 schema-level vs instance-level Steiner search",
    )


@pytest.mark.benchmark(group="e3")
def test_e3_schema_vs_instance(benchmark):
    print_banner("E3", "schema-graph Steiner scales independent of data size")
    print(run_e3())

    db = imdb.generate(movies=300, seed=7)
    graph = build_schema_graph(db.schema, Catalog.from_database(db))
    terminals = [ColumnRef("person", "name"), ColumnRef("genre", "label")]
    benchmark(lambda: top_k_steiner_trees(graph, terminals, 5))
