"""E7 — microbenchmarks of the top-k machinery behind Algorithm 1.

Paper anchor: Figure 1 / Algorithm 1 — the List Viterbi decoder, the top-k
Steiner enumeration, the DS combination and the mutual-information
weighting are the four computational kernels of the search process.

``pytest-benchmark`` records per-kernel timing distributions; the printed
table sweeps the main cost drivers (k, query length, schema size, frame
size).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._common import print_banner, quest_for, scenario
from repro.datasets import mondial
from repro.db import Catalog, ColumnRef
from repro.dst import combine_scores
from repro.eval import format_table
from repro.hmm import list_viterbi
from repro.steiner import build_schema_graph, top_k_steiner_trees


def run_e7() -> str:
    sc = scenario("mondial")
    engine = quest_for(sc.db)
    model = engine.apriori_model
    wrapper = engine.wrapper

    rows = []
    base_keywords = ["rivers", "ruritania", "cities", "language", "capital"]
    for length in (2, 3, 5):
        keywords = base_keywords[:length]
        emissions = model.emission_matrix(keywords, wrapper)
        for k in (1, 10, 50):
            start = time.perf_counter()
            list_viterbi(model, emissions, k)
            rows.append(
                [f"list-viterbi T={length} k={k}", time.perf_counter() - start]
            )

    graph = build_schema_graph(sc.db.schema, Catalog.from_database(sc.db))
    terminals = [
        ColumnRef("country", "name"),
        ColumnRef("river", "name"),
        ColumnRef("city", "name"),
    ]
    for k in (1, 5, 20):
        start = time.perf_counter()
        top_k_steiner_trees(graph, terminals, k)
        rows.append([f"top-k steiner k={k}", time.perf_counter() - start])

    for frame_size in (10, 100, 400):
        left = {f"h{i}": float(i + 1) for i in range(frame_size)}
        right = {f"h{i}": float(frame_size - i) for i in range(frame_size)}
        start = time.perf_counter()
        combine_scores(left, right, 0.3, 0.3, k=10)
        rows.append([f"ds-combine frame={frame_size}", time.perf_counter() - start])

    return format_table(
        ["kernel", "seconds"], rows, title="E7 kernel timings (mondial schema)"
    )


@pytest.mark.benchmark(group="e7-viterbi")
def test_e7_list_viterbi(benchmark):
    print_banner("E7", "top-k machinery microbenchmarks")
    print(run_e7())
    sc = scenario("mondial")
    engine = quest_for(sc.db)
    emissions = engine.apriori_model.emission_matrix(
        ["rivers", "ruritania"], engine.wrapper
    )
    benchmark(lambda: list_viterbi(engine.apriori_model, emissions, 10))


@pytest.mark.benchmark(group="e7-steiner")
def test_e7_topk_steiner(benchmark):
    db = mondial.generate(countries=25)
    graph = build_schema_graph(db.schema, Catalog.from_database(db))
    terminals = [ColumnRef("country", "name"), ColumnRef("river", "name")]
    benchmark(lambda: top_k_steiner_trees(graph, terminals, 10))


@pytest.mark.benchmark(group="e7-dst")
def test_e7_ds_combination(benchmark):
    left = {f"h{i}": float(i + 1) for i in range(100)}
    right = {f"h{i}": float(100 - i) for i in range(100)}
    benchmark(lambda: combine_scores(left, right, 0.3, 0.3, k=10))


@pytest.mark.benchmark(group="e7-mi")
def test_e7_mutual_information(benchmark):
    db = mondial.generate(countries=25)
    catalog = Catalog.from_database(db)
    benchmark(lambda: build_schema_graph(db.schema, catalog))
