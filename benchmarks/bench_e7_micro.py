"""E7 — microbenchmarks of the top-k machinery behind Algorithm 1.

Paper anchor: Figure 1 / Algorithm 1 — the List Viterbi decoder, the top-k
Steiner enumeration, the DS combination and the mutual-information
weighting are the four computational kernels of the search process.

``pytest-benchmark`` records per-kernel timing distributions; the printed
table sweeps the main cost drivers (k, query length, schema size, frame
size).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._common import print_banner, quest_for, scenario
from repro.datasets import mondial
from repro.db import Catalog, ColumnRef
from repro.dst import combine_scores
from repro.eval import format_table
from repro.hmm import list_viterbi
from repro.steiner import build_schema_graph, top_k_steiner_trees
from repro.storage import BACKENDS


def run_e7() -> str:
    sc = scenario("mondial")
    engine = quest_for(sc.db)
    model = engine.apriori_model
    wrapper = engine.wrapper

    rows = []
    base_keywords = ["rivers", "ruritania", "cities", "language", "capital"]
    for length in (2, 3, 5):
        keywords = base_keywords[:length]
        emissions = model.emission_matrix(keywords, wrapper)
        for k in (1, 10, 50):
            start = time.perf_counter()
            list_viterbi(model, emissions, k)
            rows.append(
                [f"list-viterbi T={length} k={k}", time.perf_counter() - start]
            )

    graph = build_schema_graph(sc.db.schema, Catalog.from_database(sc.db))
    terminals = [
        ColumnRef("country", "name"),
        ColumnRef("river", "name"),
        ColumnRef("city", "name"),
    ]
    for k in (1, 5, 20):
        start = time.perf_counter()
        top_k_steiner_trees(graph, terminals, k)
        rows.append([f"top-k steiner k={k}", time.perf_counter() - start])

    for frame_size in (10, 100, 400):
        left = {f"h{i}": float(i + 1) for i in range(frame_size)}
        right = {f"h{i}": float(frame_size - i) for i in range(frame_size)}
        start = time.perf_counter()
        combine_scores(left, right, 0.3, 0.3, k=10)
        rows.append([f"ds-combine frame={frame_size}", time.perf_counter() - start])

    return format_table(
        ["kernel", "seconds"], rows, title="E7 kernel timings (mondial schema)"
    )


def run_e7_cache(queries: int = 10) -> str:
    """Repeated-query workload through the batch tier, cold vs warm.

    The same *queries* mondial workload queries run twice through
    ``Quest.search_many``; the second pass answers emission vectors and
    Steiner enumerations from the cross-query caches, and the printed
    counters prove the reuse. Ranked outputs must be identical pass to
    pass — caching changes latency, never answers.
    """
    sc = scenario("mondial")
    engine = quest_for(sc.db)
    texts = [q.text for q in sc.workload][:queries]

    start = time.perf_counter()
    cold = engine.search_many(texts)
    cold_seconds = time.perf_counter() - start
    emissions_before = engine.wrapper.emission_cache_stats
    steiner_before = engine.schema_graph.steiner_cache.stats
    start = time.perf_counter()
    warm = engine.search_many(texts)
    warm_seconds = time.perf_counter() - start

    # Deltas over the warm pass alone: 0 misses here IS the reuse proof.
    emissions = engine.wrapper.emission_cache_stats.since(emissions_before)
    steiner = engine.schema_graph.steiner_cache.stats.since(steiner_before)
    identical = cold == warm
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    rows = [
        ["pass 1 (cold) seconds", f"{cold_seconds:.4f}"],
        ["pass 2 (warm) seconds", f"{warm_seconds:.4f}"],
        ["speedup", f"{speedup:.2f}x"],
        ["warm-pass emission hits/misses", f"{emissions.hits}/{emissions.misses}"],
        ["warm-pass steiner hits/misses", f"{steiner.hits}/{steiner.misses}"],
        ["ranked outputs identical", str(identical)],
    ]
    return format_table(
        ["repeated workload", "value"],
        rows,
        title=f"E7 cross-query caching ({len(texts)} mondial queries, run twice)",
    )


def run_e7_backends(queries: int = 10) -> str:
    """The same workload through every storage backend, timed.

    One engine per registered backend answers the same mondial queries
    through ``Quest.search_many`` (cold pass, then warm pass over the
    engine's caches). Backends guarantee score parity, so the ranked
    outputs must be identical across engines — the printed parity row is
    asserted by the tier-1 parity tests too; here it accompanies the
    honest per-backend timing comparison.
    """
    sc = scenario("mondial")
    texts = [q.text for q in sc.workload][:queries]
    rows = []
    outputs = {}
    for name in sorted(BACKENDS):
        engine = quest_for(sc.db, backend=name)
        start = time.perf_counter()
        cold = engine.search_many(texts)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        engine.search_many(texts)
        warm_seconds = time.perf_counter() - start
        outputs[name] = cold
        rows.append([f"{name} cold pass seconds", f"{cold_seconds:.4f}"])
        rows.append([f"{name} warm pass seconds", f"{warm_seconds:.4f}"])
    reference = outputs[min(outputs)]
    parity = all(result == reference for result in outputs.values())
    rows.append(["rankings identical across backends", str(parity)])
    return format_table(
        ["backend comparison", "value"],
        rows,
        title=f"E7 storage backends ({len(texts)} mondial queries per engine)",
    )


@pytest.mark.benchmark(group="e7-viterbi")
def test_e7_list_viterbi(benchmark):
    print_banner("E7", "top-k machinery microbenchmarks")
    print(run_e7())
    print(run_e7_cache())
    print(run_e7_backends())
    sc = scenario("mondial")
    engine = quest_for(sc.db)
    emissions = engine.apriori_model.emission_matrix(
        ["rivers", "ruritania"], engine.wrapper
    )
    benchmark(lambda: list_viterbi(engine.apriori_model, emissions, 10))


@pytest.mark.benchmark(group="e7-steiner")
def test_e7_topk_steiner(benchmark):
    db = mondial.generate(countries=25)
    graph = build_schema_graph(db.schema, Catalog.from_database(db))
    terminals = [ColumnRef("country", "name"), ColumnRef("river", "name")]
    benchmark(lambda: top_k_steiner_trees(graph, terminals, 10))


@pytest.mark.benchmark(group="e7-dst")
def test_e7_ds_combination(benchmark):
    left = {f"h{i}": float(i + 1) for i in range(100)}
    right = {f"h{i}": float(100 - i) for i in range(100)}
    benchmark(lambda: combine_scores(left, right, 0.3, 0.3, k=10))


@pytest.mark.benchmark(group="e7-mi")
def test_e7_mutual_information(benchmark):
    db = mondial.generate(countries=25)
    catalog = Catalog.from_database(db)
    benchmark(lambda: build_schema_graph(db.schema, catalog))


@pytest.mark.benchmark(group="e7-batch")
def test_e7_repeated_workload(benchmark):
    """Warm-cache batch search over the repeated mondial workload."""
    sc = scenario("mondial")
    engine = quest_for(sc.db)
    texts = [q.text for q in sc.workload][:10]
    cold = engine.search_many(texts)  # populate the caches once
    warm = benchmark(lambda: engine.search_many(texts))
    assert warm == cold
