"""E5 — quality as a function of available training feedback.

Paper anchor: the abstract's claim that "QUEST is able to compute high
quality results even with few training data", and the combiner section's
adaptive ``O_Cap`` / ``O_Cf`` policy.

Trains the feedback HMM on-line from a simulated validating user and
measures held-out quality at increasing feedback volumes, for three
configurations: a-priori only, feedback only, and the DS combination with
the adaptive ignorance schedule. Expected shape: feedback-only starts bad
and improves; the combination dominates both modes at every volume.
"""

from __future__ import annotations

import pytest

from benchmarks._common import print_banner, scenario
from repro.core import Quest, QuestSettings
from repro.datasets.workload import Workload
from repro.eval import evaluate, format_table, forward_only_engine, quest_engine
from repro.feedback import FeedbackTrainer, SimulatedUser
from repro.wrapper import FullAccessWrapper


def run_e5() -> str:
    sc = scenario("dblp", queries_per_kind=5)
    queries = list(sc.workload)
    split = len(queries) // 2
    train, test = queries[:split], queries[split:]
    test_workload = Workload("dblp-held-out", tuple(test))
    oracle = SimulatedUser(sc.workload.gold_training_pairs())

    wrapper = FullAccessWrapper(sc.db)
    engine = Quest(
        wrapper, QuestSettings(use_apriori=True, use_feedback=True)
    )
    trainer = FeedbackTrainer(engine.states)

    rows = []

    def measure(n_feedback: int) -> None:
        engine.set_feedback_model(trainer.model if trainer.is_trained else None)
        engine.settings = engine.settings.updated(
            uncertainty_feedback=trainer.suggested_ignorance()
        )
        combined = evaluate(quest_engine(engine), test_workload, k=10)
        apriori = evaluate(
            forward_only_engine(engine, "apriori"), test_workload, k=10
        )
        feedback_only = evaluate(
            forward_only_engine(engine, "feedback"), test_workload, k=10
        )
        rows.append(
            [
                n_feedback,
                trainer.suggested_ignorance(),
                apriori.mrr,
                feedback_only.mrr,
                combined.mrr,
            ]
        )

    measure(0)
    for count, query in enumerate(train, start=1):
        proposals = engine.forward(engine.keywords_of(query.text), k=10)
        oracle.teach(trainer, query.keywords, proposals)
        if count in (2, 5, len(train)) or count == len(train):
            measure(count)

    return format_table(
        ["feedback", "O_Cf", "mrr_apriori", "mrr_feedback", "mrr_combined"],
        rows,
        title="E5 held-out MRR vs training feedback volume (dblp)",
    )


@pytest.mark.benchmark(group="e5")
def test_e5_feedback_curve(benchmark):
    print_banner("E5", "high quality with few training data")
    print(run_e5())

    sc = scenario("dblp")
    engine = Quest(FullAccessWrapper(sc.db))
    trainer = FeedbackTrainer(engine.states)
    gold = sc.workload.queries[0].gold_configuration
    keywords = sc.workload.queries[0].keywords

    def train_once():
        trainer.validate(keywords, gold)

    benchmark(train_once)
