"""E1 — end-to-end effectiveness on the three demo scenarios.

Paper anchor: demo message one — "a schema-based approach for transforming
keyword queries into SQL is really effective in querying large-size
databases" — plus the IMDB / DBLP / Mondial scenario descriptions.

Reports success@k and MRR of the full QUEST pipeline per dataset against
the DISCOVER, BANKS-style and IR baselines, and search latency as the
instance grows (schema-based work should be insensitive to instance size).
"""

from __future__ import annotations

import pytest

from benchmarks._common import all_scenarios, print_banner, quest_for, scenario
from repro.baselines import DiscoverBaseline, IRBaseline
from repro.datasets import imdb
from repro.eval import evaluate, format_results, quest_engine
from repro.semantics import tokenize_query


def keyword_engine(baseline):
    """Adapt a baseline with a ``search(keywords, k)`` method."""

    def run(text: str, k: int):
        return baseline.search(tokenize_query(text), k)

    return run


def run_e1_quality() -> str:
    summaries, labels = [], []
    for sc in all_scenarios():
        engines = {
            "quest": quest_engine(quest_for(sc.db)),
            "discover": keyword_engine(DiscoverBaseline(sc.db)),
            "ir": keyword_engine(IRBaseline(sc.db)),
        }
        for label, engine in engines.items():
            result = evaluate(engine, sc.workload, k=10, engine_name=label)
            summaries.append(result.summary())
            labels.append(f"{sc.name}/{label}")
    return format_results(summaries, labels, title="E1 quality per scenario")


def run_e1_scalability() -> str:
    from repro.eval import format_table

    rows = []
    for movies in (100, 300, 1000):
        db = imdb.generate(movies=movies, seed=7)
        workload = imdb.workload(db, queries_per_kind=2)
        engine = quest_for(db)
        result = evaluate(quest_engine(engine), workload, k=10)
        rows.append(
            [
                movies,
                db.total_rows(),
                len(engine.schema_graph),
                result.success_at(10),
                result.mean_seconds,
            ]
        )
    return format_table(
        ["movies", "total_rows", "graph_nodes", "success@10", "mean_seconds"],
        rows,
        title="E1 scalability: latency vs instance size (schema graph constant)",
    )


@pytest.mark.benchmark(group="e1")
def test_e1_end_to_end(benchmark):
    print_banner("E1", "end-to-end effectiveness (demo message 1)")
    quality = run_e1_quality()
    scalability = run_e1_scalability()
    print(quality)
    print()
    print(scalability)

    sc = scenario("imdb")
    engine = quest_for(sc.db)
    query = sc.workload.queries[0].text
    benchmark(lambda: engine.search(query, 10))
