"""Shared builders for the experiment benchmarks.

Each ``bench_e*.py`` regenerates one experiment from DESIGN.md's index and
prints the table recorded in EXPERIMENTS.md. Dataset scales are chosen so
the full suite runs in minutes on a laptop while preserving every
qualitative effect (who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core import Quest, QuestSettings
from repro.datasets import dblp, imdb, mondial
from repro.datasets.workload import Workload
from repro.db.database import Database
from repro.storage import create_backend
from repro.wrapper import FullAccessWrapper

#: Storage backend every benchmark engine runs on. Override with
#: ``QUEST_BENCH_BACKEND=sqlite`` to push the whole suite through the
#: SQLite backend (CI runs E7 that way as a parity smoke test).
BENCH_BACKEND = os.environ.get("QUEST_BENCH_BACKEND", "memory")

#: One moderate configuration per demo scenario.
SCALES = {
    "imdb": {"movies": 300},
    "dblp": {"papers": 300},
    "mondial": {"countries": 25},
}

_GENERATORS = {"imdb": imdb, "dblp": dblp, "mondial": mondial}
_CACHE: dict[str, tuple[Database, Workload]] = {}


@dataclass(frozen=True)
class Scenario:
    """One demo database plus its gold workload."""

    name: str
    db: Database
    workload: Workload


def scenario(name: str, queries_per_kind: int = 4) -> Scenario:
    """Build (and cache) one of the three demo scenarios."""
    key = f"{name}-{queries_per_kind}"
    if key not in _CACHE:
        module = _GENERATORS[name]
        db = module.generate(**SCALES[name])
        workload = module.workload(db, queries_per_kind=queries_per_kind)
        _CACHE[key] = (db, workload)
    db, workload = _CACHE[key]
    return Scenario(name, db, workload)


def all_scenarios(queries_per_kind: int = 4) -> list[Scenario]:
    """All three demo scenarios."""
    return [scenario(name, queries_per_kind) for name in _GENERATORS]


def quest_for(
    db: Database,
    settings: QuestSettings | None = None,
    backend: str | None = None,
) -> Quest:
    """A full-access QUEST engine over *db* on the chosen storage backend.

    *backend* defaults to :data:`BENCH_BACKEND` (the
    ``QUEST_BENCH_BACKEND`` environment variable, "memory" when unset).
    """
    chosen = backend if backend is not None else BENCH_BACKEND
    return Quest(FullAccessWrapper(create_backend(chosen, db)), settings)


def print_banner(experiment: str, description: str) -> None:
    """Header printed before every experiment table."""
    print()
    print("=" * 78)
    print(f"{experiment}: {description}")
    print("=" * 78)
