"""Parity and persistence of the columnar index tier.

Three contracts, each asserted as *bit identity*:

- the columnar (CSR numpy) index layout returns exactly the scores,
  selectivities and row positions of the retained dict layout on any
  data (hypothesis-generated random tables included);
- the batched emission path — ``emission_block`` on the index/backends,
  ``emission_matrix`` on the wrappers, the batched branch of
  ``HiddenMarkovModel.emission_matrix`` — produces the same floats as
  the per-keyword reference walk, with duplicate keywords deduplicated
  but their per-position rows preserved;
- a save -> load round trip of the ``.npz`` artifact serves identical
  searches, and a stale artifact is refused (never silently served).

Plus the batch tier: a forked ``search_many`` must return element-wise
identical rankings to the sequential loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Quest, QuestSettings
from repro.core.batch import fork_available
from repro.datasets import mondial
from repro.db import Column, Database, Schema, TableSchema
from repro.db.fulltext import FullTextIndex, tokenize_value
from repro.db.schema import ColumnRef
from repro.db.types import DataType
from repro.errors import IndexArtifactError
from repro.storage import MemoryBackend, create_backend
from repro.wrapper import FullAccessWrapper

# -- random-table parity (hypothesis) ----------------------------------------

#: A tiny vocabulary so generated values collide — term sharing across
#: rows, columns and tables is where TF/IDF arithmetic can diverge.
_WORDS = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "42", "1994", "x"]
)
_TEXT_VALUES = st.one_of(
    st.none(), st.lists(_WORDS, min_size=0, max_size=3).map(" ".join)
)


def _schema() -> Schema:
    return Schema(
        tables=[
            TableSchema(
                "left",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("words", DataType.TEXT),
                    Column("num", DataType.INTEGER),
                ),
                ("id",),
            ),
            TableSchema(
                "right",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("words", DataType.TEXT),
                ),
                ("id",),
            ),
        ],
        foreign_keys=[],
        name="parity",
    )


@st.composite
def _databases(draw):
    db = Database(_schema())
    for position in range(draw(st.integers(min_value=0, max_value=12))):
        db.insert(
            "left",
            {
                "id": position,
                "words": draw(_TEXT_VALUES),
                "num": draw(st.one_of(st.none(), st.integers(0, 50))),
            },
        )
    for position in range(draw(st.integers(min_value=0, max_value=8))):
        db.insert("right", {"id": position, "words": draw(_TEXT_VALUES)})
    return db


def _probe_terms(db: Database) -> list[str]:
    terms: set[str] = set()
    for table in db.tables:
        for row in table.rows:
            for value in row:
                terms.update(tokenize_value(value))
    return sorted(terms) + ["absent", "ALPHA", "42"]


@settings(max_examples=60, deadline=None)
@given(db=_databases())
def test_columnar_matches_dict_layout(db: Database):
    columnar = FullTextIndex(db, columnar=True)
    reference = FullTextIndex(db, columnar=False)
    refs = [
        ColumnRef(table.name, column.name)
        for table in db.tables
        for column in table.schema.columns
    ]
    terms = _probe_terms(db)
    assert columnar.vocabulary_size == reference.vocabulary_size
    for term in terms:
        assert (term in columnar) == (term in reference)
        assert columnar.attribute_scores(term) == reference.attribute_scores(term)
        for ref in refs:
            assert columnar.score(term, ref) == reference.score(term, ref)
            assert columnar.selectivity(term, ref) == reference.selectivity(
                term, ref
            )
            assert columnar.matching_row_positions(
                term, ref
            ) == reference.matching_row_positions(term, ref)
    block = columnar.emission_block(terms, refs)
    for i, term in enumerate(terms):
        scores = reference.attribute_scores(term)
        assert np.array_equal(
            block[i], np.array([scores.get(ref, 0.0) for ref in refs])
        )


@settings(max_examples=20, deadline=None)
@given(db=_databases(), extra=st.lists(_WORDS, min_size=1, max_size=4))
def test_columnar_layout_stays_correct_under_inserts(db, extra):
    columnar = FullTextIndex(db, columnar=True)
    reference = FullTextIndex(db, columnar=False)
    assert columnar.vocabulary_size == reference.vocabulary_size  # build both
    base = db.row_count("left")
    for offset, word in enumerate(extra):
        db.insert("left", {"id": 1000 + offset, "words": word, "num": None})
    ref = ColumnRef("left", "words")
    for term in set(extra):
        assert columnar.attribute_scores(term) == reference.attribute_scores(term)
        positions = columnar.matching_row_positions(term, ref)
        assert positions == reference.matching_row_positions(term, ref)
        assert any(position >= base for position in positions)


# -- emission-path parity ----------------------------------------------------


@pytest.fixture(scope="module")
def mondial_db():
    return mondial.generate(countries=10, seed=29)


def test_emission_matrix_matches_per_keyword_walk(mondial_db):
    engine = Quest(FullAccessWrapper(MemoryBackend(mondial_db)))
    keywords = ["rivers", "ruritania", "rivers", "capital", "nosuchword"]
    batched = engine.wrapper.emission_matrix(keywords, engine.states)
    for row, keyword in zip(batched, keywords):
        assert np.array_equal(
            row, engine.wrapper.compute_emission_scores(keyword, engine.states)
        )
    # Duplicate keywords: identical rows, one scoring pass (the second
    # occurrence is a cache hit, not a recomputation).
    assert np.array_equal(batched[0], batched[2])
    model_batched = engine.apriori_model.emission_matrix(
        keywords, engine.wrapper, batched=True
    )
    model_reference = engine.apriori_model.emission_matrix(
        keywords, engine.wrapper, batched=False
    )
    assert np.array_equal(model_batched, model_reference)


def test_backend_attribute_scores_many_parity(mondial_db):
    for backend_name in ("memory", "sqlite"):
        backend = create_backend(backend_name, mondial_db)
        keywords = ["rivers", "ruritania", "rivers", "absent"]
        batched = backend.attribute_scores_many(keywords)
        assert batched == [backend.attribute_scores(k) for k in keywords]
        refs = [
            ColumnRef(table.name, column.name)
            for table in mondial_db.schema.tables
            for column in table.columns
        ]
        block = backend.emission_block(keywords, refs)
        for i, keyword in enumerate(keywords):
            scores = backend.attribute_scores(keyword)
            assert np.array_equal(
                block[i], np.array([scores.get(ref, 0.0) for ref in refs])
            )


def test_columnar_index_flag_preserves_rankings(mondial_db):
    workload = mondial.workload(mondial_db, queries_per_kind=2, seed=31)
    texts = [q.text for q in workload][:6]
    columnar = Quest(FullAccessWrapper(MemoryBackend(mondial_db)))
    reference = Quest(
        FullAccessWrapper(MemoryBackend(mondial_db)),
        QuestSettings(columnar_index=False),
    )
    fast = columnar.search_many(texts, strict=False)
    slow = reference.search_many(texts, strict=False)
    assert [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in fast
    ] == [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in slow
    ]


# -- artifact round trip -----------------------------------------------------


def test_artifact_round_trip_serves_identical_searches(mondial_db, tmp_path):
    artifact = tmp_path / "mondial-fulltext.npz"
    built_index = FullTextIndex(mondial_db)
    built_index.warm()
    built_index.save(artifact)
    loaded_index = FullTextIndex.load(artifact, mondial_db)

    workload = mondial.workload(mondial_db, queries_per_kind=2, seed=31)
    texts = [q.text for q in workload][:6]
    built = Quest(FullAccessWrapper(MemoryBackend(mondial_db, fulltext=built_index)))
    loaded = Quest(
        FullAccessWrapper(MemoryBackend(mondial_db, fulltext=loaded_index))
    )
    from_build = built.search_many(texts, strict=False)
    from_artifact = loaded.search_many(texts, strict=False)
    assert [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in from_build
    ] == [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in from_artifact
    ]


def test_artifact_loads_through_backend_and_refreshes_after_mutation(tmp_path):
    db = mondial.generate(countries=6, seed=3)
    backend = MemoryBackend(db)
    artifact = tmp_path / "idx.npz"
    assert backend.save_index(artifact)
    fresh = MemoryBackend(db)
    assert fresh.load_index(artifact)
    assert fresh.attribute_scores("ruritania") == backend.attribute_scores(
        "ruritania"
    )
    # A mutation after the load must trigger the incremental tail scan
    # (the dict layout is rehydrated from the snapshot first).
    country = db.table("country").rows[0]
    db.insert(
        "country",
        {
            "code": "XX",
            "name": "Zzyzxstan unique",
            **{
                column.name: value
                for column, value in zip(
                    db.schema.table("country").columns, country
                )
                if column.name not in ("code", "name")
            },
        },
    )
    assert fresh.attribute_scores("zzyzxstan")
    assert fresh.attribute_scores("zzyzxstan") == MemoryBackend(
        db
    ).attribute_scores("zzyzxstan")


def test_stale_artifact_is_refused(mondial_db, tmp_path):
    artifact = tmp_path / "stale.npz"
    index = FullTextIndex(mondial_db)
    index.warm()
    index.save(artifact)
    other = mondial.generate(countries=4, seed=99)
    with pytest.raises(IndexArtifactError):
        FullTextIndex.load(artifact, other)
    missing = tmp_path / "missing.npz"
    with pytest.raises(IndexArtifactError):
        FullTextIndex.load(missing, mondial_db)


def test_load_or_build_builds_then_reuses(mondial_db, tmp_path):
    artifact = tmp_path / "cacheable.npz"
    first = FullTextIndex.load_or_build(artifact, mondial_db)
    assert artifact.exists()
    second = FullTextIndex.load_or_build(artifact, mondial_db)
    assert second.attribute_scores("ruritania") == first.attribute_scores(
        "ruritania"
    )


# -- memory-mapped artifacts -------------------------------------------------


def test_mmap_load_is_memmap_backed_and_bit_identical(mondial_db, tmp_path):
    artifact = tmp_path / "mapped.npz"
    built = FullTextIndex(mondial_db)
    built.warm()
    built.save(artifact)
    mapped = FullTextIndex.load(artifact, mondial_db, mmap=True)
    assert mapped.mmapped
    snapshot = mapped._snapshot
    assert isinstance(snapshot.row_positions, np.memmap)
    assert isinstance(snapshot.entry_counts, np.memmap)
    heap = FullTextIndex.load(artifact, mondial_db, mmap=False)
    assert not heap.mmapped
    for keyword in ("ruritania", "blue", "1994"):
        assert mapped.attribute_scores(keyword) == heap.attribute_scores(keyword)
        assert mapped.attribute_scores(keyword) == built.attribute_scores(keyword)


def test_load_or_build_reopens_a_fresh_build_mapped(mondial_db, tmp_path):
    artifact = tmp_path / "fresh.npz"
    index = FullTextIndex.load_or_build(artifact, mondial_db, mmap=True)
    # Even the build path must hand back a mapped index — the pages a
    # prefork parent touches here are the ones its workers will share.
    assert index.mmapped
    assert artifact.exists()


def test_mutation_after_mmap_load_layers_then_merges_into_heap(tmp_path):
    db = mondial.generate(countries=6, seed=3)
    artifact = tmp_path / "mut.npz"
    FullTextIndex.load_or_build(artifact, db)
    mapped = FullTextIndex.load(artifact, db, mmap=True)
    assert mapped.mmapped
    country = db.table("country").rows[0]
    db.insert(
        "country",
        {
            "code": "XX",
            "name": "Zzyzxstan unique",
            **{
                column.name: value
                for column, value in zip(
                    db.schema.table("country").columns, country
                )
                if column.name not in ("code", "name")
            },
        },
    )
    # A small mutation layers over the retained mapped snapshot ...
    assert mapped.attribute_scores("zzyzxstan")
    assert mapped.mmapped
    assert mapped.delta_terms
    assert mapped.attribute_scores("zzyzxstan") == FullTextIndex(
        db
    ).attribute_scores("zzyzxstan")
    # ... until a merge reseals the delta into a private in-heap snapshot.
    mapped.merge()
    assert not mapped.mmapped
    assert not mapped.delta_terms
    assert mapped.attribute_scores("zzyzxstan") == FullTextIndex(
        db
    ).attribute_scores("zzyzxstan")


def test_readonly_refuses_missing_and_stale_artifacts(mondial_db, tmp_path):
    missing = tmp_path / "absent.npz"
    with pytest.raises(IndexArtifactError, match="read-only"):
        FullTextIndex.load_or_build(missing, mondial_db, readonly=True)
    assert not missing.exists()  # read-only must never write

    stale = tmp_path / "stale.npz"
    index = FullTextIndex(mondial_db)
    index.warm()
    index.save(stale)
    other = mondial.generate(countries=4, seed=99)
    before = stale.read_bytes()
    with pytest.raises(IndexArtifactError, match="read-only"):
        FullTextIndex.load_or_build(stale, other, readonly=True)
    assert stale.read_bytes() == before  # ... nor repair in place


def _tampered_header(source, destination, mutate):
    """Rewrite *source*'s artifact with a mutated catalog header."""
    import json

    with np.load(source, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files if name != "header"}
        header = json.loads(str(data["header"]))
    mutate(header)
    with open(destination, "wb") as handle:
        np.savez(
            handle,
            header=np.asarray(json.dumps(header, sort_keys=True)),
            **arrays,
        )


def test_field_set_refusal_names_the_offending_fields(mondial_db, tmp_path):
    artifact = tmp_path / "fields.npz"
    index = FullTextIndex(mondial_db)
    index.warm()
    index.save(artifact)

    tampered = tmp_path / "tampered.npz"
    dropped = {}

    def swap_field(header):
        dropped["name"] = header["fields"][0]
        header["fields"] = header["fields"][1:] + ["bogus.column"]

    _tampered_header(artifact, tampered, swap_field)
    with pytest.raises(IndexArtifactError) as info:
        FullTextIndex.load(tampered, mondial_db)
    message = str(info.value)
    assert f"missing from artifact: {dropped['name']}" in message
    assert "unknown to schema: bogus.column" in message

    reordered = tmp_path / "reordered.npz"

    def reverse_fields(header):
        header["fields"] = list(reversed(header["fields"]))

    _tampered_header(artifact, reordered, reverse_fields)
    with pytest.raises(
        IndexArtifactError, match="field order differs at position 0"
    ):
        FullTextIndex.load(reordered, mondial_db)


def test_corrupt_artifact_raises_artifact_error(mondial_db, tmp_path):
    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"this is not a zip archive at all")
    with pytest.raises(IndexArtifactError):
        FullTextIndex.load(garbage, mondial_db, mmap=True)
    with pytest.raises(IndexArtifactError):
        FullTextIndex.load(garbage, mondial_db, mmap=False)

    truncated = tmp_path / "truncated.npz"
    index = FullTextIndex(mondial_db)
    index.warm()
    index.save(tmp_path / "whole.npz")
    truncated.write_bytes((tmp_path / "whole.npz").read_bytes()[:128])
    with pytest.raises(IndexArtifactError):
        FullTextIndex.load(truncated, mondial_db, mmap=True)


def test_mmap_search_rankings_bit_identical(mondial_db, tmp_path):
    artifact = tmp_path / "serve.npz"
    FullTextIndex.load_or_build(artifact, mondial_db)
    mapped = FullTextIndex.load(artifact, mondial_db, mmap=True)
    heap = FullTextIndex.load(artifact, mondial_db, mmap=False)
    workload = mondial.workload(mondial_db, queries_per_kind=2, seed=31)
    texts = [q.text for q in workload][:4]
    from_mapped = Quest(
        FullAccessWrapper(MemoryBackend(mondial_db, fulltext=mapped))
    ).search_many(texts, strict=False)
    from_heap = Quest(
        FullAccessWrapper(MemoryBackend(mondial_db, fulltext=heap))
    ).search_many(texts, strict=False)
    assert [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in from_mapped
    ] == [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in from_heap
    ]


# -- forked batch tier -------------------------------------------------------


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
def test_forked_search_many_matches_sequential(mondial_db):
    workload = mondial.workload(mondial_db, queries_per_kind=2, seed=31)
    texts = [q.text for q in workload][:6]
    sequential = Quest(FullAccessWrapper(MemoryBackend(mondial_db)))
    forked = Quest(
        FullAccessWrapper(MemoryBackend(mondial_db)),
        QuestSettings(batch_workers=2),
    )
    expected = sequential.search_many(texts, strict=False)
    actual = forked.search_many(texts, strict=False)
    assert [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in expected
    ] == [
        [(e.sql, e.probability, e.result_count) for e in answers]
        for answers in actual
    ]
    assert len(forked.batch_traces) == len(texts)
    assert forked.last_trace is not None
