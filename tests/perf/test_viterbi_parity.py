"""Parity: the vectorised List Viterbi kernel against the reference.

The contract is *bit identity*: on any model and emission matrix, the
numpy kernel must return the same paths with the same log-probabilities
(float for float) in the same order as the pure-Python reference —
including selection and ordering of exactly-tied paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmm.model import HiddenMarkovModel
from repro.hmm.states import StateSpace
from repro.hmm.viterbi import list_viterbi, list_viterbi_reference, viterbi


class _States:
    """A stand-in state space: the kernels only need ``len``."""

    def __init__(self, n: int) -> None:
        self._n = n

    def __len__(self) -> int:
        return self._n


def _random_problem(seed: int):
    """A random HMM + emission matrix, mixing generic and tie-heavy cases."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    T = int(rng.integers(1, 6))
    k = int(rng.integers(1, 9))
    mode = seed % 3
    if mode == 0:
        # Generic position: distinct probabilities, no ties.
        initial = rng.random(n) + 0.05
        transition = rng.random((n, n)) + 0.05
        emissions = rng.random((T, n)) + 0.05
    elif mode == 1:
        # Tie-heavy: probabilities drawn from a tiny pool, plus hard zeros
        # (-inf log-probabilities) to exercise pruning.
        pool = np.array([0.0, 0.5, 1.0])
        initial = rng.choice(pool, n) + 0.01
        transition = rng.choice(pool, (n, n))
        transition = transition + (transition.sum(axis=1, keepdims=True) == 0)
        emissions = rng.choice(pool, (T, n))
        if not emissions.sum():
            emissions[0, 0] = 1.0
    else:
        # Maximum degeneracy: every path ties with every other.
        initial = np.ones(n)
        transition = np.ones((n, n))
        emissions = np.ones((T, n))
    if mode != 2 and rng.random() < 0.3:
        emissions[rng.integers(0, T), rng.integers(0, n)] = 0.0
    model = HiddenMarkovModel(_States(n), initial, transition)
    row_sums = np.maximum(emissions.sum(axis=1, keepdims=True), 1e-300)
    return model, emissions / row_sums, k


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_vectorized_matches_reference(seed: int):
    model, emissions, k = _random_problem(seed)
    reference = list_viterbi_reference(model, emissions, k)
    vectorized = list_viterbi(model, emissions, k, vectorized=True)
    assert len(vectorized) == len(reference)
    for fast, slow in zip(vectorized, reference):
        assert fast.states == slow.states
        assert fast.log_probability == slow.log_probability  # bit identity


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_explicit_fallback_is_the_reference(seed: int):
    model, emissions, k = _random_problem(seed)
    fallback = list_viterbi(model, emissions, k, vectorized=False)
    assert fallback == list_viterbi_reference(model, emissions, k)


def test_degenerate_ties_order_lexicographically():
    """All-uniform model: every sequence ties, order must be path-lex."""
    n, T, k = 3, 3, 8
    model = HiddenMarkovModel(_States(n), np.ones(n), np.ones((n, n)))
    emissions = np.full((T, n), 1.0 / n)
    paths = list_viterbi(model, emissions, k)
    assert [p.states for p in paths] == sorted(p.states for p in paths)
    assert paths == list_viterbi_reference(model, emissions, k)


def test_single_best_path_agrees(mini_engine):
    """End-to-end smoke on a real engine's a-priori model."""
    model = mini_engine.apriori_model
    emissions = model.emission_matrix(
        ["matrix", "reeves"], mini_engine.wrapper
    )
    assert viterbi(model, emissions) == list_viterbi_reference(model, emissions, 1)[0]


def test_state_space_width_checked():
    model = HiddenMarkovModel(_States(2), np.ones(2), np.ones((2, 2)))
    from repro.errors import ModelError

    with pytest.raises(ModelError):
        list_viterbi(model, np.ones((2, 3)), 2)
    with pytest.raises(ModelError):
        list_viterbi(model, np.ones((2, 2)), 0)


def test_statespace_is_compatible(mini_schema):
    """The fake used above matches the real StateSpace contract."""
    states = StateSpace(mini_schema)
    assert len(states) > 0
