"""Parity of the backward-stage optimisations against their references.

Three independent claims, each bit-exact:

* the vectorised multi-source ``distance_matrix`` reproduces the scalar
  Dijkstra rows (distances **and** predecessors) for every source;
* Dreyfus-Wagner with the subset-reusing plan cache — warm, shared
  across a random sequence of terminal sets with interleaved graph
  mutations — returns the same trees as the cold dict reference;
* the staged pipeline returns identical rankings whichever of the new
  settings flags (``batched_shortest_paths``, ``steiner_plan_cache``,
  ``sql_pushdown``) is enabled, on both storage backends.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Quest, QuestSettings
from repro.datasets import mondial
from repro.errors import SteinerError
from repro.steiner import (
    approximate_steiner_tree,
    exact_steiner_tree,
    exact_steiner_tree_reference,
)
from repro.storage import create_backend
from repro.wrapper import FullAccessWrapper

from tests.perf.test_steiner_parity import _random_graph

BACKENDS = ("memory", "sqlite")
NEW_FLAGS = ("batched_shortest_paths", "steiner_plan_cache", "sql_pushdown")


# -- kernel-level parity ---------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_distance_matrix_bit_identical_to_dijkstra(seed: int):
    graph, _terminals = _random_graph(seed)
    fresh, _ = _random_graph(seed)  # same topology, untouched caches
    compact = graph.compact()
    sources = list(range(len(compact)))
    distances, predecessors = compact.distance_matrix(sources)
    reference = fresh.compact()
    for i in sources:
        ref_distances, ref_predecessors = reference.dijkstra(i)
        assert distances[i].tolist() == ref_distances  # bit identity
        assert predecessors[i].tolist() == ref_predecessors


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_plan_cache_sequence_matches_reference(seed: int):
    """Random terminal sequences with interleaved ``add_edge``.

    The shared graph keeps its plan cache warm across the sequence (so
    later sets reuse earlier subset rows); every answer must still be
    bit-identical to the cold dict reference, and every mutation must
    empty the cache.
    """
    graph, _ = _random_graph(seed)
    rng = random.Random(seed + 7)
    nodes = list(graph.nodes)
    for _step in range(6):
        terminals = rng.sample(nodes, rng.randint(1, min(5, len(nodes))))
        try:
            fast = exact_steiner_tree(graph, terminals)
        except SteinerError:
            with pytest.raises(SteinerError):
                exact_steiner_tree_reference(graph, terminals)
            continue
        slow = exact_steiner_tree_reference(graph, terminals)
        assert fast.signature() == slow.signature()
        assert fast.weight == slow.weight  # bit identity
        if rng.random() < 0.4:
            left, right = rng.sample(nodes, 2)
            if graph.edge_between(left, right) is None:
                graph.add_edge(left, right, rng.uniform(0.1, 2.0), "intra")
                assert len(graph.plan_cache) == 0  # mutation clears rows


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_kmb_batched_prefetch_identical(seed: int):
    graph, terminals = _random_graph(seed)
    fresh, _ = _random_graph(seed)
    try:
        fast = approximate_steiner_tree(graph, terminals, cached=True, batched=True)
    except SteinerError:
        with pytest.raises(SteinerError):
            approximate_steiner_tree(fresh, terminals, cached=True, batched=False)
        return
    slow = approximate_steiner_tree(fresh, terminals, cached=True, batched=False)
    assert fast.signature() == slow.signature()
    assert fast.weight == slow.weight


def test_plan_cache_counts_hits_and_survives_repeats():
    graph, terminals = _random_graph(11)
    if len(terminals) < 2:
        terminals = list(graph.nodes)[:3]
    exact_steiner_tree(graph, terminals)
    stats_cold = graph.plan_cache.stats
    assert stats_cold.misses > 0
    assert stats_cold.size == len(graph.plan_cache)
    exact_steiner_tree(graph, terminals)
    stats_warm = graph.plan_cache.stats
    assert stats_warm.hits > stats_cold.hits


# -- pipeline-level parity -------------------------------------------------


@pytest.fixture(scope="module")
def small_mondial():
    db = mondial.generate(countries=8, seed=23)
    texts = [q.text for q in mondial.workload(db, queries_per_kind=1, seed=31)]
    return db, texts


def _rankings(db, texts, backend: str, settings: QuestSettings):
    engine = Quest(FullAccessWrapper(create_backend(backend, db)), settings)
    answers = engine.search_many(texts, strict=False)
    return [
        [(e.sql, e.probability, e.result_count) for e in per_query]
        for per_query in answers
    ]


@pytest.mark.parametrize("backend", BACKENDS)
def test_new_flags_preserve_rankings(small_mondial, backend: str):
    db, texts = small_mondial
    reference = _rankings(db, texts, backend, QuestSettings.reference_kernels())
    assert _rankings(db, texts, backend, QuestSettings()) == reference
    for flag in NEW_FLAGS:
        flipped = QuestSettings.reference_kernels(**{flag: True})
        assert _rankings(db, texts, backend, flipped) == reference, flag
    # SQL-prefilter-only configuration (batched paths off, pushdown on).
    sql_only = QuestSettings(batched_shortest_paths=False, steiner_plan_cache=False)
    assert _rankings(db, texts, backend, sql_only) == reference


def test_reference_kernels_disable_new_flags():
    reference = QuestSettings.reference_kernels()
    defaults = QuestSettings()
    for flag in NEW_FLAGS:
        assert not getattr(reference, flag)
        assert getattr(defaults, flag)


@pytest.mark.parametrize("backend", BACKENDS)
def test_subset_cache_counters_visible_in_trace(small_mondial, backend: str):
    db, texts = small_mondial
    engine = Quest(FullAccessWrapper(create_backend(backend, db)))
    cold = engine.pipeline.run(engine, query=texts[0])
    warm = engine.pipeline.run(engine, query=texts[0])
    assert cold.trace.steiner_subset_cache.misses > 0
    assert warm.trace.steiner_subset_cache.hits > 0
    assert warm.trace.steiner_subset_cache.misses == 0
    assert warm.trace.steiner_subset_cache.size == len(engine.schema_graph.plan_cache)
    assert "subsets[" in warm.trace.summary()


# -- the single-CPU batch degrade ------------------------------------------


def test_single_cpu_degrades_implicit_fork_pool(small_mondial, monkeypatch):
    db, texts = small_mondial
    monkeypatch.setattr("repro.core.engine.os.cpu_count", lambda: 1)
    engine = Quest(
        FullAccessWrapper(create_backend("memory", db)),
        QuestSettings(batch_workers=4),
    )
    fast = engine.search_many(texts[:2], strict=False)
    assert len(fast) == 2
    for trace in engine.batch_traces:
        assert any("single-CPU" in note for note in trace.notes)


def test_single_cpu_honours_explicit_workers(small_mondial, monkeypatch):
    db, texts = small_mondial
    monkeypatch.setattr("repro.core.engine.os.cpu_count", lambda: 1)
    engine = Quest(FullAccessWrapper(create_backend("memory", db)))
    engine.search_many(texts[:2], strict=False, workers=1)
    for trace in engine.batch_traces:
        assert not trace.notes
