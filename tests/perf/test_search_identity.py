"""End-to-end ranking identity: optimised kernels vs reference kernels.

The whole point of the numeric rewrites is that they change latency, never
answers: a full mondial ``search_many`` workload must return *identical*
explanation lists — same SQL, same probabilities float for float, same
order — whether the engine decodes/enumerates/combines on the optimised
paths or on the retained pure-Python references.
"""

from __future__ import annotations

import pytest

from repro.core import Quest, QuestSettings
from repro.datasets import mondial
from repro.wrapper import FullAccessWrapper

from tests.conftest import backend_for


@pytest.fixture(scope="module")
def mondial_pair():
    db = mondial.generate(countries=10, seed=29)
    workload = mondial.workload(db, queries_per_kind=2, seed=31)
    optimised = Quest(FullAccessWrapper(backend_for(db)))
    reference = Quest(
        FullAccessWrapper(backend_for(db)), QuestSettings.reference_kernels()
    )
    return workload, optimised, reference


def test_reference_kernels_settings_flip_all_flags():
    settings = QuestSettings.reference_kernels()
    assert not settings.vectorized_viterbi
    assert not settings.bitmask_dst
    assert not settings.fast_steiner
    defaults = QuestSettings()
    assert defaults.vectorized_viterbi
    assert defaults.bitmask_dst
    assert defaults.fast_steiner


def test_search_many_rankings_identical(mondial_pair):
    workload, optimised, reference = mondial_pair
    texts = [q.text for q in workload][:8]
    fast = optimised.search_many(texts, strict=False)
    slow = reference.search_many(texts, strict=False)
    assert len(fast) == len(slow)
    for fast_answers, slow_answers in zip(fast, slow):
        assert len(fast_answers) == len(slow_answers)
        for fast_explanation, slow_explanation in zip(fast_answers, slow_answers):
            assert fast_explanation.sql == slow_explanation.sql
            assert (
                fast_explanation.probability == slow_explanation.probability
            )  # bit identity
            assert (
                fast_explanation.result_count == slow_explanation.result_count
            )
            assert fast_explanation == slow_explanation


def test_stage_products_identical(mondial_pair):
    """Per-stage outputs (not just final answers) agree on both paths."""
    workload, optimised, reference = mondial_pair
    keywords = optimised.keywords_of(next(iter(workload)).text)
    fast_configurations = optimised.forward(keywords)
    slow_configurations = reference.forward(keywords)
    assert fast_configurations == slow_configurations
    assert [c.score for c in fast_configurations] == [
        c.score for c in slow_configurations
    ]
    fast_interpretations = optimised.backward(fast_configurations)
    slow_interpretations = reference.backward(slow_configurations)
    assert fast_interpretations == slow_interpretations
    assert [i.tree.weight for i in fast_interpretations] == [
        i.tree.weight for i in slow_interpretations
    ]
    fast_ranked = optimised.combine(fast_configurations, fast_interpretations)
    slow_ranked = reference.combine(slow_configurations, slow_interpretations)
    assert fast_ranked == slow_ranked
    assert [i.score for i in fast_ranked] == [i.score for i in slow_ranked]
