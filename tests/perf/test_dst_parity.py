"""Parity: bitmask Dempster-Shafer combination against the reference loop.

Both paths must produce bit-identical mass functions: same focal elements,
same masses float for float, same conflict coefficient — on arbitrary
(multi-element-focal) bodies of evidence, not just the singleton+ignorance
shape the engine produces.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dst import MassFunction, combine_scores, conflict, dempster_combine
from repro.dst.mass import FrameInterning
from repro.errors import CombinationError


def _random_mass_pair(seed: int):
    """Two random bodies of evidence over one universe (may conflict)."""
    rng = random.Random(seed)
    universe = [f"h{i}" for i in range(rng.randint(2, 12))]

    def random_masses():
        masses: dict[frozenset, float] = {}
        for _ in range(rng.randint(1, 6)):
            focal = frozenset(rng.sample(universe, rng.randint(1, len(universe))))
            masses[focal] = masses.get(focal, 0.0) + rng.random()
        total = sum(masses.values())
        return {focal: mass / total for focal, mass in masses.items()}

    return universe, random_masses(), random_masses()


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_combine_bitmask_matches_reference(seed: int):
    universe, left_masses, right_masses = _random_mass_pair(seed)

    def build():
        return (
            MassFunction(left_masses, frame=universe),
            MassFunction(right_masses, frame=universe),
        )

    left, right = build()
    try:
        fast = dempster_combine(left, right, bitmask=True)
    except CombinationError:
        left, right = build()
        with pytest.raises(CombinationError):
            dempster_combine(left, right, bitmask=False)
        return
    left, right = build()
    slow = dempster_combine(left, right, bitmask=False)

    fast_items = dict(fast.items())
    slow_items = dict(slow.items())
    assert set(fast_items) == set(slow_items)
    for focal in fast_items:
        assert fast_items[focal] == slow_items[focal]  # bit identity
    assert fast.frame == slow.frame


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_conflict_bitmask_matches_reference(seed: int):
    universe, left_masses, right_masses = _random_mass_pair(seed)
    left = MassFunction(left_masses, frame=universe)
    right = MassFunction(right_masses, frame=universe)
    assert conflict(left, right, bitmask=True) == conflict(
        left, right, bitmask=False
    )


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_combine_scores_paths_agree(seed: int):
    rng = random.Random(seed)
    universe = [f"h{i}" for i in range(rng.randint(1, 30))]
    left = {h: rng.random() for h in rng.sample(universe, rng.randint(1, len(universe)))}
    right = {h: rng.random() for h in rng.sample(universe, rng.randint(1, len(universe)))}
    left_ignorance = rng.choice([0.0, 0.3, 0.9])
    right_ignorance = rng.choice([0.0, 0.3, 0.9])
    try:
        fast = combine_scores(left, right, left_ignorance, right_ignorance, bitmask=True)
    except CombinationError:
        with pytest.raises(CombinationError):
            combine_scores(left, right, left_ignorance, right_ignorance, bitmask=False)
        return
    slow = combine_scores(left, right, left_ignorance, right_ignorance, bitmask=False)
    assert fast == slow  # same hypotheses, same probabilities, same order


def test_separate_internings_are_aligned():
    """Operands built with unrelated internings still combine correctly."""
    left = MassFunction.from_scores({"a": 0.7, "b": 0.3}, 0.1, frame={"a", "b", "c"})
    right = MassFunction.from_scores({"b": 0.6, "c": 0.4}, 0.2, frame={"a", "b", "c"})
    assert left.interning is not right.interning
    combined = dempster_combine(left, right)
    combined.validate()
    shared = FrameInterning({"a", "b", "c"})
    left_s = MassFunction.from_scores(
        {"a": 0.7, "b": 0.3}, 0.1, frame={"a", "b", "c"}, interning=shared
    )
    right_s = MassFunction.from_scores(
        {"b": 0.6, "c": 0.4}, 0.2, frame={"a", "b", "c"}, interning=shared
    )
    assert dempster_combine(left_s, right_s) == combined


def test_shared_interning_skips_reencoding():
    """With one shared interning no remapping allocation happens."""
    shared = FrameInterning(["a", "b"])
    left = MassFunction.from_scores({"a": 1.0}, 0.2, frame={"a", "b"}, interning=shared)
    right = MassFunction.from_scores({"b": 1.0}, 0.2, frame={"a", "b"}, interning=shared)
    combined = dempster_combine(left, right)
    assert combined.interning is shared


def test_zero_products_are_skipped():
    """Zero-mass products contribute nothing — and are not intersected."""
    left = MassFunction(frame={"a", "b"})
    left.assign(frozenset({"a"}), 1.0)
    right = MassFunction(frame={"a", "b"})
    right.assign(frozenset({"a"}), 1.0)
    # A focal that exists but holds zero mass after normalisation cannot
    # occur via the public API; the loop guard is still the documented
    # behaviour for masses that multiply to exactly 0.0.
    combined = dempster_combine(left, right)
    assert combined.mass({"a"}) == 1.0


def test_total_ignorance_records_no_zero_mass_focals():
    """budget = 0 (ignorance 1.0): scored singletons must not appear as
    spurious zero-mass focal elements."""
    mass = MassFunction.from_scores(
        {"a": 1.0, "b": 2.0}, ignorance=1.0, frame={"a", "b", "c"}
    )
    assert mass.focal_elements == (frozenset({"a", "b", "c"}),)
    assert mass.ignorance() == 1.0
    mass.validate()


def test_views_reconstruct_frozensets():
    mass = MassFunction.from_scores({"x": 2.0, "y": 2.0}, ignorance=0.5)
    assert set(mass.focal_elements) == {
        frozenset({"x"}),
        frozenset({"y"}),
        frozenset({"x", "y"}),
    }
    assert mass.frame == frozenset({"x", "y"})
    assert mass.ignorance() == pytest.approx(0.5)
