"""Parity: interned/bitmask Steiner kernels against their references.

Random weighted graphs (including tie-heavy weight pools) must yield
identical results from the bitmask top-k enumeration, the interned
Dreyfus-Wagner DP, the APSP-cached KMB approximation and the cached
shortest-path maps — tree for tree, float for float.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Schema, TableSchema
from repro.db.schema import ColumnRef
from repro.db.types import DataType
from repro.errors import SteinerError
from repro.steiner import (
    SchemaGraph,
    approximate_steiner_tree,
    exact_steiner_tree,
    exact_steiner_tree_reference,
    shortest_paths,
    top_k_steiner_trees,
)


def _random_graph(seed: int) -> tuple[SchemaGraph, list[ColumnRef]]:
    """A random connected-ish weighted graph plus a random terminal set."""
    rng = random.Random(seed)
    n = rng.randint(3, 10)
    schema = Schema(
        tables=[
            TableSchema(
                "t",
                tuple(
                    Column(f"c{i}", DataType.TEXT, nullable=False) for i in range(n)
                ),
                ("c0",),
            )
        ],
        name="random",
    )
    graph = SchemaGraph(schema)
    nodes = list(graph.nodes)
    # Random spanning chain first (so most terminal sets connect), then
    # extra random edges; tie-heavy weights exercise the determinism rule.
    weight_pool = [0.5, 1.0, 1.5] if seed % 2 else None
    order = nodes[:]
    rng.shuffle(order)
    for i in range(1, len(order)):
        weight = rng.choice(weight_pool) if weight_pool else rng.uniform(0.1, 2.0)
        graph.add_edge(order[i - 1], order[i], weight, "intra")
    for _ in range(rng.randint(0, 2 * n)):
        left, right = rng.sample(nodes, 2)
        weight = rng.choice(weight_pool) if weight_pool else rng.uniform(0.1, 2.0)
        if graph.edge_between(left, right) is None:
            graph.add_edge(left, right, weight, "intra")
    terminals = rng.sample(nodes, rng.randint(1, min(5, n)))
    return graph, terminals


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_topk_bitmask_matches_reference(seed: int):
    graph, terminals = _random_graph(seed)
    rng = random.Random(seed + 1)
    k = rng.randint(1, 8)
    prune = bool(seed % 2)
    fast = top_k_steiner_trees(graph, terminals, k, prune_supertrees=prune)
    graph.steiner_cache.clear()
    slow = top_k_steiner_trees(
        graph, terminals, k, prune_supertrees=prune, interned=False
    )
    assert len(fast) == len(slow)
    for fast_tree, slow_tree in zip(fast, slow):
        assert fast_tree.signature() == slow_tree.signature()
        assert fast_tree.weight == slow_tree.weight  # bit identity
        assert fast_tree.terminals == slow_tree.terminals


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_exact_interned_matches_reference(seed: int):
    graph, terminals = _random_graph(seed)
    try:
        fast = exact_steiner_tree(graph, terminals, interned=True)
    except SteinerError:
        with pytest.raises(SteinerError):
            exact_steiner_tree_reference(graph, terminals)
        return
    slow = exact_steiner_tree_reference(graph, terminals)
    assert fast.signature() == slow.signature()
    assert fast.weight == slow.weight


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_cached_shortest_paths_match_local_dijkstra(seed: int):
    graph, terminals = _random_graph(seed)
    source = terminals[0]
    cached_distances, cached_predecessors = graph.shortest_paths_from(source)
    local_distances, local_predecessors = shortest_paths(graph, source)
    assert cached_distances == local_distances
    assert cached_predecessors == local_predecessors
    # KMB over the cache equals KMB over local Dijkstras.
    try:
        fast = approximate_steiner_tree(graph, terminals, cached=True)
    except SteinerError:
        with pytest.raises(SteinerError):
            approximate_steiner_tree(graph, terminals, cached=False)
        return
    slow = approximate_steiner_tree(graph, terminals, cached=False)
    assert fast.signature() == slow.signature()
    assert fast.weight == slow.weight


def _two_path_graph(order: str) -> SchemaGraph:
    """s->target via two equal-weight intermediate hops, a or b."""
    schema = Schema(
        tables=[
            TableSchema(
                "t",
                (
                    Column("s", DataType.TEXT, nullable=False),
                    Column("a", DataType.TEXT, nullable=False),
                    Column("b", DataType.TEXT, nullable=False),
                    Column("z", DataType.TEXT, nullable=False),
                ),
                ("s",),
            )
        ],
        name="ties",
    )
    graph = SchemaGraph(schema)
    s, a, b, z = (ColumnRef("t", c) for c in "sabz")
    hops = [(s, a), (s, b), (a, z), (b, z)]
    if order == "reversed":
        hops = hops[::-1]
    for left, right in hops:
        graph.add_edge(left, right, 1.0, "intra")
    return graph


def test_shortest_path_ties_break_by_node_name():
    """Equal-weight paths: predecessor = lexicographically-first node,
    independent of edge insertion order (the determinism fix)."""
    source = ColumnRef("t", "s")
    target = ColumnRef("t", "z")
    maps = []
    for order in ("forward", "reversed"):
        graph = _two_path_graph(order)
        distances, predecessors = shortest_paths(graph, source)
        assert distances[target] == 2.0
        # t.a < t.b, so the tie must resolve through a.
        assert predecessors[target] == ColumnRef("t", "a")
        maps.append((distances, predecessors))
        cached = graph.shortest_paths_from(source)
        assert cached == (distances, predecessors)
    assert maps[0] == maps[1]


def test_add_edge_invalidates_derived_caches():
    graph = _two_path_graph("forward")
    source = ColumnRef("t", "s")
    target = ColumnRef("t", "z")
    compact_before = graph.compact()
    distances, _ = graph.shortest_paths_from(source)
    assert distances[target] == 2.0
    trees = top_k_steiner_trees(graph, [source, target], 2)
    assert trees[0].weight == 2.0
    # A direct cheaper edge must flow through every cached structure.
    graph.add_edge(source, target, 0.5, "intra")
    assert graph.compact() is not compact_before
    distances, predecessors = graph.shortest_paths_from(source)
    assert distances[target] == 0.5
    assert predecessors[target] == source
    trees = top_k_steiner_trees(graph, [source, target], 2)
    assert trees[0].weight == 0.5
