"""The HTTP front end: wire protocol, error mapping, quotas, drain.

Each test boots a real asyncio server on an ephemeral port in a
background thread and speaks actual HTTP/1.1 to it through
``http.client`` — the parser, routing, executor hand-off and response
serialisation are all exercised on the wire, not by calling private
methods. The per-tenant quota tier gets its own unit tests first (no
sockets needed).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.errors import (
    QuestError,
    QuotaExceededError,
    ServiceOverloadedError,
)
from repro.service import (
    HttpServerSettings,
    QuestHttpServer,
    QuestService,
    ServiceSettings,
    TenantQuotas,
)
from repro.service.http import TENANT_HEADER, explanation_payload


# -- per-tenant quotas (no sockets) ------------------------------------------


class TestTenantQuotas:
    def test_validation(self):
        with pytest.raises(QuestError):
            TenantQuotas(max_concurrent=0)
        with pytest.raises(QuestError):
            TenantQuotas(max_queue=-1)
        with pytest.raises(QuestError):
            TenantQuotas(max_tenants=0)

    def test_tenant_over_its_cap_fails_fast(self):
        quotas = TenantQuotas(max_concurrent=1, max_queue=0)
        with quotas.admit("acme"):
            assert quotas.in_flight("acme") == 1
            with pytest.raises(QuotaExceededError) as info:
                with quotas.admit("acme"):
                    pass  # pragma: no cover
            assert info.value.tenant == "acme"
            assert info.value.limit == 1
        assert quotas.in_flight("acme") == 0
        assert quotas.rejections == 1

    def test_other_tenants_unaffected_by_a_hot_one(self):
        quotas = TenantQuotas(max_concurrent=1, max_queue=0)
        with quotas.admit("hot"):
            with pytest.raises(QuotaExceededError):
                with quotas.admit("hot"):
                    pass  # pragma: no cover
            with quotas.admit("cold"):
                assert quotas.in_flight() == 2

    def test_anonymous_requests_share_the_default_tenant(self):
        quotas = TenantQuotas(max_concurrent=1, max_queue=0)
        with quotas.admit(None):
            with pytest.raises(QuotaExceededError) as info:
                with quotas.admit(""):
                    pass  # pragma: no cover
            assert info.value.tenant == "default"
        assert quotas.tenants == 1

    def test_overrides_change_one_tenant_only(self):
        quotas = TenantQuotas(
            max_concurrent=1, max_queue=0, overrides={"paying": (2, 0)}
        )
        with quotas.admit("paying"), quotas.admit("paying"):
            assert quotas.in_flight("paying") == 2
        with quotas.admit("free"):
            with pytest.raises(QuotaExceededError):
                with quotas.admit("free"):
                    pass  # pragma: no cover

    def test_service_wide_shed_inside_the_body_is_not_converted(self):
        # A 503 raised by the shared admission controller *inside* the
        # quota-gated body must propagate as-is — converting it to the
        # per-tenant 429 would tell the tenant to back off when the
        # whole service is saturated.
        quotas = TenantQuotas(max_concurrent=4, max_queue=0)
        with pytest.raises(ServiceOverloadedError):
            with quotas.admit("acme"):
                raise ServiceOverloadedError("house full")
        assert quotas.rejections == 0
        assert quotas.in_flight("acme") == 0

    def test_idle_tenants_evicted_beyond_the_cap(self):
        quotas = TenantQuotas(max_concurrent=1, max_queue=0, max_tenants=2)
        for name in ("a", "b", "c", "d"):
            with quotas.admit(name):
                pass
        assert quotas.tenants == 2

    def test_busy_tenants_survive_eviction(self):
        quotas = TenantQuotas(max_concurrent=1, max_queue=0, max_tenants=1)
        with quotas.admit("busy"):
            with quotas.admit("other"):
                pass
            # "busy" held a slot throughout; its gate must still release
            # against the same controller it acquired from.
            assert quotas.in_flight("busy") == 1
        assert quotas.in_flight("busy") == 0


# -- the server over the wire -------------------------------------------------


class _ServerThread:
    """A QuestHttpServer running its own event loop in a thread."""

    def __init__(self, service, settings=None, quotas=None):
        self.server = QuestHttpServer(service, settings=settings, quotas=quotas)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._main())
        self._loop.close()

    async def _main(self):
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server did not start"
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def stop(self, timeout=15.0):
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout)
        assert not self._thread.is_alive(), "server thread did not drain"

    @property
    def port(self):
        return self.server.port

    def request(self, method, path, body=None, headers=None, timeout=30.0):
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            raw = response.read()
            payload = json.loads(raw) if raw else {}
            return response.status, payload, dict(response.getheaders())
        finally:
            connection.close()

    def get(self, path, headers=None):
        return self.request("GET", path, headers=headers)


@pytest.fixture()
def served(mini_engine):
    service = QuestService(mini_engine)
    with _ServerThread(service) as harness:
        yield harness


class TestRouting:
    def test_healthz_and_readyz(self, served):
        status, payload, _ = served.get("/healthz")
        assert status == 200 and payload["status"] == "ok"
        status, payload, _ = served.get("/readyz")
        assert status == 200 and payload["status"] == "ok"
        assert payload["reasons"] == []

    def test_unknown_route_404(self, served):
        status, payload, _ = served.get("/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert "/nope" in payload["error"]["message"]
        assert payload["error"]["request_id"]

    def test_wrong_method_405(self, served):
        status, _, _ = served.request("DELETE", "/search")
        assert status == 405
        status, _, _ = served.request("POST", "/healthz")
        assert status == 405

    def test_metrics_payload(self, served):
        served.get("/search?q=kubrick%20movies")
        status, payload, _ = served.get("/metrics")
        assert status == 200
        assert payload["service"]["requests"] >= 1
        assert "p95_latency_s" in payload["service"]
        assert "quota" not in payload  # no quota tier configured

    def test_malformed_request_line_400(self, served):
        connection = http.client.HTTPConnection(
            "127.0.0.1", served.port, timeout=10
        )
        try:
            connection.sock = connection._create_connection(
                ("127.0.0.1", served.port), connection.timeout, None
            )
            connection.sock.sendall(b"NONSENSE\r\n\r\n")
            raw = connection.sock.recv(4096)
            assert b"400" in raw.split(b"\r\n", 1)[0]
        finally:
            connection.close()


class TestSearch:
    def test_get_search_matches_direct_service_call(self, served):
        status, payload, _ = served.get("/search?q=kubrick%20movies&k=3")
        assert status == 200
        direct = served.server.service.search("kubrick movies", k=3)
        expected = json.loads(json.dumps(explanation_payload(direct.explanations)))
        assert payload["results"] == expected
        assert payload["k"] == 3
        assert payload["keywords"] == list(direct.keywords)

    def test_post_search_json_body(self, served):
        body = json.dumps({"query": "kubrick movies", "k": 2})
        status, payload, _ = served.request(
            "POST", "/search", body=body,
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert payload["k"] == 2
        assert len(payload["results"]) <= 2

    def test_keep_alive_serves_sequential_requests(self, served):
        connection = http.client.HTTPConnection(
            "127.0.0.1", served.port, timeout=30
        )
        try:
            for _ in range(3):
                connection.request("GET", "/search?q=kubrick%20movies")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()

    def test_missing_query_400(self, served):
        status, payload, _ = served.get("/search")
        assert status == 400
        assert "missing query" in payload["error"]["message"]

    def test_bad_k_400(self, served):
        status, payload, _ = served.get("/search?q=x&k=three")
        assert status == 400
        status, payload, _ = served.get("/search?q=x&k=0")
        assert status == 400

    def test_malformed_json_body_400(self, served):
        status, payload, _ = served.request(
            "POST", "/search", body="{not json"
        )
        assert status == 400
        assert "JSON" in payload["error"]["message"]

    def test_unusable_query_400(self, served):
        status, payload, _ = served.get("/search?q=%3F%3F%3F")
        assert status == 400


class TestShedding:
    def test_service_overload_maps_to_503_with_retry_after(self, mini_engine):
        service = QuestService(mini_engine)
        with _ServerThread(service) as harness:
            def shed(query, k=None):
                raise ServiceOverloadedError("house full")

            service.search = shed
            status, payload, headers = harness.get("/search?q=kubrick")
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert payload["error"]["code"] == "overloaded"
            assert "house full" in payload["error"]["message"]

    def test_tenant_quota_maps_to_429_with_retry_after(self, mini_engine):
        service = QuestService(mini_engine)
        quotas = TenantQuotas(max_concurrent=1, max_queue=0)
        with _ServerThread(service, quotas=quotas) as harness:
            started = threading.Event()
            release = threading.Event()
            original = service.search

            def slow(query, k=None):
                started.set()
                assert release.wait(10)
                return original(query, k=k)

            service.search = slow
            results = {}

            def holder():
                results["holder"] = harness.get(
                    "/search?q=kubrick%20movies",
                    headers={TENANT_HEADER: "acme"},
                )

            thread = threading.Thread(target=holder)
            thread.start()
            assert started.wait(10)
            status, payload, headers = harness.get(
                "/search?q=inception", headers={TENANT_HEADER: "acme"}
            )
            release.set()
            thread.join(15)
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert payload["error"]["code"] == "quota_exceeded"
            assert payload["error"]["tenant"] == "acme"
            assert results["holder"][0] == 200

            status, _, _ = harness.get("/metrics")
            assert status == 200

    def test_metrics_expose_quota_counters(self, mini_engine):
        service = QuestService(mini_engine)
        quotas = TenantQuotas(max_concurrent=1, max_queue=0)
        with _ServerThread(service, quotas=quotas) as harness:
            harness.get(
                "/search?q=kubrick%20movies", headers={TENANT_HEADER: "acme"}
            )
            status, payload, _ = harness.get("/metrics")
            assert status == 200
            assert payload["quota"]["tenants"] >= 1
            assert payload["quota"]["in_flight"] == 0


class TestDrain:
    def test_in_flight_request_completes_during_drain(self, mini_engine):
        service = QuestService(mini_engine)
        harness = _ServerThread(
            service, settings=HttpServerSettings(drain_timeout_s=10.0)
        )
        with harness:
            port = harness.port
            started = threading.Event()
            release = threading.Event()
            original = service.search

            def slow(query, k=None):
                started.set()
                assert release.wait(10)
                return original(query, k=k)

            service.search = slow
            results = {}

            def client():
                results["response"] = harness.get("/search?q=kubrick%20movies")

            thread = threading.Thread(target=client)
            thread.start()
            assert started.wait(10)
            # Begin the drain while the request is mid-flight, then let
            # the engine finish: the response must still be delivered.
            stopper = threading.Thread(
                target=harness.stop, kwargs={"timeout": 20.0}
            )
            stopper.start()
            time.sleep(0.1)
            release.set()
            thread.join(15)
            stopper.join(20)
            assert results["response"][0] == 200
        # Once drained, the listener is gone.
        with pytest.raises(OSError):
            http.client.HTTPConnection(
                "127.0.0.1", port, timeout=2
            ).request("GET", "/healthz")

    def test_readyz_reports_draining(self, mini_engine):
        service = QuestService(mini_engine)
        with _ServerThread(service) as harness:
            harness.server._ready = False
            status, payload, _ = harness.get("/readyz")
            assert status == 503
            assert payload["status"] == "unhealthy"
            assert "draining" in payload["reasons"]
            harness.server._ready = True


class TestExplanationPayload:
    def test_multi_source_pairs_carry_the_source_label(self, mini_engine):
        response = QuestService(mini_engine).search("kubrick movies", k=2)
        explanation = response.explanations[0]
        payload = explanation_payload((("imdb", explanation),))
        assert payload[0]["source"] == "imdb"
        assert payload[0]["rank"] == 0
        assert payload[0]["probability"] == explanation.probability

    def test_plain_explanations_have_no_source_key(self, mini_engine):
        response = QuestService(mini_engine).search("kubrick movies", k=1)
        payload = explanation_payload(response.explanations)
        assert "source" not in payload[0]
