"""Unit tests for the serving tier building blocks and ``QuestService``."""

import threading
import time

import pytest

from repro.core import MultiSourceQuest, Quest
from repro.errors import QuestError, ServiceOverloadedError
from repro.service import (
    AdmissionController,
    QuestService,
    ServiceSettings,
    SingleFlight,
    TTLResultCache,
)
from repro.service.metrics import ServiceMetrics
from repro.wrapper import HiddenSourceWrapper


class FakeClock:
    """A hand-advanced monotonic clock for TTL/metrics determinism."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSingleFlight:
    def test_sequential_calls_do_not_share(self):
        flights = SingleFlight()
        value, shared = flights.do("key", lambda: 1)
        assert (value, shared) == (1, False)
        value, shared = flights.do("key", lambda: 2)
        # The first flight completed; reuse-across-time is the cache's job.
        assert (value, shared) == (2, False)
        assert flights.in_flight() == 0

    def test_concurrent_callers_share_one_computation(self):
        flights = SingleFlight()
        calls = []
        release = threading.Event()
        entered = threading.Event()

        def compute():
            calls.append(1)
            entered.set()
            release.wait(5)
            return "answer"

        results = []

        def leader():
            results.append(flights.do("key", compute))

        def follower():
            entered.wait(5)
            results.append(flights.do("key", lambda: "wrong"))

        threads = [threading.Thread(target=leader)] + [
            threading.Thread(target=follower) for _ in range(3)
        ]
        threads[0].start()
        entered.wait(5)
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.05)  # let followers reach the wait
        release.set()
        for thread in threads:
            thread.join(5)
        assert len(calls) == 1
        assert sorted(shared for _v, shared in results) == [False, True, True, True]
        assert all(value == "answer" for value, _s in results)

    def test_waiting_gauge_counts_parked_followers(self):
        flights = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(5)
            return "answer"

        leader = threading.Thread(target=lambda: flights.do("key", compute))
        leader.start()
        entered.wait(5)
        follower = threading.Thread(target=lambda: flights.do("key", lambda: 0))
        follower.start()
        deadline = time.monotonic() + 5
        while flights.waiting() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert flights.waiting() == 1
        release.set()
        leader.join(5)
        follower.join(5)
        assert flights.waiting() == 0
        assert flights.in_flight() == 0

    def test_leader_error_propagates_to_followers(self):
        flights = SingleFlight()
        entered = threading.Event()
        release = threading.Event()
        outcomes = []

        def explode():
            entered.set()
            release.wait(5)
            raise ValueError("boom")

        def leader():
            try:
                flights.do("key", explode)
            except ValueError as error:
                outcomes.append(("leader", str(error)))

        def follower():
            entered.wait(5)
            try:
                flights.do("key", lambda: "wrong")
            except ValueError as error:
                outcomes.append(("follower", str(error)))

        threads = [
            threading.Thread(target=leader),
            threading.Thread(target=follower),
        ]
        threads[0].start()
        entered.wait(5)
        threads[1].start()
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(5)
        assert sorted(outcomes) == [("follower", "boom"), ("leader", "boom")]


class TestTTLResultCache:
    def test_entries_expire_after_ttl(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=4, ttl=10.0, clock=clock)
        cache.put("key", "value")
        assert cache.get("key") == "value"
        clock.advance(9.999)
        assert cache.get("key") == "value"
        clock.advance(0.002)
        assert cache.get("key") is None
        assert len(cache) == 0  # expired entry was reaped on access

    def test_lru_eviction_beyond_maxsize(self):
        cache = TTLResultCache(maxsize=2, ttl=100.0, clock=FakeClock())
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh recency of a
        cache.put("c", 3)
        assert cache.get("b") is None  # b was the LRU victim
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_counters_and_validation(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=2, ttl=1.0, clock=clock)
        cache.put("key", "value")
        cache.get("key")
        cache.get("absent")
        assert cache.counters == (1, 1)
        with pytest.raises(ValueError):
            TTLResultCache(maxsize=0)
        with pytest.raises(ValueError):
            TTLResultCache(ttl=0)


class TestAdmissionController:
    def test_sheds_beyond_house_limit(self):
        admission = AdmissionController(max_concurrent=1, max_queue=0)
        with admission.admit():
            assert admission.admitted == 1
            with pytest.raises(ServiceOverloadedError):
                with admission.admit():
                    pass  # pragma: no cover
        assert admission.admitted == 0
        with admission.admit():  # slots are released after the body
            pass

    def test_queue_slots_absorb_waiters(self):
        admission = AdmissionController(max_concurrent=1, max_queue=1)
        inside = threading.Event()
        release = threading.Event()
        done = []

        def holder():
            with admission.admit():
                inside.set()
                release.wait(5)

        def waiter():
            with admission.admit():
                done.append(1)

        hold = threading.Thread(target=holder)
        hold.start()
        inside.wait(5)
        wait = threading.Thread(target=waiter)
        wait.start()
        deadline = time.monotonic() + 5
        while admission.admitted < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        # One executing + one queued = house full; the next is shed.
        with pytest.raises(ServiceOverloadedError):
            with admission.admit():
                pass  # pragma: no cover
        release.set()
        hold.join(5)
        wait.join(5)
        assert done == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0, max_queue=1)
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=1, max_queue=-1)


class TestServiceMetrics:
    def test_quantiles_and_counters(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        for latency in (0.010, 0.020, 0.030, 0.040, 0.100):
            metrics.record_request()
            metrics.record_completion(latency, executed=True)
        snapshot = metrics.snapshot(in_flight=2)
        assert snapshot.requests == 5
        assert snapshot.completed == 5
        assert snapshot.executed == 5
        assert snapshot.in_flight == 2
        assert snapshot.p50_latency_s == pytest.approx(0.030)
        assert snapshot.p95_latency_s == pytest.approx(0.100)
        assert "p95" in snapshot.summary()

    def test_qps_over_recent_window(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        for _ in range(10):
            metrics.record_completion(0.001)
            clock.advance(0.5)
        # 10 completions over the 4.5s span between first and "now".
        assert metrics.snapshot().qps == pytest.approx(10 / 5.0, rel=0.2)

    def test_old_completions_age_out_of_qps(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.record_completion(0.001)
        clock.advance(120.0)  # far past the 60s window
        assert metrics.snapshot().qps == 0.0

    def test_lone_completion_reports_sane_qps(self):
        # Regression: a snapshot right after one completion used to
        # divide by a microsecond span and report millions of qps.
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.record_completion(0.001)
        assert metrics.snapshot().qps <= 1.0

    def test_cache_counters_untouched_when_never_consulted(self):
        metrics = ServiceMetrics(clock=FakeClock())
        metrics.record_completion(0.001, executed=True, cache_hit=None)
        snapshot = metrics.snapshot()
        assert snapshot.cache_hits == 0
        assert snapshot.cache_misses == 0


class TestQuestService:
    def test_default_k_comes_from_engine_settings(self, mini_engine):
        service = QuestService(mini_engine)
        response = service.search("kubrick movies")
        assert response.k == mini_engine.settings.k
        assert response.keywords == ("kubrick", "movies")

    def test_service_settings_k_overrides_engine(self, mini_engine):
        service = QuestService(mini_engine, ServiceSettings(k=2))
        assert service.search("kubrick movies").k == 2

    def test_per_call_k_keys_the_cache_separately(self, mini_engine):
        service = QuestService(mini_engine)
        first = service.search("kubrick movies", k=3)
        other_k = service.search("kubrick movies", k=5)
        assert other_k.source == "engine"  # different k, different key
        again = service.search("kubrick movies", k=3)
        assert again.cached
        assert list(again.explanations) == list(first.explanations)

    def test_normalised_queries_share_a_cache_entry(self, mini_engine):
        service = QuestService(mini_engine)
        service.search("Kubrick   Movies")
        assert service.search("kubrick movies").cached

    def test_unusable_query_raises_and_counts_error(self, mini_engine):
        service = QuestService(mini_engine)
        with pytest.raises(QuestError):
            service.search("???")
        assert service.metrics().errors == 1

    def test_settings_validated_as_quest_errors(self):
        for bad in (
            {"k": 0},
            {"max_concurrent": 0},
            {"max_queue": -1},
            {"result_ttl_s": 0.0},
            {"result_cache_size": 0},
            {"metrics_window": 0},
        ):
            with pytest.raises(QuestError):
                ServiceSettings(**bad)

    def test_non_positive_k_rejected(self, mini_engine):
        service = QuestService(mini_engine)
        with pytest.raises(QuestError):
            service.search("kubrick movies", k=0)
        with pytest.raises(QuestError):
            service.search("kubrick movies", k=-3)
        assert service.metrics().errors == 2

    def test_feedback_model_swap_invalidates_cached_results(self, mini_engine):
        from repro.hmm import HiddenMarkovModel

        service = QuestService(mini_engine)
        service.search("kubrick movies")
        assert service.search("kubrick movies").cached
        mini_engine.set_feedback_model(HiddenMarkovModel.uniform(mini_engine.states))
        assert service.search("kubrick movies").source == "engine"

    def test_settings_reassignment_invalidates_cached_results(self, mini_engine):
        service = QuestService(mini_engine)
        service.search("kubrick movies")
        assert service.search("kubrick movies").cached
        mini_engine.settings = mini_engine.settings.updated(candidate_factor=4)
        assert service.search("kubrick movies").source == "engine"

    def test_explicit_invalidate_drops_cached_results(self, mini_engine):
        service = QuestService(mini_engine)
        service.search("kubrick movies")
        assert service.search("kubrick movies").cached
        service.invalidate()
        assert service.search("kubrick movies").source == "engine"

    def test_ttl_expiry_forces_recompute(self, mini_engine):
        clock = FakeClock()
        service = QuestService(
            mini_engine, ServiceSettings(result_ttl_s=5.0), clock=clock
        )
        service.search("kubrick movies")
        clock.advance(1.0)
        assert service.search("kubrick movies").cached
        clock.advance(10.0)
        assert service.search("kubrick movies").source == "engine"

    def test_ignorance_mutation_invalidates_multisource_cache(self, mini_db):
        # Regression: per-source ignorance is a documented knob that
        # changes merged rankings; reassigning it must move the version
        # so the serving tier's cached results become unreachable.
        engines = {
            "hidden": Quest(HiddenSourceWrapper(mini_db.schema, remote_db=mini_db))
        }
        multi = MultiSourceQuest(engines)
        service = QuestService(multi)
        service.search("kubrick movies")
        assert service.search("kubrick movies").cached
        multi.ignorance["hidden"] = 0.9
        assert service.search("kubrick movies").source == "engine"

    def test_multisource_engine_serves_without_traces(self, mini_db):
        engines = {
            "hidden": Quest(HiddenSourceWrapper(mini_db.schema, remote_db=mini_db))
        }
        multi = MultiSourceQuest(engines)
        service = QuestService(multi)
        response = service.search("kubrick movies")
        assert response.trace is None
        assert list(response.explanations) == multi.search("kubrick movies")
        assert service.search("kubrick movies").cached

    def test_shed_counted_once_for_a_coalesced_burst(self, mini_engine):
        # One admission refusal shared by a leader and its parked
        # followers must count as ONE shed, not fan-in + 1.
        from contextlib import contextmanager

        service = QuestService(
            mini_engine,
            ServiceSettings(max_concurrent=1, max_queue=0, cache_results=False),
        )
        ready = threading.Event()

        @contextmanager
        def refusing_admit():
            ready.wait(5)  # park the leader until the followers joined
            raise ServiceOverloadedError("house full")
            yield  # pragma: no cover

        service._admission.admit = refusing_admit
        outcomes = []

        def request():
            try:
                service.search("kubrick movies")
            except ServiceOverloadedError:
                outcomes.append("shed")

        threads = [threading.Thread(target=request) for _ in range(4)]
        threads[0].start()
        deadline = time.monotonic() + 5
        while not service._flights.in_flight() and time.monotonic() < deadline:
            time.sleep(0.01)
        for thread in threads[1:]:
            thread.start()
        while service._flights.waiting() < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        ready.set()
        for thread in threads:
            thread.join(5)
        assert outcomes == ["shed"] * 4  # everyone saw the refusal
        snapshot = service.metrics()
        assert snapshot.shed == 1  # but admission refused exactly once
        assert snapshot.requests == 4

    def test_disabled_cache_leaves_cache_counters_at_zero(self, mini_engine):
        service = QuestService(mini_engine, ServiceSettings(cache_results=False))
        service.search("kubrick movies")
        service.search("kubrick movies")
        snapshot = service.metrics()
        assert snapshot.executed == 2  # no cache, every call computes
        assert snapshot.cache_hits == 0
        assert snapshot.cache_misses == 0

    def test_results_match_direct_engine_search(self, mini_engine):
        service = QuestService(mini_engine)
        assert list(service.search("kubrick movies").explanations) == (
            mini_engine.search("kubrick movies")
        )
