"""The preforked fleet: shared-artifact workers, supervision, drain.

These tests fork real worker processes over the mini database. The
factory closures are inherited through ``fork`` (no pickling), so the
parent builds the database and the ``.npz`` artifact once and every
worker re-attaches it memory-mapped — exactly the production shape.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.core import Quest
from repro.db.fulltext import FullTextIndex
from repro.service import (
    PreforkServer,
    PreforkSettings,
    QuestService,
    ServiceError,
    shared_artifact_engine,
)
from repro.service.http import explanation_payload
from repro.service.prefork import fetch_json
from repro.storage.memory import MemoryBackend
from repro.wrapper.full import FullAccessWrapper

_QUERY = "kubrick movies"
_SEARCH_PATH = "/search?q=kubrick%20movies&k=3"


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


class _SlowQuest(Quest):
    """An engine whose searches take long enough to race a shutdown."""

    def search(self, query, k=None):
        time.sleep(1.0)
        return super().search(query, k=k)


class TestPreforkSettings:
    def test_validation(self):
        with pytest.raises(ServiceError):
            PreforkSettings(workers=0)
        with pytest.raises(ServiceError):
            PreforkSettings(max_restarts=-1)

    def test_port_requires_start(self):
        prepare, factory = object, object
        server = PreforkServer(factory)
        with pytest.raises(ServiceError):
            server.port


class TestFleet:
    def test_workers_serve_rank_identical_to_in_process(self, mini_db, tmp_path):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        server = PreforkServer(
            factory,
            settings=PreforkSettings(workers=2),
            prepare=prepare,
        )
        with server:
            assert artifact.exists()  # parent built it before forking
            server.wait_ready()
            pids = set()
            rankings = {}
            for _ in range(30):
                status, body = fetch_json("127.0.0.1", server.port, _SEARCH_PATH)
                assert status == 200, body
                pids.add(body["pid"])
                rankings[body["pid"]] = body["results"]
                if len(pids) == 2:
                    break
            assert pids == set(server.worker_pids())

            # The same factory in-process (mmap'd artifact) must produce
            # the same ranking, serialised bit for bit.
            engine = factory()
            assert engine.wrapper.backend.fulltext.mmapped
            direct = QuestService(engine).search(_QUERY, k=3)
            expected = json.loads(
                json.dumps(explanation_payload(direct.explanations))
            )
            assert expected  # a vacuous identity proves nothing
            for pid, results in rankings.items():
                assert results == expected, f"worker {pid} ranking differs"

    def test_crashed_worker_is_replaced_and_serves_again(self, mini_db, tmp_path):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        server = PreforkServer(
            factory,
            settings=PreforkSettings(workers=2, max_restarts=3),
            prepare=prepare,
        )
        with server:
            server.wait_ready()
            victim = server.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            _wait_for(
                lambda: victim not in server.worker_pids()
                and len(server.worker_pids()) == 2,
                message="supervisor to replace the crashed worker",
            )
            assert server.restarts == 1
            assert not server.failed
            server.wait_ready()
            status, body = fetch_json("127.0.0.1", server.port, _SEARCH_PATH)
            assert status == 200
            assert body["results"]

    def test_restart_budget_exhaustion_fails_the_fleet(self, mini_db, tmp_path):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        server = PreforkServer(
            factory,
            settings=PreforkSettings(workers=1, max_restarts=0),
            prepare=prepare,
        )
        try:
            server.start()
            server.wait_ready()
            os.kill(server.worker_pids()[0], signal.SIGKILL)
            _wait_for(
                lambda: server.failed, message="restart budget exhaustion"
            )
            _wait_for(
                lambda: not server.worker_pids(), message="fleet teardown"
            )
        finally:
            server.stop()

    def test_sigterm_drain_completes_in_flight_request(self, mini_db, tmp_path):
        artifact = tmp_path / "mini.npz"
        prepare, _ = shared_artifact_engine(mini_db, artifact)

        def slow_factory():
            index = FullTextIndex.load_or_build(
                artifact, mini_db, mmap=True, readonly=True
            )
            return _SlowQuest(
                FullAccessWrapper(MemoryBackend(mini_db, fulltext=index))
            )

        server = PreforkServer(
            slow_factory,
            settings=PreforkSettings(workers=1, drain_timeout_s=10.0),
            prepare=prepare,
        )
        server.start()
        try:
            server.wait_ready()
            results = {}

            def client():
                results["response"] = fetch_json(
                    "127.0.0.1", server.port, _SEARCH_PATH, timeout=30.0
                )

            thread = threading.Thread(target=client)
            thread.start()
            time.sleep(0.3)  # the 1s search is now in flight
            server.stop(graceful=True)
            thread.join(20)
            status, body = results["response"]
            assert status == 200
            assert body["results"]
            assert not server.worker_pids()
        finally:
            server.stop()

    def test_stop_is_idempotent_and_start_twice_rejected(self, mini_db, tmp_path):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        server = PreforkServer(
            factory, settings=PreforkSettings(workers=1), prepare=prepare
        )
        server.start()
        with pytest.raises(ServiceError):
            server.start()
        server.stop()
        server.stop()
        assert not server.worker_pids()
