"""Chaos suite: the resilience tier under seeded fault injection.

Every scenario here is driven by a deterministic :class:`FaultPlan` (or
a fake clock), so the schedules replay bit-for-bit: same seed, same
call sequence, same faults. The suite covers the four resilience
surfaces end to end — request deadlines (504 vs degraded best-so-far),
the storage circuit breaker (trip, fallback parity, half-open
recovery), revision-stale serving with the ``Warning`` header, and the
preforked fleet's crash recovery with backoff — plus unit tests for the
primitives themselves.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest

from repro import faults
from repro.core import Quest
from repro.core.settings import QuestSettings
from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    FaultInjectedError,
    QuestError,
)
from repro.faults import FaultPlan
from repro.resilience import (
    BreakerSettings,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    process_health,
)
from repro.service import (
    PreforkServer,
    PreforkSettings,
    QuestService,
    ServiceError,
    ServiceSettings,
    shared_artifact_engine,
)
from repro.service.prefork import fetch_json
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SQLiteBackend
from repro.wrapper.full import FullAccessWrapper

_QUERY = "kubrick movies"
_SEARCH_PATH = "/search?q=kubrick%20movies&k=3"


@pytest.fixture(autouse=True)
def _clean_slate():
    """No leaked fault plans or health marks across tests."""
    faults.clear()
    process_health.reset()
    yield
    faults.clear()
    process_health.reset()


class _FakeClock:
    """A hand-cranked monotonic clock for breaker/deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _ranking(context):
    """The rank-identity fingerprint: exact SQL and exact probability."""
    return [(e.sql, e.probability) for e in context.explanations]


# -- the fault-injection harness itself ---------------------------------------


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        def run(plan: FaultPlan) -> tuple[str, ...]:
            with faults.injected(plan):
                for _ in range(60):
                    try:
                        faults.fire("storage.query")
                    except FaultInjectedError:
                        pass
            return plan.decisions("storage.query")

        first = run(FaultPlan(seed=42).inject("storage.query", kind="error", rate=0.3))
        second = run(FaultPlan(seed=42).inject("storage.query", kind="error", rate=0.3))
        assert first == second
        assert "error" in first and "pass" in first  # a real mixed schedule

    def test_different_seed_different_schedule(self):
        def decisions(seed: int) -> tuple[str, ...]:
            plan = FaultPlan(seed=seed).inject(
                "storage.query", kind="error", rate=0.5
            )
            with faults.injected(plan):
                for _ in range(64):
                    try:
                        faults.fire("storage.query")
                    except FaultInjectedError:
                        pass
            return plan.decisions("storage.query")

        assert decisions(1) != decisions(2)

    def test_after_and_times_bound_the_window(self):
        plan = FaultPlan().inject(
            "storage.query", kind="error", rate=1.0, after=2, times=1
        )
        with faults.injected(plan):
            outcomes = []
            for _ in range(5):
                try:
                    faults.fire("storage.query")
                    outcomes.append("ok")
                except FaultInjectedError:
                    outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom", "ok", "ok"]

    def test_flake_recovers_after_budget(self):
        plan = FaultPlan().inject(
            "artifact.load", kind="flake", rate=1.0, recover_after=2
        )
        with faults.injected(plan):
            failures = 0
            for _ in range(5):
                try:
                    faults.fire("artifact.load")
                except FaultInjectedError:
                    failures += 1
        assert failures == 2
        assert plan.decisions("artifact.load") == (
            "flake",
            "flake",
            "recovered",
            "recovered",
            "recovered",
        )

    def test_custom_error_instances_propagate(self):
        plan = FaultPlan().inject(
            "storage.query",
            kind="error",
            error=sqlite3.OperationalError("injected: database is locked"),
        )
        with faults.injected(plan):
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                faults.fire("storage.query")

    def test_latency_faults_sleep(self):
        plan = FaultPlan().inject("emission.compute", kind="latency", delay_s=0.05)
        with faults.injected(plan):
            start = time.monotonic()
            faults.fire("emission.compute")
            assert time.monotonic() - start >= 0.04

    def test_unknown_point_and_kind_rejected(self):
        with pytest.raises(QuestError):
            FaultPlan().inject("no.such.point", kind="error")
        with pytest.raises(QuestError):
            FaultPlan().inject("storage.query", kind="meteor")
        with pytest.raises(QuestError):
            FaultPlan().inject("storage.query", kind="flake")  # no recover_after

    def test_no_plan_installed_is_a_noop(self):
        assert faults.active() is None
        faults.fire("storage.query")  # must not raise

    def test_fire_rejects_unknown_point_when_plan_installed(self):
        """A typo'd instrumentation site must fail loudly under a plan —
        otherwise the chaos suite silently stops covering that seam."""
        plan = FaultPlan().inject("storage.query", kind="error")
        with faults.injected(plan):
            with pytest.raises(QuestError, match="unknown injection point"):
                faults.fire("storage.qurey")

    def test_fire_rejects_unknown_point_without_specs_for_it(self):
        # The rejection is registry-based, not spec-based: a known point
        # with no spec passes, an unknown one raises regardless.
        plan = FaultPlan()
        with faults.injected(plan):
            faults.fire("journal.append")  # known, no spec: passes
            with pytest.raises(QuestError, match="unknown injection point"):
                plan.fire("bogus.point")

    def test_module_fire_unknown_point_without_plan_is_noop(self):
        # Production fast path: no plan installed means no registry check
        # (the static fault-points rule covers uninstalled typos).
        assert faults.active() is None
        faults.fire("bogus.point")  # must not raise


# -- the resilience primitives ------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, clock, **changes):
        settings = dict(
            window=8,
            min_calls=4,
            failure_threshold=0.5,
            reset_timeout_s=1.0,
            half_open_probes=2,
            jitter=0.0,
        )
        settings.update(changes)
        return CircuitBreaker(
            "dep", BreakerSettings(**settings), seed=0, clock=clock
        )

    def test_stays_closed_below_min_calls(self):
        breaker = self._breaker(_FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_at_failure_rate(self):
        breaker = self._breaker(_FakeClock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # 1/3 under threshold
        breaker.record_failure()
        breaker.record_failure()  # 3/5 >= 0.5, window >= min_calls
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probes_then_close(self):
        clock = _FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.99)
        assert breaker.state == "open"  # jitter=0: opens for exactly 1s
        clock.advance(0.02)
        assert breaker.state == "half-open"
        # Exactly half_open_probes trial calls are admitted.
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.snapshot()["failures"] == 0  # window cleared on close

    def test_half_open_failure_reopens(self):
        clock = _FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.5)
        assert breaker.state == "open"  # a fresh full timeout applies

    def test_seeded_jitter_is_deterministic(self):
        def open_span(breaker, clock):
            for _ in range(4):
                breaker.record_failure()
            low, high = 0.0, 10.0
            for _ in range(40):  # bisect the reopen boundary
                mid = (low + high) / 2.0
                clock.now = mid
                if breaker.state == "half-open":
                    high = mid
                    breaker.record_failure()  # re-open, re-jitter? no: reset
                    return mid
                low = mid
            return high

        spans = []
        for _ in range(2):
            clock = _FakeClock()
            breaker = self._breaker(clock, jitter=0.5)
            for _ in range(4):
                breaker.record_failure()
            # jitter in [0, 0.5] of the 1s timeout, seeded: both runs land
            # on the same open duration.
            clock.now = 1.5001
            spans.append(breaker.state)
        assert spans[0] == spans[1]

    def test_settings_validation(self):
        with pytest.raises(QuestError):
            BreakerSettings(window=0)
        with pytest.raises(QuestError):
            BreakerSettings(failure_threshold=0.0)
        with pytest.raises(QuestError):
            BreakerSettings(reset_timeout_s=0.0)
        with pytest.raises(QuestError):
            BreakerSettings(jitter=1.5)


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        sleeps: list[float] = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay_s=0.01, max_delay_s=0.04, seed=5)
        result = policy.call(
            flaky, retry_on=(sqlite3.OperationalError,), sleep=sleeps.append
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert all(delay > 0 for delay in sleeps)

    def test_final_failure_propagates_unwrapped(self):
        def doomed():
            raise sqlite3.OperationalError("still locked")

        policy = RetryPolicy(attempts=2, base_delay_s=0.0, max_delay_s=0.0)
        with pytest.raises(sqlite3.OperationalError, match="still locked"):
            policy.call(doomed, retry_on=(sqlite3.OperationalError,))

    def test_non_matching_exceptions_not_retried(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise ValueError("not transient")

        policy = RetryPolicy(attempts=5, base_delay_s=0.0, max_delay_s=0.0)
        with pytest.raises(ValueError):
            policy.call(wrong_kind, retry_on=(sqlite3.OperationalError,))
        assert calls["n"] == 1

    def test_delays_seeded_and_bounded(self):
        first = list(RetryPolicy(attempts=4, seed=9).delays())
        second = list(RetryPolicy(attempts=4, seed=9).delays())
        assert first == second
        assert len(first) == 3
        raw = 0.01
        for delay in first:
            capped = min(0.25, raw)
            assert capped / 2.0 <= delay <= capped
            raw *= 2.0

    def test_on_retry_hook_sees_each_failure(self):
        seen: list[int] = []

        def doomed():
            raise sqlite3.OperationalError("locked")

        policy = RetryPolicy(attempts=3, base_delay_s=0.0, max_delay_s=0.0)
        with pytest.raises(sqlite3.OperationalError):
            policy.call(
                doomed,
                retry_on=(sqlite3.OperationalError,),
                on_retry=lambda exc, attempt: seen.append(attempt),
            )
        assert seen == [1, 2]  # the final failure raises instead of hooking


class TestDeadline:
    def test_from_ms_none_means_unbounded(self):
        assert Deadline.from_ms(None) is None

    def test_expiry_follows_the_clock(self):
        clock = _FakeClock()
        deadline = Deadline(50.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining_s() == pytest.approx(0.05)
        clock.advance(0.049)
        assert not deadline.expired()
        clock.advance(0.002)
        assert deadline.expired()
        assert deadline.remaining_s() == 0.0
        assert deadline.elapsed_ms() == pytest.approx(51.0)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(QuestError):
            QuestSettings(default_deadline_ms=-5.0)


# -- storage chaos: breaker trip, fallback parity, recovery -------------------


def _fast_breaker(**changes):
    settings = dict(
        window=8,
        min_calls=4,
        failure_threshold=0.5,
        reset_timeout_s=0.05,
        half_open_probes=1,
        jitter=0.0,
    )
    settings.update(changes)
    return CircuitBreaker("sqlite:chaos", BreakerSettings(**settings), seed=0)


def _fast_retry():
    return RetryPolicy(attempts=2, base_delay_s=0.001, max_delay_s=0.002, seed=1)


class TestStorageChaos:
    def test_sqlite_failures_open_the_breaker(self, mini_db):
        breaker = _fast_breaker()
        backend = SQLiteBackend.from_database(
            mini_db, breaker=breaker, retry=_fast_retry()
        )
        plan = FaultPlan(seed=7).inject(
            "storage.query",
            kind="error",
            rate=1.0,
            error=sqlite3.OperationalError,
        )
        with faults.injected(plan):
            for _ in range(3):
                with pytest.raises(ExecutionError):
                    backend.attribute_scores("kubrick")
        assert breaker.state == "open"
        snapshot = breaker.snapshot()
        assert snapshot["failures"] >= 4

    def test_transient_flake_is_retried_to_success(self, mini_db):
        breaker = _fast_breaker()
        backend = SQLiteBackend.from_database(
            mini_db, breaker=breaker, retry=_fast_retry()
        )
        # One injected failure, then the dependency is healthy again: the
        # in-call retry absorbs it and the caller never sees an error.
        plan = FaultPlan(seed=7).inject(
            "storage.query",
            kind="error",
            rate=1.0,
            times=1,
            error=sqlite3.OperationalError,
        )
        with faults.injected(plan):
            scores = backend.attribute_scores("kubrick")
        assert scores  # the retry got the real answer
        assert breaker.state == "closed"

    def test_half_open_recovery_closes_the_breaker(self, mini_db):
        breaker = _fast_breaker()
        backend = SQLiteBackend.from_database(
            mini_db, breaker=breaker, retry=_fast_retry()
        )
        plan = FaultPlan(seed=7).inject(
            "storage.query",
            kind="error",
            rate=1.0,
            times=6,
            error=sqlite3.OperationalError,
        )
        with faults.injected(plan):
            for _ in range(3):
                with pytest.raises(ExecutionError):
                    backend.attribute_scores("kubrick")
            assert breaker.state == "open"
            time.sleep(0.06)  # the reset timeout elapses
            assert breaker.state == "half-open"
            # The dependency healed (times=6 exhausted): the next
            # mandatory read succeeds and closes the circuit.
            scores = backend.attribute_scores("kubrick")
        assert scores
        assert breaker.state == "closed"

    def test_open_breaker_rankings_identical_to_reference(self, mini_db):
        # Trip the breaker, pin it open for the whole test, and prove the
        # engine still answers — identically to the pure-Python reference
        # kernels — because only the optional pushdown surfaces are shed.
        breaker = _fast_breaker(min_calls=1, window=4, reset_timeout_s=600.0)
        breaker.record_failure()
        assert breaker.state == "open"
        backend = SQLiteBackend.from_database(mini_db, breaker=breaker)
        degraded = Quest(FullAccessWrapper(backend))
        reference = Quest(
            FullAccessWrapper(MemoryBackend(mini_db)),
            QuestSettings.reference_kernels(),
        )
        for query in (_QUERY, "scott scifi", "kubrick horror 1980"):
            got = degraded.search_context(query=query)
            want = reference.search_context(query=query)
            assert _ranking(got) == _ranking(want), query
            assert not got.trace.degraded  # answers are full, not partial
        assert breaker.state == "open"  # successes alone must not close it
        context = degraded.search_context(query=_QUERY)
        assert any("pushdown bypassed" in note for note in context.trace.notes)


# -- deadline enforcement -----------------------------------------------------


class TestDeadlineEnforcement:
    def test_exhausted_budget_with_nothing_salvageable_raises(self, mini_engine):
        with pytest.raises(DeadlineExceededError) as info:
            mini_engine.search_context(query=_QUERY, deadline=Deadline(0.001))
        assert info.value.budget_ms == pytest.approx(0.001)

    def test_settings_default_deadline_applies(self, mini_db):
        engine = Quest(
            FullAccessWrapper(MemoryBackend(mini_db)),
            QuestSettings(default_deadline_ms=0.001),
        )
        with pytest.raises(DeadlineExceededError):
            engine.search_context(query=_QUERY)

    def test_mid_pipeline_expiry_serves_best_so_far(self, mini_engine):
        # The first steiner call passes its injection point untouched
        # (after=1) and lands real interpretations; the second sleeps past
        # the budget, so the backward stage stops and the pipeline
        # finishes degraded with the answers it already has.
        plan = FaultPlan(seed=3).inject(
            "steiner.expand", kind="latency", delay_s=0.08, after=1
        )
        budget_ms = 60.0
        start = time.monotonic()
        with faults.injected(plan):
            context = mini_engine.search_context(
                query=_QUERY, deadline=Deadline(budget_ms)
            )
        elapsed = time.monotonic() - start
        assert context.trace.degraded
        assert context.explanations  # best-so-far, not empty
        assert any(note.startswith("deadline:") for note in context.trace.notes)
        # Cooperative cancellation: overrun is bounded by one blocking
        # call past the budget (the injected 80ms sleep), not unbounded.
        assert elapsed < budget_ms / 1e3 + 0.08 * 3 + 0.3

    def test_degraded_results_never_cached(self, mini_db):
        engine = Quest(FullAccessWrapper(MemoryBackend(mini_db)))
        service = QuestService(engine)
        plan = FaultPlan(seed=3).inject(
            "steiner.expand", kind="latency", delay_s=0.08, after=1
        )
        with faults.injected(plan):
            degraded = service.search(_QUERY, k=3, deadline_ms=60.0)
        assert degraded.degraded and degraded.source == "engine"
        # The fault is gone; the same query must re-run the engine (the
        # degraded ranking was never published to the result cache) and
        # come back complete.
        healthy = service.search(_QUERY, k=3)
        assert healthy.source == "engine"
        assert not healthy.degraded
        assert len(healthy.explanations) >= len(degraded.explanations)

    def test_deadline_accounting_sums_under_concurrency(self, mini_db):
        engine = Quest(FullAccessWrapper(MemoryBackend(mini_db)))
        service = QuestService(
            engine, ServiceSettings(cache_results=False, coalesce=False)
        )
        total, budgeted = 12, 5
        outcomes: list[str] = []
        lock = threading.Lock()

        def one(index: int) -> None:
            try:
                response = service.search(
                    _QUERY, k=3, deadline_ms=0.001 if index < budgeted else None
                )
                outcome = "degraded" if response.degraded else "ok"
            except DeadlineExceededError:
                outcome = "expired"
            with lock:
                outcomes.append(outcome)

        threads = [
            threading.Thread(target=one, args=(index,)) for index in range(total)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert len(outcomes) == total
        snapshot = service.metrics()
        assert snapshot.requests == total
        assert snapshot.errors == 0
        # Every request is accounted exactly once: answered or expired.
        assert snapshot.completed + snapshot.deadline_expired == total
        assert snapshot.deadline_expired == outcomes.count("expired")
        assert snapshot.degraded == outcomes.count("degraded")
        assert outcomes.count("expired") == budgeted  # 1µs never survives


# -- artifact corruption: dict-layout fallback --------------------------------


class TestArtifactFallback:
    def test_corrupt_artifact_degrades_to_identical_rankings(
        self, mini_db, tmp_path
    ):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        prepare()
        assert artifact.exists()
        artifact.write_bytes(b"this is not an npz artifact")
        engine = factory()  # must come up anyway
        assert process_health.degraded()
        assert "index-artifact-fallback" in process_health.reasons()
        reference = Quest(
            FullAccessWrapper(MemoryBackend(mini_db)),
            QuestSettings.reference_kernels(),
        )
        got = engine.search_context(query=_QUERY)
        want = reference.search_context(query=_QUERY)
        assert got.explanations
        assert _ranking(got) == _ranking(want)

    def test_fallback_surfaces_through_service_degradation(
        self, mini_db, tmp_path
    ):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        prepare()
        artifact.write_bytes(b"garbage")
        service = QuestService(factory())
        state = service.degradation()
        assert state["degraded"]
        assert any("index-artifact-fallback" in reason for reason in state["reasons"])

    def test_intact_artifact_keeps_the_process_healthy(self, mini_db, tmp_path):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        prepare()
        service = QuestService(factory())
        state = service.degradation()
        assert not state["degraded"]
        assert state["reasons"] == []


# -- stale serving ------------------------------------------------------------


class TestStaleServing:
    def _service(self, mini_db):
        backend = SQLiteBackend.from_database(
            mini_db, breaker=_fast_breaker(), retry=_fast_retry()
        )
        engine = Quest(FullAccessWrapper(backend))
        return QuestService(engine)

    def test_storage_failure_serves_the_last_good_ranking(self, mini_db):
        service = self._service(mini_db)
        primed = service.search(_QUERY, k=3)
        assert primed.source == "engine" and primed.explanations
        service.invalidate()  # force the next request through the engine
        plan = FaultPlan(seed=11).inject(
            "storage.query",
            kind="error",
            rate=1.0,
            error=sqlite3.OperationalError,
        )
        with faults.injected(plan):
            fallback = service.search(_QUERY, k=3)
        assert fallback.source == "stale"
        assert fallback.stale and fallback.degraded
        assert _ranking(fallback) == _ranking(primed)
        snapshot = service.metrics()
        assert snapshot.stale_served == 1
        assert snapshot.errors == 0  # the request was answered, not failed
        state = service.degradation()
        assert state["degraded"]

    def test_unprimed_queries_still_fail(self, mini_db):
        service = self._service(mini_db)
        plan = FaultPlan(seed=11).inject(
            "storage.query",
            kind="error",
            rate=1.0,
            error=sqlite3.OperationalError,
        )
        with faults.injected(plan):
            with pytest.raises(ExecutionError):
                service.search("scott scifi", k=3)
        assert service.metrics().errors == 1

    def test_serve_stale_false_disables_the_tier(self, mini_db):
        backend = SQLiteBackend.from_database(
            mini_db, breaker=_fast_breaker(), retry=_fast_retry()
        )
        service = QuestService(
            Quest(FullAccessWrapper(backend)),
            ServiceSettings(serve_stale=False),
        )
        service.search(_QUERY, k=3)
        service.invalidate()
        plan = FaultPlan(seed=11).inject(
            "storage.query",
            kind="error",
            rate=1.0,
            error=sqlite3.OperationalError,
        )
        with faults.injected(plan):
            with pytest.raises(ExecutionError):
                service.search(_QUERY, k=3)


# -- the HTTP surface under chaos ---------------------------------------------


class TestChaosOverHttp:
    def test_deadline_header_maps_to_504_within_budget(self, mini_engine):
        from test_http import _ServerThread

        service = QuestService(mini_engine)
        with _ServerThread(service) as harness:
            start = time.monotonic()
            status, payload, _ = harness.get(
                _SEARCH_PATH, headers={"X-Quest-Deadline-Ms": "0.05"}
            )
            elapsed = time.monotonic() - start
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"
            assert payload["error"]["budget_ms"] == pytest.approx(0.05)
            assert payload["error"]["request_id"]
            # Budget + tolerance: the 50µs budget aborts at the first
            # stage boundary; generous slack covers the HTTP round trip.
            assert elapsed < 0.05 / 1e3 + 0.05 + 0.5
            # The connection survived the 504 (keep-alive intact).
            status, _, _ = harness.get("/healthz")
            assert status == 200

    def test_invalid_deadline_header_is_400(self, mini_engine):
        from test_http import _ServerThread

        with _ServerThread(QuestService(mini_engine)) as harness:
            for bad in ("soon", "-10", "0", "inf"):
                status, payload, _ = harness.get(
                    _SEARCH_PATH, headers={"X-Quest-Deadline-Ms": bad}
                )
                assert status == 400, bad
                assert payload["error"]["code"] == "bad_request"

    def test_stale_answers_carry_warning_header_and_flags(self, mini_db):
        from test_http import _ServerThread

        backend = SQLiteBackend.from_database(
            mini_db, breaker=_fast_breaker(), retry=_fast_retry()
        )
        service = QuestService(Quest(FullAccessWrapper(backend)))
        with _ServerThread(service) as harness:
            status, primed, _ = harness.get(_SEARCH_PATH)
            assert status == 200 and not primed["degraded"]
            service.invalidate()
            plan = FaultPlan(seed=11).inject(
                "storage.query",
                kind="error",
                rate=1.0,
                error=sqlite3.OperationalError,
            )
            with faults.injected(plan):
                status, payload, headers = harness.get(_SEARCH_PATH)
                assert status == 200
                assert payload["source"] == "stale"
                assert payload["stale"] and payload["degraded"]
                assert payload["results"] == primed["results"]
                assert "stale result" in headers.get("Warning", "")
                # Readiness reflects the degradation while it lasts.
                status, ready, _ = harness.get("/readyz")
                assert status == 200
                assert ready["status"] == "degraded"
                assert ready["reasons"]
                status, metrics, _ = harness.get("/metrics")
                assert metrics["service"]["stale_served"] == 1
                assert metrics["degradation"]["degraded"] is True

    def test_unhandled_route_errors_become_structured_500(self, mini_engine):
        from test_http import _ServerThread

        service = QuestService(mini_engine)
        with _ServerThread(service) as harness:

            def explode():
                raise RuntimeError("metrics wiring bug")

            harness.server.service = service  # unchanged; break metrics only
            service.metrics = explode
            status, payload, _ = harness.get("/metrics")
            assert status == 500
            assert payload["error"]["code"] == "internal"
            assert "metrics wiring bug" in payload["error"]["message"]
            assert payload["error"]["request_id"]
            # Keep-alive survived the failure: the next request on the
            # same server answers normally.
            status, _, _ = harness.get("/healthz")
            assert status == 200


# -- the preforked fleet under chaos ------------------------------------------


def _wait_for(predicate, timeout=20.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


class TestPreforkChaos:
    def test_backoff_settings_validation(self):
        with pytest.raises(ServiceError):
            PreforkSettings(restart_backoff_s=0.0)
        with pytest.raises(ServiceError):
            PreforkSettings(restart_backoff_s=1.0, restart_backoff_max_s=0.5)
        with pytest.raises(ServiceError):
            PreforkSettings(healthy_interval_s=0.0)

    def test_respawn_backoff_is_seeded_exponential_with_jitter(self):
        def schedule():
            server = PreforkServer(
                lambda: None,
                settings=PreforkSettings(
                    backoff_seed=7,
                    restart_backoff_s=0.1,
                    restart_backoff_max_s=1.0,
                ),
            )
            return [server._respawn_delay(streak) for streak in range(6)]

        first, second = schedule(), schedule()
        assert first == second  # same seed, same schedule
        for streak, delay in enumerate(first):
            capped = min(1.0, 0.1 * 2.0**streak)
            assert capped / 2.0 <= delay <= capped, (streak, delay)

    def test_sigkilled_worker_mid_request_client_retry_succeeds(
        self, mini_db, tmp_path
    ):
        artifact = tmp_path / "mini.npz"
        prepare, factory = shared_artifact_engine(mini_db, artifact)
        server = PreforkServer(
            factory,
            settings=PreforkSettings(workers=2, max_restarts=4, backoff_seed=11),
            prepare=prepare,
        )
        with server:
            server.wait_ready()
            victim = server.worker_pids()[0]
            results: dict[str, dict] = {}

            def client():
                # The kill can sever this client's connection mid-request;
                # a bounded retry must land on a live (or respawned)
                # worker and succeed.
                for _ in range(60):
                    try:
                        status, body = fetch_json(
                            "127.0.0.1", server.port, _SEARCH_PATH, timeout=5.0
                        )
                        if status == 200 and body.get("results"):
                            results["body"] = body
                            return
                    except Exception:
                        pass
                    time.sleep(0.1)

            thread = threading.Thread(target=client)
            thread.start()
            import os
            import signal

            os.kill(victim, signal.SIGKILL)
            thread.join(30)
            assert results.get("body"), "client never got an answer"
            _wait_for(
                lambda: victim not in server.worker_pids()
                and len(server.worker_pids()) == 2,
                message="supervisor to replace the killed worker",
            )
            assert server.restarts >= 1
            assert not server.failed
