"""Crash-safe live mutation: journal, replay, atomic republish, recovery.

The tier's one invariant, asserted here from unit level up to SIGKILL'd
subprocess writers: **an acknowledged write survives any crash**. After
recovery, state is bit-identical to a clean rebuild over the journaled
history, acknowledged mutations are always included, and a torn trailing
record (durable but never acknowledged) may replay — it must never
corrupt anything.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from datetime import date
from pathlib import Path

import pytest

from repro import faults
from repro.datasets import mixed, mondial
from repro.db.fulltext import FullTextIndex
from repro.errors import (
    FaultInjectedError,
    IndexArtifactError,
    JournalCorruptError,
    JournalError,
)
from repro.faults import FaultPlan
from repro.journal import MutationJournal, crc32c
from repro.storage import create_backend, recover

from tests.conftest import backend_for

SEED_COUNTRIES = 6
SEED = 31


def seed_db():
    return mondial.generate(countries=SEED_COUNTRIES, seed=SEED)


def fresh_backend():
    return create_backend("memory", seed_db())


def ranking_digest(backend, probes):
    """Exact layered scores for every probe keyword (bit-identity proxy)."""
    return [backend.fulltext.attribute_scores(probe) for probe in probes]


def apply_workload(backend, count=30, profile="oltp", seed=7, db=None):
    """Apply a deterministic write workload; returns its probe keywords.

    *db* is the schema/seed view the generator reads (defaults to the
    backend's in-memory database; SQLite backends must pass it in)."""
    view = db if db is not None else backend.database
    ops = mixed.generate_ops(view, count, profile=profile, seed=seed)
    writes = mixed.write_ops(ops)
    for op in writes:
        mixed.apply_op(backend, op)
    return [op.probe for op in writes if op.kind == "add"]


class TestMutationJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "m.journal"
        with MutationJournal(path) as journal:
            s1 = journal.append("add", "city", rows=[[1, "Lund", "SE", None, 9]])
            s2 = journal.append("delete", "city", keys=[[1]])
            assert (s1, s2) == (1, 2)
            assert journal.last_seq == 2
        with MutationJournal(path) as journal:
            records = list(journal.records())
            assert [r.seq for r in records] == [1, 2]
            assert records[0].op == "add"
            assert records[0].rows == ((1, "Lund", "SE", None, 9),)
            assert records[1].keys == ((1,),)
            assert list(journal.records(after_seq=1)) == [records[1]]

    def test_dates_and_booleans_round_trip_as_json(self, tmp_path):
        path = tmp_path / "m.journal"
        with MutationJournal(path) as journal:
            journal.append("add", "t", rows=[[date(2001, 2, 3), True, None]])
        with MutationJournal(path) as journal:
            (record,) = journal.records()
            # Dates journal as ISO text; replay re-coerces via the schema.
            assert record.rows == (("2001-02-03", True, None),)

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "m.journal"
        with MutationJournal(path) as journal:
            journal.append("add", "t", rows=[[1]])
            journal.append("add", "t", rows=[[2]])
        intact = path.stat().st_size
        with open(path, "ab") as f:
            f.write(b"\x40\x00\x00\x00\xde\xad\xbe\xef partial record torn by")
        with MutationJournal(path) as journal:
            assert journal.truncated_bytes > 0
            assert journal.last_seq == 2
            assert len(journal) == 2
        assert path.stat().st_size == intact

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "m.journal"
        with MutationJournal(path) as journal:
            journal.append("add", "t", rows=[[1]])
            journal.append("add", "t", rows=[[2]])
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF  # flip a payload byte of the *first* record
        path.write_bytes(bytes(data))
        # The tail scan stops at the first bad frame — everything after a
        # corrupt interior record would be silently dropped, so opening
        # must refuse outright once any valid record follows the damage.
        with MutationJournal(path) as journal:
            assert journal.last_seq == 0  # both framed records discarded...
        # ...which is only acceptable because nothing valid followed; a
        # CRC-valid record that is not a mutation payload raises instead.
        path.write_bytes(b"")
        payload = b'{"not": "a mutation"}'
        import struct

        frame = struct.pack("<II", len(payload), crc32c(payload)) + payload
        path.write_bytes(frame)
        with pytest.raises(JournalCorruptError):
            MutationJournal(path)

    def test_sequence_gap_raises(self, tmp_path):
        import struct

        path = tmp_path / "m.journal"
        frames = b""
        for seq in (1, 3):  # skip 2: acknowledged history went missing
            payload = (
                f'{{"seq":{seq},"op":"add","table":"t","rows":[[1]]}}'.encode()
            )
            frames += struct.pack("<II", len(payload), crc32c(payload)) + payload
        path.write_bytes(frames)
        with pytest.raises(JournalCorruptError, match="sequence gap"):
            MutationJournal(path)

    def test_readonly_follower_never_repairs(self, tmp_path):
        path = tmp_path / "m.journal"
        with MutationJournal(path) as journal:
            journal.append("add", "t", rows=[[1]])
        with open(path, "ab") as f:
            f.write(b"torn-tail-the-writer-is-still-appending")
        size = path.stat().st_size
        with MutationJournal(path, readonly=True) as follower:
            assert follower.last_seq == 1
            assert follower.truncated_bytes > 0
            with pytest.raises(JournalError, match="readonly"):
                follower.append("add", "t", rows=[[2]])
        assert path.stat().st_size == size  # tail left for the owner

    def test_append_crash_window_loses_only_unacked(self, tmp_path):
        path = tmp_path / "m.journal"
        journal = MutationJournal(path)
        journal.append("add", "t", rows=[[1]])
        plan = FaultPlan(seed=3).inject("journal.append", kind="error", rate=1.0)
        with faults.injected(plan):
            with pytest.raises(FaultInjectedError):
                journal.append("add", "t", rows=[[2]])
        journal.close()
        with MutationJournal(path) as journal:
            assert journal.last_seq == 1  # the failed append left no trace


class TestJournaledMutations:
    def test_acknowledged_writes_reach_the_journal(self, tmp_path):
        backend = fresh_backend()
        journal = MutationJournal(tmp_path / "m.journal")
        backend.attach_journal(journal)
        probes = apply_workload(backend, count=24)
        assert probes
        assert backend.applied_seq == journal.last_seq > 0
        assert all(
            record.op in ("add", "delete") for record in journal.records()
        )

    def test_validation_failure_journals_nothing(self, tmp_path):
        backend = fresh_backend()
        journal = MutationJournal(tmp_path / "m.journal")
        backend.attach_journal(journal)
        table = backend.database.tables[0].name
        row = list(backend.database.tables[0].rows[0])
        with pytest.raises(Exception):
            backend.add_rows(table, [row])  # duplicate primary key
        assert journal.last_seq == 0
        assert backend.applied_seq == 0

    def test_replay_reproduces_rankings_bit_identically(self, tmp_path):
        path = tmp_path / "m.journal"
        source = fresh_backend()
        with MutationJournal(path) as journal:
            source.attach_journal(journal)
            probes = apply_workload(source, count=30)
        replayed = fresh_backend()
        with MutationJournal(path) as journal:
            assert replayed.replay_journal(journal) == journal.last_seq
        assert ranking_digest(replayed, probes) == ranking_digest(source, probes)

    def test_matrix_backend_round_trips_through_the_journal(self, tmp_path):
        """The configured tier-1 backend (memory or SQLite) must ack and
        replay the same journal identically."""
        path = tmp_path / "m.journal"
        db = seed_db()
        source = backend_for(db)
        with MutationJournal(path) as journal:
            source.attach_journal(journal)
            probes = apply_workload(source, count=20, db=db)
        again = backend_for(seed_db())
        with MutationJournal(path) as journal:
            again.replay_journal(journal)
        for probe in probes:
            assert again.attribute_scores(probe) == source.attribute_scores(probe)


class TestArtifactIntegrity:
    def test_byte_truncated_artifact_is_rejected(self, tmp_path):
        path = tmp_path / "index.npz"
        db = seed_db()
        FullTextIndex(db).save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - len(data) // 3])
        with pytest.raises(IndexArtifactError):
            FullTextIndex.load(path, seed_db())

    def test_bit_flipped_array_fails_its_checksum(self, tmp_path):
        import zipfile

        path = tmp_path / "index.npz"
        db = seed_db()
        FullTextIndex(db).save(path)
        # Rewrite the zip with one member's payload corrupted but sizes
        # intact — only the header checksum pass can catch this.
        corrupted = tmp_path / "corrupted.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(
            corrupted, "w", zipfile.ZIP_STORED
        ) as dst:
            for name in src.namelist():
                payload = src.read(name)
                if name != "header.npy" and len(payload) > 200:
                    payload = payload[:-50] + bytes(
                        b ^ 0xFF for b in payload[-50:]
                    )
                dst.writestr(name, payload)
        with pytest.raises(IndexArtifactError, match="checksum"):
            FullTextIndex.load(corrupted, seed_db())

    def test_save_is_atomic_under_replace_fault(self, tmp_path):
        path = tmp_path / "index.npz"
        backend = fresh_backend()
        backend.save_index(path)
        before = path.read_bytes()
        apply_workload(backend, count=10)
        plan = FaultPlan(seed=5).inject("artifact.replace", kind="error", rate=1.0)
        with faults.injected(plan):
            with pytest.raises(FaultInjectedError):
                backend.save_index(path)
        # The published artifact is byte-identical; no temp file leaks.
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_peek_generation_tolerates_garbage(self, tmp_path):
        path = tmp_path / "index.npz"
        assert FullTextIndex.peek_generation(path) is None
        path.write_bytes(b"not a zip archive at all")
        assert FullTextIndex.peek_generation(path) is None


class TestRecover:
    def test_journal_only_recovery(self, tmp_path):
        path = tmp_path / "m.journal"
        source = fresh_backend()
        with MutationJournal(path) as journal:
            source.attach_journal(journal)
            probes = apply_workload(source, count=24)
            total = journal.last_seq
        recovered = fresh_backend()
        report = recover(recovered, path)
        assert report.replayed == total
        assert report.artifact_loaded is False
        assert recovered.applied_seq == total
        assert recovered.journal is not None  # ready for new writes
        assert ranking_digest(recovered, probes) == ranking_digest(source, probes)
        recovered.journal.close()

    def test_artifact_plus_tail_recovery(self, tmp_path):
        journal_path = tmp_path / "m.journal"
        artifact = tmp_path / "index.npz"
        source = fresh_backend()
        ops = mixed.generate_ops(source.database, 30, profile="oltp", seed=7)
        writes = mixed.write_ops(ops)
        with MutationJournal(journal_path) as journal:
            source.attach_journal(journal)
            half = len(writes) // 2
            for op in writes[:half]:
                mixed.apply_op(source, op)
            source.save_index(artifact)  # sealed at generation = applied_seq
            generation = source.applied_seq
            for op in writes[half:]:
                mixed.apply_op(source, op)
            total = journal.last_seq
        probes = [op.probe for op in writes if op.kind == "add"]

        recovered = fresh_backend()
        report = recover(recovered, journal_path, artifact)
        assert report.artifact_generation == generation
        assert report.artifact_loaded is True
        assert report.replayed_to_artifact == generation
        assert report.replayed_past_artifact == total - generation
        assert ranking_digest(recovered, probes) == ranking_digest(source, probes)
        recovered.journal.close()

    def test_corrupt_artifact_falls_back_to_rebuild(self, tmp_path):
        journal_path = tmp_path / "m.journal"
        artifact = tmp_path / "index.npz"
        source = fresh_backend()
        with MutationJournal(journal_path) as journal:
            source.attach_journal(journal)
            probes = apply_workload(source, count=16)
            source.save_index(artifact)
        # Truncate the artifact body: peek still reads the generation,
        # strict validation then refuses it.
        data = artifact.read_bytes()
        artifact.write_bytes(data[: len(data) - len(data) // 4])
        recovered = fresh_backend()
        report = recover(recovered, journal_path, artifact)
        assert report.artifact_loaded is False
        assert ranking_digest(recovered, probes) == ranking_digest(source, probes)
        recovered.journal.close()

    def test_recovered_backend_keeps_acknowledging(self, tmp_path):
        path = tmp_path / "m.journal"
        source = fresh_backend()
        with MutationJournal(path) as journal:
            source.attach_journal(journal)
            apply_workload(source, count=10)
        recovered = fresh_backend()
        recover(recovered, path)
        before = recovered.applied_seq
        more = apply_workload(recovered, count=10, seed=99)
        assert recovered.applied_seq > before
        assert more
        recovered.journal.close()
        # And a second recovery sees the post-crash writes too.
        final = fresh_backend()
        report = recover(final, path)
        assert final.applied_seq == recovered.applied_seq
        assert ranking_digest(final, more) == ranking_digest(recovered, more)
        final.journal.close()


#: Writer subprocess: journaled mixed writes with periodic republish,
#: acking each applied seq durably, under an inherited seeded FaultPlan.
WRITER_SCRIPT = textwrap.dedent(
    """
    import os, sys
    from repro import faults
    from repro.datasets import mixed, mondial
    from repro.faults import FaultPlan
    from repro.journal import MutationJournal
    from repro.storage import create_backend

    journal_path, artifact_path, acks_path, point, after = sys.argv[1:6]
    db = mondial.generate(countries=%(countries)d, seed=%(seed)d)
    backend = create_backend("memory", db)
    journal = MutationJournal(journal_path)
    backend.attach_journal(journal)
    if point != "none":
        faults.install(
            FaultPlan(seed=41).inject(
                point, kind="crash", rate=1.0, after=int(after)
            )
        )
    ops = mixed.generate_ops(db, 60, profile="oltp", seed=7)
    acks = open(acks_path, "a")
    for i, op in enumerate(mixed.write_ops(ops)):
        mixed.apply_op(backend, op)
        acks.write(f"{backend.applied_seq}\\n")
        acks.flush()
        os.fsync(acks.fileno())
        if i %% 4 == 3:
            backend.save_index(artifact_path)
    os._exit(0)
    """
    % {"countries": SEED_COUNTRIES, "seed": SEED}
)


def run_writer(tmp_path, point, after, expect_crash=True):
    journal_path = tmp_path / "m.journal"
    artifact = tmp_path / "index.npz"
    acks = tmp_path / "acks.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    process = subprocess.run(
        [sys.executable, "-c", WRITER_SCRIPT,
         str(journal_path), str(artifact), str(acks), point, str(after)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if expect_crash:
        assert process.returncode == 13, process.stderr  # the crash exit_code
    else:
        assert process.returncode == 0, process.stderr
    acked = [int(line) for line in acks.read_text().split()] if acks.exists() else []
    return journal_path, artifact, acked


def assert_crash_invariant(journal_path, artifact, acked):
    """Acked ⊆ recovered, and recovery == clean rebuild of the journal."""
    recovered = fresh_backend()
    report = recover(recovered, journal_path, artifact if artifact.exists() else None)
    assert recovered.applied_seq >= (max(acked) if acked else 0)
    clean = fresh_backend()
    with MutationJournal(journal_path) as journal:
        clean.replay_journal(journal)
    assert recovered.applied_seq == clean.applied_seq
    probes = {
        f"probe7x{i}" for i in range(1, 40)
    }  # superset of every generated probe
    assert ranking_digest(recovered, sorted(probes)) == ranking_digest(
        clean, sorted(probes)
    )
    recovered.journal.close()
    return report


class TestCrashConsistency:
    @pytest.mark.parametrize(
        "point,after",
        [
            ("journal.append", 9),
            ("fs.fsync", 14),
            ("artifact.replace", 2),
            ("journal.append", 31),
        ],
    )
    def test_seeded_crash_points_never_lose_acked_writes(
        self, tmp_path, point, after
    ):
        journal_path, artifact, acked = run_writer(tmp_path, point, after)
        assert acked, "the writer crashed before acknowledging anything"
        assert_crash_invariant(journal_path, artifact, acked)

    def test_clean_writer_round_trips(self, tmp_path):
        journal_path, artifact, acked = run_writer(
            tmp_path, "none", 0, expect_crash=False
        )
        report = assert_crash_invariant(journal_path, artifact, acked)
        assert report.artifact_loaded is True
        assert report.artifact_generation is not None

    def test_sigkilled_writer_mid_stream(self, tmp_path):
        """kill -9 at an arbitrary moment: the invariant must hold
        wherever the writer happened to be."""
        journal_path = tmp_path / "m.journal"
        artifact = tmp_path / "index.npz"
        acks = tmp_path / "acks.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        process = subprocess.Popen(
            [sys.executable, "-c", WRITER_SCRIPT,
             str(journal_path), str(artifact), str(acks), "none", "0"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if acks.exists() and acks.read_text().count("\n") >= 5:
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.01)
            if process.poll() is None:
                os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
        acked = (
            [int(line) for line in acks.read_text().split()]
            if acks.exists()
            else []
        )
        assert acked, "the writer was killed before acknowledging anything"
        assert_crash_invariant(journal_path, artifact, acked)

    def test_replay_fault_surfaces_not_corrupts(self, tmp_path):
        """A fault mid-replay aborts recovery loudly; re-running with the
        fault gone completes from the seed unharmed."""
        path = tmp_path / "m.journal"
        source = fresh_backend()
        with MutationJournal(path) as journal:
            source.attach_journal(journal)
            probes = apply_workload(source, count=12)
        plan = FaultPlan(seed=9).inject(
            "journal.replay", kind="error", rate=1.0, after=3
        )
        with faults.injected(plan):
            with pytest.raises(FaultInjectedError):
                recover(fresh_backend(), path)
        recovered = fresh_backend()
        recover(recovered, path)
        assert ranking_digest(recovered, probes) == ranking_digest(source, probes)
        recovered.journal.close()
