"""Tests for the synthetic dataset generators and workloads."""

import pytest

from repro.datasets import dblp, imdb, mondial
from repro.db import execute
from repro.errors import WorkloadError


class TestDeterminism:
    @pytest.mark.parametrize("module,kwargs", [
        (imdb, {"movies": 30}),
        (dblp, {"papers": 30}),
        (mondial, {"countries": 8}),
    ])
    def test_same_seed_same_data(self, module, kwargs):
        left = module.generate(**kwargs, seed=5)
        right = module.generate(**kwargs, seed=5)
        for l_table, r_table in zip(left.tables, right.tables):
            assert l_table.rows == r_table.rows

    def test_different_seed_different_data(self):
        left = imdb.generate(movies=30, seed=1)
        right = imdb.generate(movies=30, seed=2)
        assert left.table("movie").rows != right.table("movie").rows


class TestIMDB:
    def test_scale(self, imdb_db):
        assert len(imdb_db.table("movie")) == 80
        assert len(imdb_db.table("casting")) >= 80

    def test_integrity(self, imdb_db):
        imdb_db.check_integrity()

    def test_anchor_rows(self, imdb_db):
        assert imdb_db.table("person").get(1)[1] == "Stanley Kubrick"
        assert imdb_db.table("movie").get(1)[1] == "The Silent Odyssey"
        # Scott is in the anchor movie's cast.
        assert imdb_db.table("casting").get((1, 2)) is not None

    def test_workload_golds_have_answers(self, imdb_db, imdb_workload):
        for query in imdb_workload:
            assert len(execute(imdb_db, query.gold_query)) >= 1, query.qid

    def test_workload_keywords_match_configs(self, imdb_workload):
        for query in imdb_workload:
            assert query.keywords == query.gold_configuration.keywords

    def test_workload_ids_unique(self, imdb_workload):
        ids = [q.qid for q in imdb_workload]
        assert len(set(ids)) == len(ids)


class TestDBLP:
    def test_scale(self, dblp_db):
        assert len(dblp_db.table("paper")) == 100
        # The m:n relation dominates, as in the real DBLP.
        assert len(dblp_db.table("author")) > len(dblp_db.table("paper"))

    def test_integrity(self, dblp_db):
        dblp_db.check_integrity()

    def test_workload_golds_have_answers(self, dblp_db):
        workload = dblp.workload(dblp_db, queries_per_kind=3)
        for query in workload:
            assert len(execute(dblp_db, query.gold_query)) >= 1, query.qid


class TestMondial:
    def test_schema_complexity(self, mondial_db):
        assert len(mondial_db.schema) == 16
        assert len(mondial_db.schema.foreign_keys) == 18

    def test_integrity(self, mondial_db):
        mondial_db.check_integrity()

    def test_many_paths_between_country_and_city(self, mondial_db):
        """The defining property: multiple join paths between tables."""
        schema = mondial_db.schema
        # city -> country directly, and via province.
        assert schema.tables_are_adjacent("city", "country")
        assert schema.tables_are_adjacent("city", "province")
        assert schema.tables_are_adjacent("province", "country")

    def test_workload_golds_have_answers(self, mondial_db):
        workload = mondial.workload(mondial_db, queries_per_kind=3)
        for query in workload:
            assert len(execute(mondial_db, query.gold_query)) >= 1, query.qid

    def test_borders_stored_once(self, mondial_db):
        pairs = set()
        for c1, c2, _length in mondial_db.table("borders"):
            assert c1 < c2
            pairs.add((c1, c2))
        assert len(pairs) == len(mondial_db.table("borders"))


class TestWorkloadModel:
    def test_keyword_mismatch_rejected(self, imdb_workload):
        from repro.datasets.workload import WorkloadQuery

        sample = imdb_workload.queries[0]
        with pytest.raises(WorkloadError):
            WorkloadQuery(
                qid="bad",
                text="completely different words",
                gold_query=sample.gold_query,
                gold_configuration=sample.gold_configuration,
            )

    def test_duplicate_ids_rejected(self, imdb_workload):
        from repro.datasets.workload import Workload

        query = imdb_workload.queries[0]
        with pytest.raises(WorkloadError):
            Workload("dup", (query, query))

    def test_subset(self, imdb_workload):
        assert len(imdb_workload.subset(3)) == 3

    def test_gold_training_pairs(self, imdb_workload):
        pairs = imdb_workload.gold_training_pairs()
        for query in imdb_workload:
            assert pairs[query.keywords] == query.gold_configuration
