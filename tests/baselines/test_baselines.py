"""Tests for the DISCOVER, BANKS and IR baselines."""

import pytest

from repro.baselines import BanksBaseline, DiscoverBaseline, IRBaseline
from repro.db import execute


class TestDiscover:
    def test_keyword_columns(self, mini_db):
        baseline = DiscoverBaseline(mini_db)
        columns = baseline.keyword_columns("kubrick")
        assert [str(c) for c in columns] == ["person.name"]

    def test_single_table_network(self, mini_db):
        baseline = DiscoverBaseline(mini_db)
        queries = baseline.search(["odyssey"], k=5)
        assert queries
        assert queries[0].table_names() == frozenset({"movie"})

    def test_joining_network(self, mini_db):
        baseline = DiscoverBaseline(mini_db)
        queries = baseline.search(["kubrick", "shining"], k=5)
        assert queries
        top = queries[0]
        assert top.table_names() == frozenset({"movie", "person"})
        result = execute(mini_db, top)
        assert len(result) >= 1

    def test_smaller_networks_rank_first(self, mini_db):
        baseline = DiscoverBaseline(mini_db)
        networks = baseline.candidate_networks(["kubrick", "shining"])
        sizes = [n.size for n in networks]
        assert sizes == sorted(sizes)

    def test_unmatched_keyword_gives_nothing(self, mini_db):
        baseline = DiscoverBaseline(mini_db)
        assert baseline.search(["kubrick", "zzz"], k=5) == []

    def test_size_budget_respected(self, mini_db):
        baseline = DiscoverBaseline(mini_db, max_network_size=1)
        networks = baseline.candidate_networks(["kubrick", "shining"])
        assert all(n.size <= 1 for n in networks)


class TestBanks:
    def test_instance_graph_scale(self, mini_db):
        baseline = BanksBaseline(mini_db)
        # 5 movies x 2 FK links each = 10 edges; 11 linked tuples.
        assert baseline.edge_count == 10
        assert baseline.node_count == 11

    def test_graph_grows_with_instance(self, mini_db, imdb_db):
        small = BanksBaseline(mini_db)
        large = BanksBaseline(imdb_db)
        assert large.node_count > small.node_count
        assert large.edge_count > small.edge_count

    def test_matching_nodes(self, mini_db):
        baseline = BanksBaseline(mini_db)
        nodes = baseline.matching_nodes("kubrick")
        assert {(n.table, n.key) for n in nodes} == {("person", (1,))}

    def test_answer_trees_connect_keywords(self, mini_db):
        baseline = BanksBaseline(mini_db)
        answers = baseline.search(["kubrick", "shining"], k=3)
        assert answers
        best = answers[0]
        leaf_tables = {leaf.table for leaf in best.leaves}
        assert leaf_tables == {"person", "movie"}
        assert best.weight <= 2.0

    def test_sorted_by_weight(self, mini_db):
        baseline = BanksBaseline(mini_db)
        answers = baseline.search(["kubrick", "scifi"], k=5)
        weights = [a.weight for a in answers]
        assert weights == sorted(weights)

    def test_unmatched_keyword_gives_nothing(self, mini_db):
        baseline = BanksBaseline(mini_db)
        assert baseline.search(["zzz"], k=3) == []

    def test_single_keyword_roots_at_match(self, mini_db):
        baseline = BanksBaseline(mini_db)
        answers = baseline.search(["kubrick"], k=2)
        assert answers and answers[0].size == 0


class TestIR:
    def test_tuple_ranking_prefers_coverage(self, mini_db):
        baseline = IRBaseline(mini_db)
        hits = baseline.search_tuples(["space", "odyssey"], k=5)
        assert hits
        top = hits[0]
        assert top.table == "movie"
        assert top.matched_keywords == frozenset({"space", "odyssey"})

    def test_queries_are_single_table(self, mini_db):
        baseline = IRBaseline(mini_db)
        for query in baseline.search(["kubrick", "shining"], k=5):
            assert len(query.table_names()) == 1

    def test_cannot_express_joins(self, mini_db):
        """The structural ceiling: no IR answer ever matches a join gold."""
        from repro.db import Comparison, JoinCondition, Predicate, SelectQuery, TableRef

        gold = SelectQuery(
            tables=(TableRef.of("movie"), TableRef.of("person")),
            joins=(JoinCondition("movie", "director_id", "person", "id"),),
            predicates=(
                Predicate("person", "name", Comparison.CONTAINS, "kubrick"),
            ),
        )
        baseline = IRBaseline(mini_db)
        assert all(
            not q.matches(gold)
            for q in baseline.search(["kubrick", "movies"], k=10)
        )

    def test_queries_execute(self, mini_db):
        baseline = IRBaseline(mini_db)
        for query in baseline.search(["kubrick"], k=3):
            assert len(execute(mini_db, query)) >= 1
