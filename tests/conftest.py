"""Shared fixtures: small schemas, databases and engines used across tests."""

from __future__ import annotations

import os

import pytest

from repro.core import Quest
from repro.datasets import dblp, imdb, mondial
from repro.db import Column, Database, ForeignKey, Schema, TableSchema
from repro.db.types import DataType
from repro.storage import create_backend
from repro.wrapper import FullAccessWrapper, HiddenSourceWrapper

#: Storage backend the engine-level tests run on. CI sets
#: ``QUEST_TEST_BACKEND=sqlite`` in one matrix leg so the engine suite
#: (pipeline, caching, integration, eval, multi-source) exercises the
#: SQLite backend end to end. Build full-access wrappers for shared
#: read-only databases through :func:`backend_for` to honour it.
TEST_BACKEND = os.environ.get("QUEST_TEST_BACKEND", "memory")

#: Test modules that always run under the runtime lock-order detector
#: (the suites that exercise real cross-thread lock interleavings).
#: ``QUEST_LOCKWATCH=1`` extends it to every test; ``=0`` disables it.
_LOCKWATCH_MODULES = {"test_concurrent_search", "test_chaos"}


@pytest.fixture(autouse=True)
def _lockwatch(request):
    """Watch repro lock acquisitions for order inversions (see
    ``repro.analysis.lockwatch``); fail the test on any violation.

    Fresh watcher per test: the acquired-after graph is cumulative, so
    sharing one would let an edge from test A convict an unrelated
    ordering in test B. Only locks created during the test are watched —
    session-scoped fixtures built earlier keep raw locks, which is fine:
    the suites this targets build their engines per-test.
    """
    env = os.environ.get("QUEST_LOCKWATCH", "")
    module_name = getattr(request.module, "__name__", "").rpartition(".")[2]
    enabled = env != "0" and (env == "1" or module_name in _LOCKWATCH_MODULES)
    if not enabled:
        yield
        return
    from repro.analysis import lockwatch

    watcher = lockwatch.LockWatcher()
    lockwatch.install(watcher)
    try:
        yield
    finally:
        lockwatch.uninstall()
    problems = watcher.violations()
    if problems:
        details = "\n\n".join(
            f"[{v.kind}] {v.message}\n{v.stack}" for v in problems
        )
        pytest.fail(
            f"lockwatch detected {len(problems)} lock-order violation"
            f"{'' if len(problems) == 1 else 's'}:\n\n{details}"
        )


def backend_for(db: Database):
    """The configured test backend, freshly loaded with *db*'s contents."""
    return create_backend(TEST_BACKEND, db)


def build_mini_schema() -> Schema:
    """A 3-table movie schema used by most unit tests."""
    return Schema(
        tables=[
            TableSchema(
                "person",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("name", DataType.TEXT, nullable=False),
                ),
                ("id",),
                synonyms=("people", "director"),
            ),
            TableSchema(
                "genre",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("label", DataType.TEXT, nullable=False),
                ),
                ("id",),
            ),
            TableSchema(
                "movie",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("title", DataType.TEXT, nullable=False),
                    Column("year", DataType.INTEGER, pattern=r"(19|20)\d\d"),
                    Column("director_id", DataType.INTEGER, nullable=False),
                    Column("genre_id", DataType.INTEGER, nullable=False),
                ),
                ("id",),
                synonyms=("film",),
            ),
        ],
        foreign_keys=[
            ForeignKey("movie", "director_id", "person", "id"),
            ForeignKey("movie", "genre_id", "genre", "id"),
        ],
        name="mini",
    )


def build_mini_db() -> Database:
    """The mini schema populated with a handful of well-known rows."""
    db = Database(build_mini_schema())
    db.insert("person", {"id": 1, "name": "Stanley Kubrick"})
    db.insert("person", {"id": 2, "name": "Ridley Scott"})
    db.insert("person", {"id": 3, "name": "Agnes Varda"})
    db.insert("genre", {"id": 1, "label": "scifi"})
    db.insert("genre", {"id": 2, "label": "horror"})
    db.insert("genre", {"id": 3, "label": "documentary"})
    rows = [
        (1, "A Space Odyssey", 1968, 1, 1),
        (2, "The Shining", 1980, 1, 2),
        (3, "Alien", 1979, 2, 1),
        (4, "Blade Runner", 1982, 2, 1),
        (5, "The Gleaners", 2000, 3, 3),
    ]
    for row in rows:
        db.insert("movie", row)
    db.check_integrity()
    return db


@pytest.fixture()
def mini_schema() -> Schema:
    return build_mini_schema()


@pytest.fixture()
def mini_db() -> Database:
    return build_mini_db()


@pytest.fixture()
def mini_wrapper(mini_db: Database) -> FullAccessWrapper:
    return FullAccessWrapper(backend_for(mini_db))


@pytest.fixture()
def mini_engine(mini_wrapper: FullAccessWrapper) -> Quest:
    return Quest(mini_wrapper)


@pytest.fixture()
def mini_hidden(mini_db: Database) -> HiddenSourceWrapper:
    return HiddenSourceWrapper(mini_db.schema, remote_db=mini_db)


# -- session-scoped generated datasets (built once, never mutated) -----------


@pytest.fixture(scope="session")
def imdb_db() -> Database:
    return imdb.generate(movies=80, seed=7)


@pytest.fixture(scope="session")
def imdb_workload(imdb_db: Database):
    return imdb.workload(imdb_db, queries_per_kind=2, seed=11)


@pytest.fixture(scope="session")
def dblp_db() -> Database:
    return dblp.generate(papers=100, seed=13)


@pytest.fixture(scope="session")
def mondial_db() -> Database:
    return mondial.generate(countries=15, seed=23)
