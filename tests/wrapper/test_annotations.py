"""Tests for schema annotation overlays."""

from repro.wrapper import AnnotationSet, ColumnAnnotation, annotate_schema


class TestAnnotateSchema:
    def test_synonyms_are_merged(self, mini_schema):
        enriched = annotate_schema(
            mini_schema,
            AnnotationSet(
                columns={
                    ("movie", "title"): ColumnAnnotation(synonyms=("heading",))
                }
            ),
        )
        assert "heading" in enriched.table("movie").column("title").synonyms

    def test_existing_synonyms_kept(self, mini_schema):
        enriched = annotate_schema(
            mini_schema,
            AnnotationSet(table_synonyms={"movie": ("flick",)}),
        )
        synonyms = enriched.table("movie").synonyms
        assert "film" in synonyms and "flick" in synonyms

    def test_pattern_replacement(self, mini_schema):
        enriched = annotate_schema(
            mini_schema,
            AnnotationSet(
                columns={("movie", "year"): ColumnAnnotation(pattern=r"\d{4}")}
            ),
        )
        assert enriched.table("movie").column("year").pattern == r"\d{4}"

    def test_unannotated_pattern_preserved(self, mini_schema):
        enriched = annotate_schema(mini_schema, AnnotationSet())
        assert (
            enriched.table("movie").column("year").pattern
            == mini_schema.table("movie").column("year").pattern
        )

    def test_description_replacement(self, mini_schema):
        enriched = annotate_schema(
            mini_schema,
            AnnotationSet(
                columns={
                    ("person", "name"): ColumnAnnotation(description="full name")
                }
            ),
        )
        assert enriched.table("person").column("name").description == "full name"

    def test_foreign_keys_preserved(self, mini_schema):
        enriched = annotate_schema(mini_schema, AnnotationSet())
        assert len(enriched.foreign_keys) == len(mini_schema.foreign_keys)

    def test_original_schema_untouched(self, mini_schema):
        before = mini_schema.table("movie").column("title").synonyms
        annotate_schema(
            mini_schema,
            AnnotationSet(
                columns={("movie", "title"): ColumnAnnotation(synonyms=("x",))}
            ),
        )
        assert mini_schema.table("movie").column("title").synonyms == before

    def test_for_column_lookup(self):
        annotation = ColumnAnnotation(synonyms=("x",))
        annotations = AnnotationSet(columns={("t", "c"): annotation})
        assert annotations.for_column("t", "c") is annotation
        assert annotations.for_column("t", "other") is None
