"""Tests for the schema-aware ontology."""

import pytest

from repro.wrapper import SchemaOntology


@pytest.fixture()
def ontology(mini_schema) -> SchemaOntology:
    return SchemaOntology(mini_schema)


class TestScores:
    def test_exact_table_name(self, ontology):
        assert ontology.table_score("movie", "movie") == 1.0

    def test_plural_table_name(self, ontology):
        assert ontology.table_score("movies", "movie") >= 0.95

    def test_schema_synonyms_absorbed(self, ontology):
        # "film" is declared as a synonym of the movie table in the schema.
        assert ontology.table_score("film", "movie") >= 0.9

    def test_lexicon_synonyms_work(self, ontology):
        # "picture" relates to movie via the built-in lexicon ring.
        assert ontology.table_score("picture", "movie") >= 0.9

    def test_attribute_exact(self, ontology):
        assert ontology.attribute_score("title", "movie", "title") == 1.0

    def test_attribute_partial_compound(self, ontology):
        # director_id contains the identifier part "director".
        assert ontology.attribute_score("director", "movie", "director_id") >= 0.85

    def test_unrelated_scores_low(self, ontology):
        assert ontology.table_score("quasar", "genre") < 0.5

    def test_table_partial_discounted_below_attribute_partial(self, mondial_db):
        ontology = SchemaOntology(mondial_db.schema)
        # "rivers" vs the geo_river junction: partial table hit, discounted.
        table_partial = ontology.table_score("rivers", "geo_river")
        entity = ontology.table_score("rivers", "river")
        assert entity > table_partial

    def test_term_score_range(self, ontology):
        for keyword in ("movie", "xyz", "film", "42"):
            for term in ("movie", "title", "person"):
                assert 0.0 <= ontology.term_score(keyword, term) <= 1.0
