"""Tests for the full-access wrapper."""

import numpy as np
import pytest

from repro.db import SelectQuery, TableRef
from repro.hmm import StateSpace
from repro.wrapper import FullAccessWrapper


@pytest.fixture()
def space(mini_schema) -> StateSpace:
    return StateSpace(mini_schema)


class TestCapabilities:
    def test_has_instance_access(self, mini_wrapper):
        assert mini_wrapper.has_instance_access
        assert mini_wrapper.catalog.has_instance

    def test_execute(self, mini_wrapper):
        result = mini_wrapper.execute(
            SelectQuery(tables=(TableRef.of("movie"),))
        )
        assert len(result) == 5

    def test_result_count(self, mini_wrapper):
        assert mini_wrapper.result_count(
            SelectQuery(tables=(TableRef.of("genre"),))
        ) == 3


class TestEmissions:
    def test_value_keyword_hits_domain_state(self, mini_wrapper, space):
        scores = mini_wrapper.emission_scores("kubrick", space)
        domain = space.index(space.domain_state("person", "name"))
        assert scores[domain] > 0
        assert scores[domain] == max(scores)

    def test_schema_keyword_hits_table_state(self, mini_wrapper, space):
        scores = mini_wrapper.emission_scores("movies", space)
        table = space.index(space.table_state("movie"))
        assert scores[table] > 0

    def test_synonym_hits_table_state(self, mini_wrapper, space):
        scores = mini_wrapper.emission_scores("film", space)
        table = space.index(space.table_state("movie"))
        assert scores[table] > 0

    def test_attribute_keyword_hits_attribute_state(self, mini_wrapper, space):
        scores = mini_wrapper.emission_scores("title", space)
        attribute = space.index(space.attribute_state("movie", "title"))
        assert scores[attribute] > 0

    def test_instance_evidence_beats_name_noise(self, mini_wrapper, space):
        """A keyword present in the data must not leak onto unrelated
        schema-term states."""
        scores = mini_wrapper.emission_scores("kubrick", space)
        genre_table = space.index(space.table_state("genre"))
        assert scores[genre_table] == 0.0

    def test_unknown_keyword_scores_zero_everywhere(self, mini_wrapper, space):
        scores = mini_wrapper.emission_scores("xyzzy", space)
        assert np.all(scores == 0)

    def test_year_keyword_hits_year_domain(self, mini_wrapper, space):
        scores = mini_wrapper.emission_scores("1968", space)
        domain = space.index(space.domain_state("movie", "year"))
        assert scores[domain] > 0
