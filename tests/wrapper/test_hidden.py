"""Tests for the hidden-source (Deep Web) wrapper."""

import numpy as np
import pytest

from repro.db import SelectQuery, TableRef
from repro.errors import AccessDeniedError
from repro.hmm import StateSpace
from repro.wrapper import HiddenSourceWrapper


@pytest.fixture()
def space(mini_schema) -> StateSpace:
    return StateSpace(mini_schema)


class TestCapabilities:
    def test_no_instance_access(self, mini_hidden):
        assert not mini_hidden.has_instance_access
        assert not mini_hidden.catalog.has_instance

    def test_endpoint_executes(self, mini_hidden):
        result = mini_hidden.execute(SelectQuery(tables=(TableRef.of("movie"),)))
        assert len(result) == 5

    def test_no_endpoint_denies_execution(self, mini_schema):
        wrapper = HiddenSourceWrapper(mini_schema, remote_db=None)
        with pytest.raises(AccessDeniedError):
            wrapper.execute(SelectQuery(tables=(TableRef.of("movie"),)))


class TestEmissions:
    def test_schema_keywords_still_work(self, mini_hidden, space):
        scores = mini_hidden.emission_scores("movies", space)
        table = space.index(space.table_state("movie"))
        assert scores[table] > 0

    def test_value_keywords_score_by_shape(self, mini_hidden, space):
        scores = mini_hidden.emission_scores("kubrick", space)
        # A word fits TEXT domains but not INTEGER domains.
        name_domain = space.index(space.domain_state("person", "name"))
        id_domain = space.index(space.domain_state("person", "id"))
        assert scores[name_domain] > 0
        assert scores[id_domain] == 0.0

    def test_pattern_annotation_boosts_domain(self, mini_hidden, space):
        # movie.year declares the pattern (19|20)\d\d in the mini schema.
        scores = mini_hidden.emission_scores("1968", space)
        year_domain = space.index(space.domain_state("movie", "year"))
        id_domain = space.index(space.domain_state("movie", "id"))
        assert scores[year_domain] > scores[id_domain]

    def test_pattern_mismatch_zeroes_domain(self, mini_hidden, space):
        scores = mini_hidden.emission_scores("123", space)
        year_domain = space.index(space.domain_state("movie", "year"))
        assert scores[year_domain] == 0.0

    def test_never_reads_instance(self, mini_db, space):
        """Emission scoring must not depend on the endpoint database."""
        from repro.db import Database

        with_data = HiddenSourceWrapper(mini_db.schema, remote_db=mini_db)
        empty = HiddenSourceWrapper(
            mini_db.schema, remote_db=Database(mini_db.schema)
        )
        for keyword in ("kubrick", "movies", "1968"):
            np.testing.assert_array_equal(
                with_data.emission_scores(keyword, space),
                empty.emission_scores(keyword, space),
            )
