"""Tests for Viterbi and List Viterbi decoding.

The key oracle: brute-force enumeration of all state paths. List Viterbi
must return exactly the top-k of that enumeration.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Schema, TableSchema
from repro.db.types import DataType
from repro.errors import ModelError
from repro.hmm import HiddenMarkovModel, StateSpace, list_viterbi, viterbi


def tiny_space(n_columns: int = 1) -> StateSpace:
    columns = tuple(
        Column(f"c{i}", DataType.TEXT) for i in range(n_columns)
    ) + (Column("id", DataType.INTEGER, nullable=False),)
    schema = Schema(
        [TableSchema("t", columns, ("id",))], name="tiny"
    )
    return StateSpace(schema)


def brute_force(model, emissions, k):
    """All paths scored exhaustively, best k."""
    T, n = emissions.shape
    scored = []
    for path in itertools.product(range(n), repeat=T):
        logp = model.sequence_log_probability(list(path), emissions)
        scored.append((logp, path))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return scored[:k]


def random_model(space, rng):
    n = len(space)
    return HiddenMarkovModel(
        space, rng.random(n) + 0.05, rng.random((n, n)) + 0.05
    )


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("T", [1, 2, 3])
    def test_topk_matches_enumeration(self, seed, T):
        rng = np.random.default_rng(seed)
        space = tiny_space(2)  # 7 states
        model = random_model(space, rng)
        emissions = rng.random((T, len(space))) + 0.01
        emissions /= emissions.sum(axis=1, keepdims=True)
        k = 5
        decoded = list_viterbi(model, emissions, k)
        expected = brute_force(model, emissions, k)
        assert len(decoded) == len(expected)
        for path, (logp, states) in zip(decoded, expected):
            assert path.log_probability == pytest.approx(logp)
            assert path.states == states

    def test_viterbi_is_top1(self):
        rng = np.random.default_rng(42)
        space = tiny_space(2)
        model = random_model(space, rng)
        emissions = rng.random((3, len(space))) + 0.01
        best = viterbi(model, emissions)
        top = list_viterbi(model, emissions, 3)
        assert best == top[0]


class TestProperties:
    def test_results_sorted_descending(self):
        rng = np.random.default_rng(7)
        space = tiny_space(3)
        model = random_model(space, rng)
        emissions = rng.random((3, len(space))) + 0.01
        paths = list_viterbi(model, emissions, 8)
        logps = [p.log_probability for p in paths]
        assert logps == sorted(logps, reverse=True)

    def test_results_are_distinct(self):
        rng = np.random.default_rng(8)
        space = tiny_space(3)
        model = random_model(space, rng)
        emissions = rng.random((2, len(space))) + 0.01
        paths = list_viterbi(model, emissions, 10)
        assert len({p.states for p in paths}) == len(paths)

    def test_k_larger_than_path_count(self):
        space = tiny_space(1)  # 5 states
        model = HiddenMarkovModel.uniform(space)
        emissions = np.full((1, len(space)), 1.0 / len(space))
        paths = list_viterbi(model, emissions, 100)
        assert len(paths) == len(space)

    def test_zero_probability_states_excluded(self):
        space = tiny_space(1)
        n = len(space)
        initial = np.zeros(n)
        initial[0] = 1.0
        model = HiddenMarkovModel(space, initial, np.ones((n, n)))
        emissions = np.full((1, n), 1.0 / n)
        paths = list_viterbi(model, emissions, 10)
        assert all(p.states[0] == 0 for p in paths)

    def test_invalid_k(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        emissions = np.full((1, len(space)), 0.2)
        with pytest.raises(ModelError):
            list_viterbi(model, emissions, 0)

    def test_probability_property(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        emissions = np.full((1, len(space)), 1.0 / len(space))
        path = viterbi(model, emissions)
        assert path.probability == pytest.approx(
            np.exp(path.log_probability)
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**6))
    def test_prefix_consistency(self, k, seed):
        """The top-k list is a prefix of the top-(k+3) list."""
        rng = np.random.default_rng(seed)
        space = tiny_space(2)
        model = random_model(space, rng)
        emissions = rng.random((2, len(space))) + 0.01
        small = list_viterbi(model, emissions, k)
        large = list_viterbi(model, emissions, k + 3)
        assert [p.states for p in small] == [p.states for p in large[: len(small)]]
