"""Tests for the HMM state space."""

import pytest

from repro.db import ColumnRef
from repro.hmm import State, StateKind, StateSpace


class TestState:
    def test_table_state_has_no_column(self):
        with pytest.raises(ValueError):
            State(StateKind.TABLE, "movie", "title")

    def test_non_table_states_need_column(self):
        with pytest.raises(ValueError):
            State(StateKind.DOMAIN, "movie")

    def test_column_ref(self):
        state = State(StateKind.ATTRIBUTE, "movie", "title")
        assert state.column_ref == ColumnRef("movie", "title")
        assert State(StateKind.TABLE, "movie").column_ref is None

    def test_str(self):
        assert str(State(StateKind.TABLE, "movie")) == "table:movie"
        assert (
            str(State(StateKind.DOMAIN, "movie", "title"))
            == "domain:movie.title"
        )

    def test_kind_is_schema_term(self):
        assert StateKind.TABLE.is_schema_term
        assert StateKind.ATTRIBUTE.is_schema_term
        assert not StateKind.DOMAIN.is_schema_term


class TestStateSpace:
    def test_size(self, mini_schema):
        space = StateSpace(mini_schema)
        expected = sum(1 + 2 * len(t.columns) for t in mini_schema.tables)
        assert len(space) == expected

    def test_index_roundtrip(self, mini_schema):
        space = StateSpace(mini_schema)
        for position, state in enumerate(space):
            assert space.index(state) == position
            assert space[position] == state

    def test_deterministic_order(self, mini_schema):
        left = StateSpace(mini_schema)
        right = StateSpace(mini_schema)
        assert left.states == right.states

    def test_lookup_helpers(self, mini_schema):
        space = StateSpace(mini_schema)
        assert space.table_state("movie").kind is StateKind.TABLE
        assert space.attribute_state("movie", "title").column == "title"
        assert space.domain_state("person", "name").kind is StateKind.DOMAIN

    def test_states_of_table(self, mini_schema):
        space = StateSpace(mini_schema)
        movie_states = space.states_of_table("movie")
        assert all(s.table == "movie" for s in movie_states)
        assert len(movie_states) == 1 + 2 * 5

    def test_domain_states(self, mini_schema):
        space = StateSpace(mini_schema)
        assert all(
            s.kind is StateKind.DOMAIN for s in space.domain_states()
        )

    def test_contains(self, mini_schema):
        space = StateSpace(mini_schema)
        assert State(StateKind.TABLE, "movie") in space
        assert State(StateKind.TABLE, "nope") not in space
