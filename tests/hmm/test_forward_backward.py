"""Tests for the scaled forward-backward recursions."""

import itertools

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hmm import HiddenMarkovModel, forward_backward, log_likelihood

from tests.hmm.test_viterbi import random_model, tiny_space


def brute_force_likelihood(model, emissions):
    """P(observations) by exhaustive path enumeration."""
    T, n = emissions.shape
    total = 0.0
    for path in itertools.product(range(n), repeat=T):
        p = model.initial[path[0]] * emissions[0, path[0]]
        for t in range(1, T):
            p *= model.transition[path[t - 1], path[t]] * emissions[t, path[t]]
        total += p
    return total


class TestLikelihood:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("T", [1, 2, 3])
    def test_matches_brute_force(self, seed, T):
        rng = np.random.default_rng(seed)
        space = tiny_space(2)
        model = random_model(space, rng)
        emissions = rng.random((T, len(space))) + 0.01
        expected = brute_force_likelihood(model, emissions)
        assert log_likelihood(model, emissions) == pytest.approx(
            np.log(expected)
        )

    def test_width_mismatch_rejected(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(ModelError):
            forward_backward(model, np.full((2, 3), 0.5))

    def test_zero_probability_sequence_rejected(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        emissions = np.zeros((1, len(space)))
        with pytest.raises(ModelError):
            forward_backward(model, emissions)


class TestPosteriors:
    def test_gamma_rows_are_distributions(self):
        rng = np.random.default_rng(5)
        space = tiny_space(2)
        model = random_model(space, rng)
        emissions = rng.random((4, len(space))) + 0.01
        result = forward_backward(model, emissions)
        assert np.allclose(result.gamma.sum(axis=1), 1.0)
        assert np.all(result.gamma >= 0)

    def test_xi_totals_match_sequence_length(self):
        rng = np.random.default_rng(6)
        space = tiny_space(2)
        model = random_model(space, rng)
        T = 5
        emissions = rng.random((T, len(space))) + 0.01
        result = forward_backward(model, emissions)
        # xi sums one unit of probability per transition step.
        assert result.xi.sum() == pytest.approx(T - 1)

    def test_gamma_matches_xi_marginals(self):
        rng = np.random.default_rng(9)
        space = tiny_space(1)
        model = random_model(space, rng)
        emissions = rng.random((2, len(space))) + 0.01
        result = forward_backward(model, emissions)
        # For T=2, xi row-sums equal gamma at t=0.
        assert np.allclose(result.xi.sum(axis=1), result.gamma[0])

    def test_single_observation(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        emissions = np.full((1, len(space)), 1.0 / len(space))
        result = forward_backward(model, emissions)
        assert result.xi.sum() == pytest.approx(0.0)
        assert np.allclose(result.gamma.sum(axis=1), 1.0)

    def test_long_sequence_is_numerically_stable(self):
        rng = np.random.default_rng(11)
        space = tiny_space(2)
        model = random_model(space, rng)
        emissions = rng.random((200, len(space))) * 1e-4 + 1e-9
        result = forward_backward(model, emissions)
        assert np.isfinite(result.log_likelihood)
        assert np.allclose(result.gamma.sum(axis=1), 1.0)
