"""Tests for supervised updates and Baum-Welch training."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.hmm import HiddenMarkovModel, baum_welch, log_likelihood, supervised_update

from tests.hmm.test_viterbi import tiny_space


class FixedProvider:
    """Keyword 'k<i>' emits deterministically from state i."""

    def emission_scores(self, keyword, states):
        scores = np.zeros(len(states))
        index = int(keyword[1:])
        scores[index] = 1.0
        return scores


class TestSupervisedUpdate:
    def test_counts_shape_transitions(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        trained = supervised_update(model, [[0, 1], [0, 1], [0, 2]])
        # 0 -> 1 twice, 0 -> 2 once.
        assert trained.transition[0, 1] > trained.transition[0, 2]
        assert trained.transition[0, 1] > trained.transition[0, 3]
        assert trained.initial[0] > trained.initial[1]

    def test_learning_rate_blends(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        full = supervised_update(model, [[0, 1]], learning_rate=1.0)
        half = supervised_update(model, [[0, 1]], learning_rate=0.5)
        assert full.transition[0, 1] > half.transition[0, 1]
        assert half.transition[0, 1] > model.transition[0, 1]

    def test_result_is_valid_model(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        trained = supervised_update(model, [[0, 1, 2]])
        assert np.allclose(trained.transition.sum(axis=1), 1.0)
        assert trained.initial.sum() == pytest.approx(1.0)

    def test_empty_feedback_rejected(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(TrainingError):
            supervised_update(model, [])

    def test_empty_path_rejected(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(TrainingError):
            supervised_update(model, [[]])

    def test_out_of_range_state_rejected(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(TrainingError):
            supervised_update(model, [[999]])

    def test_bad_learning_rate_rejected(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(TrainingError):
            supervised_update(model, [[0]], learning_rate=0.0)

    def test_original_model_unchanged(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        before = model.transition.copy()
        supervised_update(model, [[0, 1]])
        assert np.array_equal(model.transition, before)


class TestBaumWelch:
    def test_likelihood_never_decreases(self):
        space = tiny_space(2)
        model = HiddenMarkovModel.uniform(space)
        provider = FixedProvider()
        sequences = [["k0", "k1"], ["k0", "k2"], ["k0", "k1"]]
        trained, report = baum_welch(
            model, sequences, provider, max_iterations=10
        )
        before = sum(
            log_likelihood(model, model.emission_matrix(s, provider))
            for s in sequences
        )
        after = sum(
            log_likelihood(trained, trained.emission_matrix(s, provider))
            for s in sequences
        )
        assert after >= before - 1e-9
        assert report.sequences == 3

    def test_learns_dominant_transition(self):
        space = tiny_space(2)
        model = HiddenMarkovModel.uniform(space)
        trained, _report = baum_welch(
            model, [["k0", "k1"]] * 5, FixedProvider(), max_iterations=15
        )
        # Transition 0 -> 1 should now dominate row 0.
        assert np.argmax(trained.transition[0]) == 1
        assert np.argmax(trained.initial) == 0

    def test_convergence_reported(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        _trained, report = baum_welch(
            model, [["k0", "k1"]], FixedProvider(), max_iterations=50
        )
        assert report.converged
        assert report.iterations < 50

    def test_no_sequences_rejected(self):
        space = tiny_space(1)
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(TrainingError):
            baum_welch(model, [], FixedProvider())
