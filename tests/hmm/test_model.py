"""Tests for the HMM container and emission handling."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hmm import EMISSION_FLOOR, HiddenMarkovModel, StateSpace


class ConstantProvider:
    """Emission provider returning a fixed score vector."""

    def __init__(self, vector):
        self.vector = np.asarray(vector, dtype=float)

    def emission_scores(self, keyword, states):
        return self.vector


@pytest.fixture()
def space(mini_schema) -> StateSpace:
    return StateSpace(mini_schema)


class TestConstruction:
    def test_uniform(self, space):
        model = HiddenMarkovModel.uniform(space)
        n = len(space)
        assert model.initial == pytest.approx(np.full(n, 1 / n))
        assert np.allclose(model.transition.sum(axis=1), 1.0)

    def test_rows_are_normalised(self, space):
        n = len(space)
        model = HiddenMarkovModel(
            space, np.ones(n), np.random.default_rng(0).random((n, n)) + 0.1
        )
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert model.initial.sum() == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, space):
        n = len(space)
        with pytest.raises(ModelError):
            HiddenMarkovModel(space, np.ones(n + 1), np.ones((n, n)))
        with pytest.raises(ModelError):
            HiddenMarkovModel(space, np.ones(n), np.ones((n, n + 1)))

    def test_negative_probability_rejected(self, space):
        n = len(space)
        initial = np.ones(n)
        initial[0] = -1
        with pytest.raises(ModelError):
            HiddenMarkovModel(space, initial, np.ones((n, n)))

    def test_zero_row_rejected(self, space):
        n = len(space)
        transition = np.ones((n, n))
        transition[2, :] = 0.0
        with pytest.raises(ModelError):
            HiddenMarkovModel(space, np.ones(n), transition)

    def test_copy_is_independent(self, space):
        model = HiddenMarkovModel.uniform(space)
        clone = model.copy()
        clone.transition[0, 0] = 0.5
        assert model.transition[0, 0] != 0.5


class TestEmissionMatrix:
    def test_rows_sum_to_one(self, space):
        model = HiddenMarkovModel.uniform(space)
        vector = np.zeros(len(space))
        vector[3] = 5.0
        matrix = model.emission_matrix(["x", "y"], ConstantProvider(vector))
        assert matrix.shape == (2, len(space))
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_floor_keeps_all_states_alive(self, space):
        model = HiddenMarkovModel.uniform(space)
        matrix = model.emission_matrix(
            ["x"], ConstantProvider(np.zeros(len(space)))
        )
        assert np.all(matrix > 0)

    def test_floored_scores_dominated_by_real_evidence(self, space):
        model = HiddenMarkovModel.uniform(space)
        vector = np.zeros(len(space))
        vector[0] = 1.0
        matrix = model.emission_matrix(["x"], ConstantProvider(vector))
        assert matrix[0, 0] > matrix[0, 1] / EMISSION_FLOOR * 1e-3

    def test_empty_sequence_rejected(self, space):
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(ModelError):
            model.emission_matrix([], ConstantProvider(np.zeros(len(space))))

    def test_wrong_width_rejected(self, space):
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(ModelError):
            model.emission_matrix(["x"], ConstantProvider(np.zeros(3)))

    def test_negative_scores_rejected(self, space):
        model = HiddenMarkovModel.uniform(space)
        with pytest.raises(ModelError):
            model.emission_matrix(
                ["x"], ConstantProvider(np.full(len(space), -1.0))
            )


class TestSequenceLogProbability:
    def test_uniform_model_path_probability(self, space):
        model = HiddenMarkovModel.uniform(space)
        n = len(space)
        emissions = np.full((2, n), 1.0 / n)
        logp = model.sequence_log_probability([0, 1], emissions)
        expected = np.log(1 / n) * 4  # initial + emission + transition + emission
        assert logp == pytest.approx(expected)

    def test_length_mismatch_rejected(self, space):
        model = HiddenMarkovModel.uniform(space)
        emissions = np.full((2, len(space)), 0.1)
        with pytest.raises(ModelError):
            model.sequence_log_probability([0], emissions)
