"""Tests for the a-priori heuristic parameter builder."""

import numpy as np
import pytest

from repro.hmm import (
    AprioriWeights,
    StateKind,
    StateSpace,
    build_apriori_model,
)


@pytest.fixture()
def model_and_space(mini_schema):
    space = StateSpace(mini_schema)
    return build_apriori_model(mini_schema, space), space


class TestStructure:
    def test_valid_distributions(self, model_and_space):
        model, _space = model_and_space
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert model.initial.sum() == pytest.approx(1.0)

    def test_same_table_beats_unrelated(self, model_and_space):
        model, space = model_and_space
        title = space.index(space.attribute_state("movie", "title"))
        year = space.index(space.attribute_state("movie", "year"))
        person_name = space.index(space.attribute_state("person", "name"))
        genre_label = space.index(space.attribute_state("genre", "label"))
        assert model.transition[title, year] > model.transition[title, genre_label] or \
            model.transition[title, year] > 0
        # person and genre are not adjacent: transitions minimal.
        assert (
            model.transition[person_name, genre_label]
            < model.transition[title, year]
        )

    def test_fk_adjacent_beats_disconnected(self, model_and_space):
        model, space = model_and_space
        movie_title = space.index(space.attribute_state("movie", "title"))
        person_name = space.index(space.attribute_state("person", "name"))
        genre_label = space.index(space.attribute_state("genre", "label"))
        assert (
            model.transition[movie_title, person_name]
            > model.transition[genre_label, person_name]
        )

    def test_attribute_flows_to_own_domain(self, model_and_space):
        model, space = model_and_space
        attribute = space.index(space.attribute_state("movie", "title"))
        own_domain = space.index(space.domain_state("movie", "title"))
        other_domain = space.index(space.domain_state("movie", "year"))
        assert model.transition[attribute, own_domain] > model.transition[
            attribute, other_domain
        ]

    def test_initial_prefers_domains(self, model_and_space):
        model, space = model_and_space
        domain = space.index(space.domain_state("movie", "title"))
        attribute = space.index(space.attribute_state("movie", "title"))
        assert model.initial[domain] > model.initial[attribute]

    def test_all_transitions_positive(self, model_and_space):
        model, _space = model_and_space
        assert np.all(model.transition > 0)


class TestJunctionRule:
    def test_junction_links_entities(self, imdb_db):
        schema = imdb_db.schema
        space = StateSpace(schema)
        model = build_apriori_model(schema, space)
        # person and movie are junction-linked through casting AND directly
        # adjacent via movie.director_id: transition well above baseline.
        person_name = space.index(space.domain_state("person", "name"))
        movie_table = space.index(space.table_state("movie"))
        genre_company = space.index(space.table_state("company"))
        person_to_movie = model.transition[person_name, movie_table]
        # genre and company are NOT junction linked nor adjacent.
        genre_label = space.index(space.domain_state("genre", "label"))
        assert person_to_movie > model.transition[genre_label, genre_company]


class TestCustomWeights:
    def test_custom_weights_change_model(self, mini_schema):
        space = StateSpace(mini_schema)
        default = build_apriori_model(mini_schema, space)
        flat = build_apriori_model(
            mini_schema,
            space,
            AprioriWeights(
                attribute_to_own_domain=1.0,
                table_to_member=1.0,
                same_table=1.0,
                fk_endpoint=1.0,
                fk_adjacent_tables=1.0,
                junction_linked_tables=1.0,
                self_loop=1.0,
                default=1.0,
            ),
        )
        # Flat weights yield uniform transitions.
        n = len(space)
        assert np.allclose(flat.transition, 1.0 / n)
        assert not np.allclose(default.transition, 1.0 / n)

    def test_builds_space_when_not_given(self, mini_schema):
        model = build_apriori_model(mini_schema)
        assert len(model.states) == len(StateSpace(mini_schema))
