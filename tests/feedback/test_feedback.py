"""Tests for the feedback store, trainer, oracle and adaptive ignorance."""

import pytest

from repro.core import Configuration, KeywordMapping
from repro.errors import TrainingError
from repro.feedback import (
    FeedbackRecord,
    FeedbackStore,
    FeedbackTrainer,
    SimulatedUser,
    adaptive_ignorance,
)
from repro.hmm import State, StateKind, StateSpace


def make_config(schema, pairs):
    return Configuration(
        tuple(KeywordMapping(k, s) for k, s in pairs), 1.0
    )


@pytest.fixture()
def gold_config(mini_schema):
    return make_config(
        mini_schema,
        [
            ("kubrick", State(StateKind.DOMAIN, "person", "name")),
            ("movies", State(StateKind.TABLE, "movie")),
        ],
    )


class TestStore:
    def test_record_validation_checks_arity(self, gold_config):
        with pytest.raises(TrainingError):
            FeedbackRecord(("only-one",), gold_config)

    def test_counts(self, gold_config):
        store = FeedbackStore()
        store.add_validation(("kubrick", "movies"), gold_config)
        store.add_rejection(("kubrick", "movies"), gold_config)
        store.add_validation(("kubrick", "movies"), gold_config)
        assert store.positive_count() == 2
        assert store.negative_count() == 1
        assert len(store) == 3
        assert len(store.positives()) == 2
        assert len(store.negatives()) == 1


class TestAdaptiveIgnorance:
    def test_starts_at_ceiling(self):
        assert adaptive_ignorance(0, 0) == pytest.approx(0.9)

    def test_decays_with_positives(self):
        values = [adaptive_ignorance(n, 0) for n in (0, 4, 8, 16, 64)]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(0.1, abs=0.02)

    def test_negatives_push_back_up(self):
        assert adaptive_ignorance(10, 3) > adaptive_ignorance(10, 0)

    def test_clamped_to_bounds(self):
        assert adaptive_ignorance(1000, 0) >= 0.1
        assert adaptive_ignorance(0, 1000) <= 0.9

    def test_negative_counts_rejected(self):
        with pytest.raises(TrainingError):
            adaptive_ignorance(-1, 0)


class TestTrainer:
    def test_untrained_model_is_uniform(self, mini_schema):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        assert not trainer.is_trained
        model = trainer.model
        assert model.transition[0, 0] == pytest.approx(
            model.transition[0, 1]
        )

    def test_validation_trains(self, mini_schema, gold_config):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        trainer.validate(("kubrick", "movies"), gold_config)
        assert trainer.is_trained
        space = trainer.states
        source = space.index(State(StateKind.DOMAIN, "person", "name"))
        target = space.index(State(StateKind.TABLE, "movie"))
        row = trainer.model.transition[source]
        assert row[target] == max(row)

    def test_rejection_does_not_train(self, mini_schema, gold_config):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        trainer.reject(("kubrick", "movies"), gold_config)
        assert not trainer.is_trained
        assert trainer.suggested_ignorance() > adaptive_ignorance(0, 0) - 0.06

    def test_retrain_from_scratch(self, mini_schema, gold_config):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        trainer.validate(("kubrick", "movies"), gold_config)
        trainer.retrain()
        assert trainer.is_trained

    def test_retrain_with_no_positives_resets(self, mini_schema, gold_config):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        trainer.reject(("kubrick", "movies"), gold_config)
        trainer.retrain()
        assert not trainer.is_trained

    def test_foreign_configuration_rejected(self, mini_schema):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        foreign = Configuration(
            (
                KeywordMapping(
                    "x", State(StateKind.TABLE, "not_a_table")
                ),
            ),
            1.0,
        )
        with pytest.raises(TrainingError):
            trainer.validate(("x",), foreign)


class TestSimulatedUser:
    def test_judges_against_gold(self, gold_config):
        oracle = SimulatedUser({("kubrick", "movies"): gold_config})
        assert oracle.judge(("kubrick", "movies"), gold_config)
        wrong = gold_config.with_score(0.1)  # same identity -> still gold
        assert oracle.judge(("kubrick", "movies"), wrong)

    def test_noise_flips_verdicts(self, gold_config):
        oracle = SimulatedUser(
            {("kubrick", "movies"): gold_config}, noise=1.0
        )
        assert not oracle.judge(("kubrick", "movies"), gold_config)

    def test_teach_validates_gold_in_proposals(
        self, mini_schema, gold_config
    ):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        oracle = SimulatedUser({("kubrick", "movies"): gold_config})
        taught = oracle.teach(
            trainer, ("kubrick", "movies"), [gold_config]
        )
        assert taught and trainer.is_trained

    def test_teach_rejects_then_corrects(self, mini_schema, gold_config):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        oracle = SimulatedUser({("kubrick", "movies"): gold_config})
        wrong = Configuration(
            (
                KeywordMapping(
                    "kubrick", State(StateKind.DOMAIN, "movie", "title")
                ),
                KeywordMapping("movies", State(StateKind.TABLE, "movie")),
            ),
            1.0,
        )
        taught = oracle.teach(trainer, ("kubrick", "movies"), [wrong])
        assert taught
        assert trainer.store.negative_count() == 1
        assert trainer.store.positive_count() == 1

    def test_unknown_query_not_taught(self, mini_schema, gold_config):
        trainer = FeedbackTrainer(StateSpace(mini_schema))
        oracle = SimulatedUser({("kubrick", "movies"): gold_config})
        assert not oracle.teach(trainer, ("other",), [gold_config])
        assert not oracle.knows(("other",))
