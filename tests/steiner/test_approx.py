"""Tests for the KMB approximation."""

import pytest

from repro.db import Catalog, ColumnRef
from repro.errors import SteinerError
from repro.steiner import (
    approximate_steiner_tree,
    build_schema_graph,
    exact_steiner_tree,
)


class TestApproximation:
    def test_valid_tree_spanning_terminals(self, mondial_db):
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        terminals = [
            ColumnRef("country", "name"),
            ColumnRef("river", "name"),
            ColumnRef("city", "name"),
        ]
        tree = approximate_steiner_tree(graph, terminals)
        assert tree.is_valid_tree()
        assert set(terminals) <= set(tree.nodes)

    def test_within_2x_of_exact(self, mondial_db):
        """KMB guarantees a 2(1 - 1/t) approximation ratio."""
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        cases = [
            [ColumnRef("country", "name"), ColumnRef("river", "name")],
            [
                ColumnRef("country", "name"),
                ColumnRef("continent", "name"),
                ColumnRef("language", "name"),
            ],
        ]
        for terminals in cases:
            exact = exact_steiner_tree(graph, terminals)
            approx = approximate_steiner_tree(graph, terminals)
            assert exact.weight <= approx.weight + 1e-9
            assert approx.weight <= 2.0 * exact.weight + 1e-9

    def test_two_terminals_equals_exact(self, mini_db):
        """With two terminals KMB degenerates to the shortest path."""
        graph = build_schema_graph(
            mini_db.schema, Catalog.from_database(mini_db)
        )
        terminals = [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        assert approximate_steiner_tree(
            graph, terminals
        ).weight == pytest.approx(exact_steiner_tree(graph, terminals).weight)

    def test_single_terminal(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        tree = approximate_steiner_tree(graph, [ColumnRef("movie", "id")])
        assert tree.weight == 0.0

    def test_empty_terminals_rejected(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        with pytest.raises(SteinerError):
            approximate_steiner_tree(graph, [])

    def test_disconnected_rejected(self, mini_schema):
        from repro.steiner import SchemaGraph

        graph = SchemaGraph(mini_schema)
        with pytest.raises(SteinerError):
            approximate_steiner_tree(
                graph,
                [ColumnRef("movie", "title"), ColumnRef("person", "name")],
            )

    def test_no_nonterminal_leaves(self, mondial_db):
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        terminals = [
            ColumnRef("country", "name"),
            ColumnRef("mountain", "name"),
        ]
        tree = approximate_steiner_tree(graph, terminals)
        degree: dict = {}
        for edge in tree.edges:
            degree[edge.left] = degree.get(edge.left, 0) + 1
            degree[edge.right] = degree.get(edge.right, 0) + 1
        for node, d in degree.items():
            if d == 1:
                assert node in tree.terminals
