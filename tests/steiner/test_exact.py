"""Tests for exact Steiner trees, oracled against networkx."""

import networkx as nx
import pytest

from repro.db import Catalog, ColumnRef
from repro.errors import SteinerError
from repro.steiner import build_schema_graph, exact_steiner_tree, shortest_paths


def to_networkx(graph):
    g = nx.Graph()
    for edge in graph.edges:
        g.add_edge(edge.left, edge.right, weight=edge.weight)
    return g


class TestShortestPaths:
    def test_matches_networkx(self, mondial_db):
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        nxg = to_networkx(graph)
        source = ColumnRef("country", "code")
        distances, _pred = shortest_paths(graph, source)
        expected = nx.single_source_dijkstra_path_length(nxg, source)
        assert set(distances) == set(expected)
        for node, distance in expected.items():
            assert distances[node] == pytest.approx(distance)


class TestExact:
    def test_single_terminal(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        tree = exact_steiner_tree(graph, [ColumnRef("movie", "title")])
        assert tree.weight == 0.0
        assert tree.edges == frozenset()

    def test_two_terminals_is_shortest_path(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        source = ColumnRef("person", "name")
        target = ColumnRef("genre", "label")
        tree = exact_steiner_tree(graph, [source, target])
        distances, _ = shortest_paths(graph, source)
        assert tree.weight == pytest.approx(distances[target])
        assert tree.is_valid_tree()

    def test_terminals_in_same_table(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        tree = exact_steiner_tree(
            graph,
            [ColumnRef("movie", "title"), ColumnRef("movie", "year")],
        )
        # title - id - year through the pk hub: 2 intra edges.
        assert tree.weight == pytest.approx(0.2)
        assert tree.tables == frozenset({"movie"})

    def test_duplicate_terminals_collapse(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        ref = ColumnRef("movie", "title")
        tree = exact_steiner_tree(graph, [ref, ref])
        assert tree.weight == 0.0

    def test_empty_terminals_rejected(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        with pytest.raises(SteinerError):
            exact_steiner_tree(graph, [])

    def test_unknown_terminal_rejected(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        with pytest.raises(SteinerError):
            exact_steiner_tree(graph, [ColumnRef("zzz", "id")])

    @pytest.mark.parametrize(
        "terminal_refs",
        [
            [("person", "name"), ("genre", "label")],
            [("person", "name"), ("movie", "title"), ("genre", "label")],
            [("movie", "year"), ("person", "id")],
        ],
    )
    def test_matches_networkx_steiner_lower_bound(
        self, mini_db, terminal_refs
    ):
        """Our exact tree must never be heavier than the networkx
        approximation, and must be a valid tree spanning the terminals."""
        graph = build_schema_graph(
            mini_db.schema, Catalog.from_database(mini_db)
        )
        terminals = [ColumnRef(t, c) for t, c in terminal_refs]
        tree = exact_steiner_tree(graph, terminals)
        assert tree.is_valid_tree()
        assert set(terminals) <= set(tree.nodes)

        nxg = to_networkx(graph)
        approx = nx.algorithms.approximation.steiner_tree(
            nxg, terminals, weight="weight"
        )
        approx_weight = sum(
            d["weight"] for _u, _v, d in approx.edges(data=True)
        )
        assert tree.weight <= approx_weight + 1e-9

    def test_exhaustive_on_mondial(self, mondial_db):
        """On the complex schema: exact <= KMB approximation, always."""
        from repro.steiner import approximate_steiner_tree

        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        cases = [
            [ColumnRef("country", "name"), ColumnRef("river", "name")],
            [
                ColumnRef("country", "name"),
                ColumnRef("continent", "name"),
                ColumnRef("city", "name"),
            ],
            [
                ColumnRef("organization", "name"),
                ColumnRef("country", "name"),
            ],
        ]
        for terminals in cases:
            exact = exact_steiner_tree(graph, terminals)
            approx = approximate_steiner_tree(graph, terminals)
            assert exact.is_valid_tree()
            assert exact.weight <= approx.weight + 1e-9
