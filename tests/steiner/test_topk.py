"""Tests for top-k Steiner tree enumeration."""

import pytest

from repro.db import Catalog, ColumnRef
from repro.errors import SteinerError
from repro.steiner import (
    build_schema_graph,
    exact_steiner_tree,
    top_k_steiner_trees,
)


class TestBasics:
    def test_top1_matches_exact(self, mini_db):
        graph = build_schema_graph(
            mini_db.schema, Catalog.from_database(mini_db)
        )
        terminals = [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        exact = exact_steiner_tree(graph, terminals)
        topk = top_k_steiner_trees(graph, terminals, 3)
        assert topk[0].weight == pytest.approx(exact.weight)

    def test_results_sorted_and_distinct(self, mondial_db):
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        terminals = [
            ColumnRef("country", "name"),
            ColumnRef("organization", "name"),
        ]
        trees = top_k_steiner_trees(graph, terminals, 5)
        weights = [t.weight for t in trees]
        assert weights == sorted(weights)
        signatures = [t.signature() for t in trees]
        assert len(set(signatures)) == len(signatures)

    def test_all_results_are_valid_trees(self, mondial_db):
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        terminals = [
            ColumnRef("country", "name"),
            ColumnRef("city", "name"),
        ]
        for tree in top_k_steiner_trees(graph, terminals, 6):
            assert tree.is_valid_tree()
            assert set(terminals) <= set(tree.nodes)

    def test_single_terminal(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        trees = top_k_steiner_trees(graph, [ColumnRef("movie", "title")], 5)
        assert len(trees) == 1 and trees[0].weight == 0.0

    def test_invalid_k_rejected(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        with pytest.raises(SteinerError):
            top_k_steiner_trees(graph, [ColumnRef("movie", "title")], 0)

    def test_no_terminals_rejected(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        with pytest.raises(SteinerError):
            top_k_steiner_trees(graph, [], 3)

    def test_disconnected_terminals_rejected(self, mini_schema):
        from repro.steiner import SchemaGraph

        graph = SchemaGraph(mini_schema)  # no edges at all
        with pytest.raises(SteinerError):
            top_k_steiner_trees(
                graph,
                [ColumnRef("movie", "title"), ColumnRef("person", "name")],
                2,
            )


class TestDiversity:
    def test_multiple_paths_found_on_mondial(self, mondial_db):
        """country <-> organization: via member, or via city headquarters —
        the enumerator must surface structurally different paths."""
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        terminals = [
            ColumnRef("country", "name"),
            ColumnRef("organization", "name"),
        ]
        trees = top_k_steiner_trees(graph, terminals, 6)
        assert len(trees) >= 2
        table_sets = {tuple(sorted(t.tables)) for t in trees}
        assert len(table_sets) >= 2

    def test_supertree_pruning_reduces_redundancy(self, mondial_db):
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        terminals = [
            ColumnRef("country", "name"),
            ColumnRef("city", "name"),
        ]
        pruned = top_k_steiner_trees(
            graph, terminals, 8, prune_supertrees=True
        )
        raw = top_k_steiner_trees(
            graph, terminals, 8, prune_supertrees=False
        )
        # Pruned results never contain one another.
        for i, outer in enumerate(pruned):
            for j, inner in enumerate(pruned):
                if i != j:
                    assert not outer.contains_tree(inner)
        # Pruning can only remove or keep results, never invent them.
        assert {t.signature() for t in pruned} <= {
            t.signature() for t in raw
        } or len(raw) == 8

    def test_prefix_property(self, mondial_db):
        graph = build_schema_graph(
            mondial_db.schema, Catalog.from_database(mondial_db)
        )
        terminals = [
            ColumnRef("country", "name"),
            ColumnRef("river", "name"),
        ]
        small = top_k_steiner_trees(graph, terminals, 2)
        large = top_k_steiner_trees(graph, terminals, 5)
        assert [t.signature() for t in small] == [
            t.signature() for t in large[:2]
        ]
