"""Tests for the schema graph."""

import pytest

from repro.db import Catalog, ColumnRef
from repro.errors import SteinerError
from repro.steiner import (
    EdgeKind,
    INTRA_TABLE_WEIGHT,
    SchemaGraph,
    build_schema_graph,
)


class TestConstruction:
    def test_node_per_attribute(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        assert len(graph) == sum(len(t.columns) for t in mini_schema.tables)

    def test_paper_edge_structure(self, mini_schema):
        """(i) pk-to-attribute edges, (ii) pk-fk edges."""
        graph = build_schema_graph(mini_schema)
        pk = ColumnRef("movie", "id")
        for column in ("title", "year", "director_id", "genre_id"):
            edge = graph.edge_between(pk, ColumnRef("movie", column))
            assert edge is not None and edge.kind == EdgeKind.INTRA
        join = graph.edge_between(
            ColumnRef("movie", "director_id"), ColumnRef("person", "id")
        )
        assert join is not None and join.kind == EdgeKind.JOIN
        assert join.foreign_key is not None

    def test_no_edges_between_non_key_attributes(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        assert (
            graph.edge_between(
                ColumnRef("movie", "title"), ColumnRef("movie", "year")
            )
            is None
        )

    def test_edge_count(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        intra = sum(
            len(t.primary_key) * (len(t.columns) - 1)
            for t in mini_schema.tables
        )
        joins = len(mini_schema.foreign_keys)
        assert graph.edge_count == intra + joins


class TestWeights:
    def test_uniform_weights_without_catalog(self, mini_schema):
        graph = build_schema_graph(mini_schema, catalog=None)
        join_edges = [e for e in graph.edges if e.kind == EdgeKind.JOIN]
        assert all(e.weight == 1.0 for e in join_edges)

    def test_mi_weights_with_catalog(self, mini_db):
        catalog = Catalog.from_database(mini_db)
        graph = build_schema_graph(mini_db.schema, catalog)
        join_edges = [e for e in graph.edges if e.kind == EdgeKind.JOIN]
        # MI distances land in (MIN, 1 + MIN]; none should be exactly the
        # uniform default on this skewed instance.
        assert all(0.0 < e.weight <= 1.01 + 1e-9 for e in join_edges)

    def test_mi_disabled_falls_back_to_uniform(self, mini_db):
        catalog = Catalog.from_database(mini_db)
        graph = build_schema_graph(
            mini_db.schema, catalog, mutual_information=False
        )
        join_edges = [e for e in graph.edges if e.kind == EdgeKind.JOIN]
        assert all(e.weight == 1.0 for e in join_edges)

    def test_intra_edges_are_cheap(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        intra_edges = [e for e in graph.edges if e.kind == EdgeKind.INTRA]
        assert all(e.weight == INTRA_TABLE_WEIGHT for e in intra_edges)


class TestGraphOperations:
    def test_add_edge_validates(self, mini_schema):
        graph = SchemaGraph(mini_schema)
        node = ColumnRef("movie", "id")
        with pytest.raises(SteinerError):
            graph.add_edge(node, node, 1.0, EdgeKind.INTRA)
        with pytest.raises(SteinerError):
            graph.add_edge(node, ColumnRef("zzz", "id"), 1.0, EdgeKind.INTRA)
        with pytest.raises(SteinerError):
            graph.add_edge(
                node, ColumnRef("movie", "title"), 0.0, EdgeKind.INTRA
            )

    def test_readding_keeps_lighter_edge(self, mini_schema):
        graph = SchemaGraph(mini_schema)
        left, right = ColumnRef("movie", "id"), ColumnRef("movie", "title")
        graph.add_edge(left, right, 2.0, EdgeKind.INTRA)
        graph.add_edge(left, right, 1.0, EdgeKind.INTRA)
        graph.add_edge(left, right, 3.0, EdgeKind.INTRA)
        assert graph.edge_between(left, right).weight == 1.0
        assert graph.edge_count == 1

    def test_neighbors(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        neighbours = dict(graph.neighbors(ColumnRef("movie", "id")))
        assert ColumnRef("movie", "title") in neighbours

    def test_neighbors_of_unknown_node(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        with pytest.raises(SteinerError):
            list(graph.neighbors(ColumnRef("zzz", "id")))

    def test_connected(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        assert graph.connected(
            {ColumnRef("person", "name"), ColumnRef("genre", "label")}
        )
        assert graph.connected(set())

    def test_degree(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        # movie.id connects to 4 own attributes; fk targets hang off the
        # fk columns, not the pk, so degree is exactly 4.
        assert graph.degree(ColumnRef("movie", "id")) == 4

    def test_edge_other(self, mini_schema):
        graph = build_schema_graph(mini_schema)
        edge = graph.edge_between(
            ColumnRef("movie", "id"), ColumnRef("movie", "title")
        )
        assert edge.other(edge.left) == edge.right
        assert edge.other(edge.right) == edge.left
        with pytest.raises(SteinerError):
            edge.other(ColumnRef("genre", "id"))
