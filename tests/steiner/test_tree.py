"""Tests for the SteinerTree value object."""

import pytest

from repro.db import Catalog, ColumnRef
from repro.errors import SteinerError
from repro.steiner import (
    EdgeKind,
    SchemaEdge,
    SteinerTree,
    build_schema_graph,
    exact_steiner_tree,
)


def tree_for(db, terminals):
    graph = build_schema_graph(db.schema, Catalog.from_database(db))
    return exact_steiner_tree(graph, terminals)


class TestStructure:
    def test_nodes_and_steiner_points(self, mini_db):
        tree = tree_for(
            mini_db, [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        )
        assert ColumnRef("movie", "director_id") in tree.steiner_points
        assert ColumnRef("person", "name") in tree.nodes
        assert ColumnRef("person", "name") not in tree.steiner_points

    def test_tables(self, mini_db):
        tree = tree_for(
            mini_db, [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        )
        assert tree.tables == frozenset({"person", "movie", "genre"})

    def test_join_edges_and_foreign_keys(self, mini_db):
        tree = tree_for(
            mini_db, [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        )
        joins = tree.join_edges()
        assert len(joins) == 2
        fks = tree.foreign_keys()
        assert {(fk.table, fk.column) for fk in fks} == {
            ("movie", "director_id"),
            ("movie", "genre_id"),
        }

    def test_join_edge_without_fk_raises(self):
        bad_edge = SchemaEdge(
            ColumnRef("a", "x"), ColumnRef("b", "y"), 1.0, EdgeKind.JOIN, None
        )
        tree = SteinerTree(
            frozenset({ColumnRef("a", "x")}), frozenset({bad_edge}), 1.0
        )
        with pytest.raises(SteinerError):
            tree.foreign_keys()

    def test_signature_is_edge_based(self, mini_db):
        left = tree_for(
            mini_db, [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        )
        right = tree_for(
            mini_db, [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        )
        assert left.signature() == right.signature()


class TestValidity:
    def test_empty_tree_single_table_is_valid(self):
        tree = SteinerTree(
            frozenset({ColumnRef("movie", "title"), ColumnRef("movie", "year")}),
            frozenset(),
            0.0,
        )
        assert tree.is_valid_tree()

    def test_empty_tree_multi_table_is_invalid(self):
        tree = SteinerTree(
            frozenset({ColumnRef("movie", "title"), ColumnRef("person", "name")}),
            frozenset(),
            0.0,
        )
        assert not tree.is_valid_tree()

    def test_cycle_is_invalid(self):
        a, b, c = (
            ColumnRef("t", "a"),
            ColumnRef("t", "b"),
            ColumnRef("t", "c"),
        )
        edges = frozenset(
            {
                SchemaEdge(a, b, 1.0, EdgeKind.INTRA),
                SchemaEdge(b, c, 1.0, EdgeKind.INTRA),
                SchemaEdge(c, a, 1.0, EdgeKind.INTRA),
            }
        )
        tree = SteinerTree(frozenset({a}), edges, 3.0)
        assert not tree.is_valid_tree()

    def test_disconnected_forest_is_invalid(self):
        a, b, c, d = (ColumnRef("t", x) for x in "abcd")
        edges = frozenset(
            {
                SchemaEdge(a, b, 1.0, EdgeKind.INTRA),
                SchemaEdge(c, d, 1.0, EdgeKind.INTRA),
            }
        )
        tree = SteinerTree(frozenset({a, c}), edges, 2.0)
        assert not tree.is_valid_tree()

    def test_contains_tree(self, mini_db):
        big = tree_for(
            mini_db, [ColumnRef("person", "name"), ColumnRef("genre", "label")]
        )
        small = tree_for(
            mini_db, [ColumnRef("person", "name"), ColumnRef("movie", "id")]
        )
        assert big.contains_tree(big)
        # The person-movie path is a sub-path of the person-movie-genre path.
        assert big.contains_tree(small)
        assert not small.contains_tree(big)

    def test_ordering_by_weight(self):
        light = SteinerTree(frozenset({ColumnRef("t", "a")}), frozenset(), 0.0)
        heavy = SteinerTree(frozenset({ColumnRef("t", "b")}), frozenset(), 0.0)
        # Same weight: falls back to node names for determinism.
        assert light < heavy
