"""Tests for query execution."""

import datetime

import pytest

from repro.db import (
    Column,
    Comparison,
    Database,
    ForeignKey,
    JoinCondition,
    Predicate,
    Schema,
    SelectQuery,
    TableRef,
    TableSchema,
    execute,
    result_count,
)
from repro.db.executor import contains_match, like_match
from repro.db.types import DataType
from repro.errors import ExecutionError


def q(**kwargs) -> SelectQuery:
    return SelectQuery(**kwargs)


class TestScan:
    def test_full_scan(self, mini_db):
        result = execute(mini_db, q(tables=(TableRef.of("movie"),)))
        assert len(result) == 5

    def test_equality_predicate(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                predicates=(Predicate("movie", "year", Comparison.EQ, 1979),),
            ),
        )
        assert len(result) == 1
        assert result.rows[0][1] == "Alien"

    def test_contains_is_case_insensitive(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("person"),),
                predicates=(
                    Predicate("person", "name", Comparison.CONTAINS, "KUBRICK"),
                ),
            ),
        )
        assert len(result) == 1

    def test_like_wildcards(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                predicates=(
                    Predicate("movie", "title", Comparison.LIKE, "The %"),
                ),
            ),
        )
        assert {row[1] for row in result} == {"The Shining", "The Gleaners"}

    def test_comparison_operators(self, mini_db):
        for op, expected in (
            (Comparison.LT, {1968, 1979}),
            (Comparison.LE, {1968, 1979, 1980}),
            (Comparison.GT, {1982, 2000}),
            (Comparison.GE, {1980, 1982, 2000}),
            (Comparison.NE, {1968, 1979, 1982, 2000}),
        ):
            result = execute(
                mini_db,
                q(
                    tables=(TableRef.of("movie"),),
                    predicates=(Predicate("movie", "year", op, 1980),),
                    projection=(("movie", "year"),),
                ),
            )
            assert {row[0] for row in result} == expected, op

    def test_null_comparisons_are_false(self, mini_db):
        mini_db.insert(
            "movie",
            {"id": 9, "title": "N", "year": None, "director_id": 1, "genre_id": 1},
        )
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                predicates=(Predicate("movie", "year", Comparison.NE, 1980),),
            ),
        )
        assert all(row[2] is not None for row in result)

    def test_type_mismatch_raises(self, mini_db):
        with pytest.raises(ExecutionError):
            execute(
                mini_db,
                q(
                    tables=(TableRef.of("movie"),),
                    predicates=(
                        Predicate("movie", "year", Comparison.LT, "abc"),
                    ),
                ),
            )


class TestJoin:
    def test_two_way_join(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
                joins=(JoinCondition("m", "director_id", "p", "id"),),
                predicates=(
                    Predicate("p", "name", Comparison.CONTAINS, "kubrick"),
                ),
                projection=(("m", "title"),),
            ),
        )
        assert {row[0] for row in result} == {"A Space Odyssey", "The Shining"}

    def test_three_way_join(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(
                    TableRef.of("movie", "m"),
                    TableRef.of("person", "p"),
                    TableRef.of("genre", "g"),
                ),
                joins=(
                    JoinCondition("m", "director_id", "p", "id"),
                    JoinCondition("m", "genre_id", "g", "id"),
                ),
                predicates=(
                    Predicate("g", "label", Comparison.EQ, "scifi"),
                    Predicate("p", "name", Comparison.CONTAINS, "scott"),
                ),
                projection=(("m", "title"),),
            ),
        )
        assert {row[0] for row in result} == {"Alien", "Blade Runner"}

    def test_join_direction_is_irrelevant(self, mini_db):
        forward = q(
            tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
            joins=(JoinCondition("m", "director_id", "p", "id"),),
        )
        backward = q(
            tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
            joins=(JoinCondition("p", "id", "m", "director_id"),),
        )
        assert result_count(mini_db, forward) == result_count(mini_db, backward)

    def test_self_join(self, mini_db):
        # Movies sharing the same director, as an alias pair.
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie", "m1"), TableRef.of("movie", "m2")),
                joins=(JoinCondition("m1", "director_id", "m2", "director_id"),),
                predicates=(
                    Predicate("m1", "title", Comparison.EQ, "Alien"),
                ),
                projection=(("m2", "title"),),
            ),
        )
        assert {row[0] for row in result} == {"Alien", "Blade Runner"}

    def test_cross_product_when_disconnected(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("person"), TableRef.of("genre")),
            ),
        )
        assert len(result) == 9

    def test_cyclic_join_conditions(self, mini_db):
        # Redundant cycle: m-p join stated twice through different columns.
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
                joins=(
                    JoinCondition("m", "director_id", "p", "id"),
                    JoinCondition("p", "id", "m", "director_id"),
                ),
            ),
        )
        assert len(result) == 5


class TestProjection:
    def test_distinct_dedupes(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                projection=(("movie", "director_id"),),
                distinct=True,
            ),
        )
        assert len(result) == 3

    def test_non_distinct_keeps_duplicates(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                projection=(("movie", "director_id"),),
                distinct=False,
            ),
        )
        assert len(result) == 5

    def test_limit(self, mini_db):
        result = execute(
            mini_db, q(tables=(TableRef.of("movie"),), limit=2)
        )
        assert len(result) == 2

    def test_select_star_column_names(self, mini_db):
        result = execute(mini_db, q(tables=(TableRef.of("genre"),)))
        assert result.columns == ("genre.id", "genre.label")

    def test_dicts(self, mini_db):
        result = execute(
            mini_db,
            q(tables=(TableRef.of("genre"),), projection=(("genre", "label"),)),
        )
        assert {"genre.label": "scifi"} in result.dicts()

    def test_limit_applies_after_distinct(self, mini_db):
        # 3 distinct director_ids over 5 movies: LIMIT must count
        # de-duplicated rows, not scanned ones.
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                projection=(("movie", "director_id"),),
                distinct=True,
                limit=2,
            ),
        )
        assert len(result) == 2
        assert len({row[0] for row in result}) == 2

    def test_limit_larger_than_distinct_pool(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                projection=(("movie", "director_id"),),
                distinct=True,
                limit=50,
            ),
        )
        assert len(result) == 3

    def test_non_distinct_limit_keeps_duplicates(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                projection=(("movie", "director_id"),),
                distinct=False,
                limit=4,
            ),
        )
        assert len(result) == 4


class TestPredicateHelpers:
    def test_like_escape_percent(self):
        assert like_match("100%", "100\\%")
        assert not like_match("100x", "100\\%")
        assert like_match("100x", "100%")

    def test_like_escape_underscore(self):
        assert like_match("a_b", "a\\_b")
        assert not like_match("axb", "a\\_b")
        assert like_match("axb", "a_b")

    def test_like_escaped_backslash(self):
        assert like_match("a\\b", "a\\\\b")

    def test_like_glob_metacharacters_are_literal(self):
        # fnmatch would treat these as wildcards; SQL LIKE must not.
        assert not like_match("abc", "a*c")
        assert not like_match("abc", "a?c")
        assert like_match("a*c", "a*c")
        assert like_match("a[b]c", "a[b]c")

    def test_like_wildcards_span_newlines(self):
        assert like_match("first\nsecond", "first%second")

    def test_contains_matches_whole_tokens(self):
        assert contains_match("Blue Lake", "lake")
        assert contains_match("Blue Lake", "LAKE")
        # substring of a longer token: the full-text index would not
        # report it, so the executor must not either
        assert not contains_match("Lakeland", "lake")

    def test_contains_multi_token_phrase(self):
        assert contains_match("Stanley Kubrick", "stanley kubrick")
        assert not contains_match("Stanley Kubrick", "kubrick stanley")
        assert contains_match("The Blue Lake Hotel", "blue lake")

    def test_contains_non_text_values_render_like_the_index(self):
        assert contains_match(1968, "1968")
        assert contains_match(datetime.date(1994, 5, 1), "1994")
        assert not contains_match(None, "1968")

    def test_contains_tokenless_keyword_never_matches(self):
        assert not contains_match("anything", "???")
        assert not contains_match("anything", "")


def _typed_db() -> Database:
    schema = Schema(
        tables=[
            TableSchema(
                "events",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("day", DataType.DATE),
                    Column("open", DataType.BOOLEAN),
                ),
                ("id",),
            ),
            TableSchema(
                "halls",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("name", DataType.TEXT, nullable=False),
                ),
                ("id",),
            ),
        ],
        foreign_keys=[],
        name="typed",
    )
    db = Database(schema)
    db.insert("events", {"id": 1, "day": "2020-01-10", "open": True})
    db.insert("events", {"id": 2, "day": "2021-06-01", "open": False})
    db.insert("events", {"id": 3, "day": None, "open": None})
    db.insert("halls", {"id": 1, "name": "North"})
    db.insert("halls", {"id": 2, "name": "South"})
    return db


class TestTypedComparisons:
    def test_date_range_predicates(self):
        db = _typed_db()
        result = execute(
            db,
            q(
                tables=(TableRef.of("events"),),
                predicates=(
                    Predicate(
                        "events", "day", Comparison.GE, datetime.date(2021, 1, 1)
                    ),
                ),
                projection=(("events", "id"),),
            ),
        )
        assert {row[0] for row in result} == {2}

    def test_date_equality(self):
        db = _typed_db()
        result = execute(
            db,
            q(
                tables=(TableRef.of("events"),),
                predicates=(
                    Predicate(
                        "events", "day", Comparison.EQ, datetime.date(2020, 1, 10)
                    ),
                ),
            ),
        )
        assert len(result) == 1

    def test_boolean_equality(self):
        db = _typed_db()
        for flag, expected in ((True, {1}), (False, {2})):
            result = execute(
                db,
                q(
                    tables=(TableRef.of("events"),),
                    predicates=(Predicate("events", "open", Comparison.EQ, flag),),
                    projection=(("events", "id"),),
                ),
            )
            assert {row[0] for row in result} == expected

    def test_null_typed_values_never_compare(self):
        db = _typed_db()
        result = execute(
            db,
            q(
                tables=(TableRef.of("events"),),
                predicates=(
                    Predicate("events", "open", Comparison.NE, True),
                ),
                projection=(("events", "id"),),
            ),
        )
        assert {row[0] for row in result} == {2}  # id 3 is NULL, excluded

    def test_disconnected_three_way_cross_product(self):
        # events x halls with no join: 3 * 2 = 6 combinations.
        db = _typed_db()
        result = execute(
            db,
            q(tables=(TableRef.of("events"), TableRef.of("halls"))),
        )
        assert len(result) == 6

    def test_partially_connected_from_falls_back_to_cross_product(self, mini_db):
        # movie-person are joined; genre floats free -> join result x 3.
        joined = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
                joins=(JoinCondition("m", "director_id", "p", "id"),),
            ),
        )
        with_free_alias = execute(
            mini_db,
            q(
                tables=(
                    TableRef.of("movie", "m"),
                    TableRef.of("person", "p"),
                    TableRef.of("genre", "g"),
                ),
                joins=(JoinCondition("m", "director_id", "p", "id"),),
            ),
        )
        assert len(with_free_alias) == len(joined) * 3

    def test_cross_product_respects_local_predicates(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("person"), TableRef.of("genre")),
                predicates=(
                    Predicate("person", "name", Comparison.CONTAINS, "kubrick"),
                    Predicate("genre", "label", Comparison.EQ, "scifi"),
                ),
            ),
        )
        assert len(result) == 1
