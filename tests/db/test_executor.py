"""Tests for query execution."""

import pytest

from repro.db import (
    Comparison,
    JoinCondition,
    Predicate,
    SelectQuery,
    TableRef,
    execute,
    result_count,
)
from repro.errors import ExecutionError


def q(**kwargs) -> SelectQuery:
    return SelectQuery(**kwargs)


class TestScan:
    def test_full_scan(self, mini_db):
        result = execute(mini_db, q(tables=(TableRef.of("movie"),)))
        assert len(result) == 5

    def test_equality_predicate(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                predicates=(Predicate("movie", "year", Comparison.EQ, 1979),),
            ),
        )
        assert len(result) == 1
        assert result.rows[0][1] == "Alien"

    def test_contains_is_case_insensitive(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("person"),),
                predicates=(
                    Predicate("person", "name", Comparison.CONTAINS, "KUBRICK"),
                ),
            ),
        )
        assert len(result) == 1

    def test_like_wildcards(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                predicates=(
                    Predicate("movie", "title", Comparison.LIKE, "The %"),
                ),
            ),
        )
        assert {row[1] for row in result} == {"The Shining", "The Gleaners"}

    def test_comparison_operators(self, mini_db):
        for op, expected in (
            (Comparison.LT, {1968, 1979}),
            (Comparison.LE, {1968, 1979, 1980}),
            (Comparison.GT, {1982, 2000}),
            (Comparison.GE, {1980, 1982, 2000}),
            (Comparison.NE, {1968, 1979, 1982, 2000}),
        ):
            result = execute(
                mini_db,
                q(
                    tables=(TableRef.of("movie"),),
                    predicates=(Predicate("movie", "year", op, 1980),),
                    projection=(("movie", "year"),),
                ),
            )
            assert {row[0] for row in result} == expected, op

    def test_null_comparisons_are_false(self, mini_db):
        mini_db.insert(
            "movie",
            {"id": 9, "title": "N", "year": None, "director_id": 1, "genre_id": 1},
        )
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                predicates=(Predicate("movie", "year", Comparison.NE, 1980),),
            ),
        )
        assert all(row[2] is not None for row in result)

    def test_type_mismatch_raises(self, mini_db):
        with pytest.raises(ExecutionError):
            execute(
                mini_db,
                q(
                    tables=(TableRef.of("movie"),),
                    predicates=(
                        Predicate("movie", "year", Comparison.LT, "abc"),
                    ),
                ),
            )


class TestJoin:
    def test_two_way_join(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
                joins=(JoinCondition("m", "director_id", "p", "id"),),
                predicates=(
                    Predicate("p", "name", Comparison.CONTAINS, "kubrick"),
                ),
                projection=(("m", "title"),),
            ),
        )
        assert {row[0] for row in result} == {"A Space Odyssey", "The Shining"}

    def test_three_way_join(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(
                    TableRef.of("movie", "m"),
                    TableRef.of("person", "p"),
                    TableRef.of("genre", "g"),
                ),
                joins=(
                    JoinCondition("m", "director_id", "p", "id"),
                    JoinCondition("m", "genre_id", "g", "id"),
                ),
                predicates=(
                    Predicate("g", "label", Comparison.EQ, "scifi"),
                    Predicate("p", "name", Comparison.CONTAINS, "scott"),
                ),
                projection=(("m", "title"),),
            ),
        )
        assert {row[0] for row in result} == {"Alien", "Blade Runner"}

    def test_join_direction_is_irrelevant(self, mini_db):
        forward = q(
            tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
            joins=(JoinCondition("m", "director_id", "p", "id"),),
        )
        backward = q(
            tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
            joins=(JoinCondition("p", "id", "m", "director_id"),),
        )
        assert result_count(mini_db, forward) == result_count(mini_db, backward)

    def test_self_join(self, mini_db):
        # Movies sharing the same director, as an alias pair.
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie", "m1"), TableRef.of("movie", "m2")),
                joins=(JoinCondition("m1", "director_id", "m2", "director_id"),),
                predicates=(
                    Predicate("m1", "title", Comparison.EQ, "Alien"),
                ),
                projection=(("m2", "title"),),
            ),
        )
        assert {row[0] for row in result} == {"Alien", "Blade Runner"}

    def test_cross_product_when_disconnected(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("person"), TableRef.of("genre")),
            ),
        )
        assert len(result) == 9

    def test_cyclic_join_conditions(self, mini_db):
        # Redundant cycle: m-p join stated twice through different columns.
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
                joins=(
                    JoinCondition("m", "director_id", "p", "id"),
                    JoinCondition("p", "id", "m", "director_id"),
                ),
            ),
        )
        assert len(result) == 5


class TestProjection:
    def test_distinct_dedupes(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                projection=(("movie", "director_id"),),
                distinct=True,
            ),
        )
        assert len(result) == 3

    def test_non_distinct_keeps_duplicates(self, mini_db):
        result = execute(
            mini_db,
            q(
                tables=(TableRef.of("movie"),),
                projection=(("movie", "director_id"),),
                distinct=False,
            ),
        )
        assert len(result) == 5

    def test_limit(self, mini_db):
        result = execute(
            mini_db, q(tables=(TableRef.of("movie"),), limit=2)
        )
        assert len(result) == 2

    def test_select_star_column_names(self, mini_db):
        result = execute(mini_db, q(tables=(TableRef.of("genre"),)))
        assert result.columns == ("genre.id", "genre.label")

    def test_dicts(self, mini_db):
        result = execute(
            mini_db,
            q(tables=(TableRef.of("genre"),), projection=(("genre", "label"),)),
        )
        assert {"genre.label": "scifi"} in result.dicts()
