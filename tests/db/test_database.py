"""Tests for the database container and integrity checking."""

import pytest

from repro.db import ColumnRef, Database
from repro.errors import IntegrityError, UnknownTableError


class TestAccess:
    def test_table_lookup(self, mini_db):
        assert mini_db.table("movie").name == "movie"
        with pytest.raises(UnknownTableError):
            mini_db.table("nope")

    def test_contains(self, mini_db):
        assert "movie" in mini_db
        assert "nope" not in mini_db

    def test_total_rows(self, mini_db):
        assert mini_db.total_rows() == 3 + 3 + 5

    def test_column_values(self, mini_db):
        years = mini_db.column_values(ColumnRef("movie", "year"))
        assert 1968 in years and len(years) == 5


class TestIntegrity:
    def test_clean_database_passes(self, mini_db):
        mini_db.check_integrity()

    def test_dangling_fk_detected(self, mini_db):
        mini_db.insert(
            "movie",
            {"id": 99, "title": "Ghost", "year": 2000, "director_id": 42,
             "genre_id": 1},
        )
        with pytest.raises(IntegrityError) as excinfo:
            mini_db.check_integrity()
        assert "director_id" in str(excinfo.value)

    def test_null_fk_is_allowed(self, mini_schema):
        # year is nullable; FKs on nullable columns skip the check for NULL.
        db = Database(mini_schema)
        db.insert("person", {"id": 1, "name": "X"})
        db.insert("genre", {"id": 1, "label": "g"})
        db.insert(
            "movie",
            {"id": 1, "title": "T", "year": None, "director_id": 1, "genre_id": 1},
        )
        db.check_integrity()

    def test_insert_many(self, mini_schema):
        db = Database(mini_schema)
        count = db.insert_many(
            "person", [{"id": i, "name": f"P{i}"} for i in range(10)]
        )
        assert count == 10
        assert len(db.table("person")) == 10

    def test_repr_mentions_scale(self, mini_db):
        assert "tables=3" in repr(mini_db)
