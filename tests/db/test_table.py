"""Tests for in-memory table storage and indexing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import Column, Table, TableSchema
from repro.db.types import DataType
from repro.errors import IntegrityError, UnknownColumnError


@pytest.fixture()
def table() -> Table:
    return Table(
        TableSchema(
            "movie",
            (
                Column("id", DataType.INTEGER, nullable=False),
                Column("title", DataType.TEXT, nullable=False),
                Column("year", DataType.INTEGER),
            ),
            ("id",),
        )
    )


class TestInsert:
    def test_mapping_insert(self, table):
        row = table.insert({"id": 1, "title": "Alien", "year": 1979})
        assert row == (1, "Alien", 1979)

    def test_positional_insert(self, table):
        assert table.insert((1, "Alien", 1979)) == (1, "Alien", 1979)

    def test_values_are_coerced(self, table):
        row = table.insert({"id": "7", "title": "X", "year": "1990"})
        assert row == (7, "X", 1990)

    def test_missing_nullable_defaults_to_null(self, table):
        row = table.insert({"id": 1, "title": "X"})
        assert row[2] is None

    def test_not_null_enforced(self, table):
        with pytest.raises(IntegrityError):
            table.insert({"id": 1, "title": None})

    def test_pk_may_not_be_null(self, table):
        with pytest.raises(IntegrityError):
            table.insert({"id": None, "title": "X"})

    def test_duplicate_pk_rejected(self, table):
        table.insert({"id": 1, "title": "X"})
        with pytest.raises(IntegrityError):
            table.insert({"id": 1, "title": "Y"})

    def test_unknown_column_rejected(self, table):
        with pytest.raises(UnknownColumnError):
            table.insert({"id": 1, "title": "X", "oops": 1})

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(IntegrityError):
            table.insert((1, "X"))

    def test_insert_many_counts(self, table):
        count = table.insert_many(
            iter([{"id": i, "title": f"M{i}"} for i in range(5)])
        )
        assert count == 5
        assert len(table) == 5


class TestLookup:
    def test_get_by_scalar_key(self, table):
        table.insert({"id": 1, "title": "Alien"})
        assert table.get(1) == (1, "Alien", None)

    def test_get_by_tuple_key(self, table):
        table.insert({"id": 1, "title": "Alien"})
        assert table.get((1,)) == (1, "Alien", None)

    def test_get_missing_returns_none(self, table):
        assert table.get(99) is None

    def test_column_values_in_row_order(self, table):
        for i in (3, 1, 2):
            table.insert({"id": i, "title": f"M{i}"})
        assert table.column_values("id") == [3, 1, 2]

    def test_distinct_values_excludes_null(self, table):
        table.insert({"id": 1, "title": "A", "year": 1980})
        table.insert({"id": 2, "title": "B", "year": None})
        table.insert({"id": 3, "title": "C", "year": 1980})
        assert table.distinct_values("year") == {1980}

    def test_secondary_index_lookup(self, table):
        table.insert({"id": 1, "title": "A", "year": 1980})
        table.insert({"id": 2, "title": "B", "year": 1980})
        table.insert({"id": 3, "title": "C", "year": 1990})
        assert len(table.lookup("year", 1980)) == 2
        assert table.lookup("year", 2000) == []

    def test_index_stays_fresh_after_insert(self, table):
        table.insert({"id": 1, "title": "A", "year": 1980})
        table.ensure_index("year")
        table.insert({"id": 2, "title": "B", "year": 1980})
        assert len(table.lookup("year", 1980)) == 2

    def test_unknown_column_position(self, table):
        with pytest.raises(UnknownColumnError):
            table.column_position("nope")


class TestCompositeKey:
    def test_composite_uniqueness(self):
        table = Table(
            TableSchema(
                "casting",
                (
                    Column("movie_id", DataType.INTEGER, nullable=False),
                    Column("person_id", DataType.INTEGER, nullable=False),
                ),
                ("movie_id", "person_id"),
            )
        )
        table.insert((1, 1))
        table.insert((1, 2))
        with pytest.raises(IntegrityError):
            table.insert((1, 1))
        assert table.get((1, 2)) == (1, 2)


@given(st.lists(st.integers(min_value=0, max_value=10_000), unique=True, max_size=50))
def test_pk_index_finds_every_inserted_row(keys):
    table = Table(
        TableSchema(
            "t",
            (Column("id", DataType.INTEGER, nullable=False),),
            ("id",),
        )
    )
    for key in keys:
        table.insert((key,))
    for key in keys:
        assert table.get(key) == (key,)
    assert len(table) == len(keys)


class TestTombstones:
    def _seeded(self, table):
        table.insert_many(
            iter(
                [
                    {"id": 1, "title": "Alien", "year": 1979},
                    {"id": 2, "title": "Aliens", "year": 1986},
                    {"id": 3, "title": "Solaris", "year": 1972},
                ]
            )
        )
        return table

    def test_delete_rows_tombstones_without_renumbering(self, table):
        table = self._seeded(table)
        assert table.delete_rows([(2,)]) == 1
        assert len(table) == 2
        assert table.physical_count == 3  # the physical slot survives
        assert table.deleted_count == 1
        assert table.deletion_log == [1]
        assert table.is_deleted(1) and not table.is_deleted(0)
        assert [row[0] for row in table.rows] == [1, 3]
        assert [row[0] for row in table.storage_rows] == [1, 2, 3]
        assert table.get(2) is None

    def test_delete_is_idempotent_and_skips_absent_keys(self, table):
        table = self._seeded(table)
        assert table.delete_rows([(2,), (2,), (99,)]) == 1
        assert table.delete_rows([(2,)]) == 0

    def test_scalar_keys_accepted(self, table):
        table = self._seeded(table)
        assert table.delete_rows([3]) == 1
        assert table.get(3) is None

    def test_deleted_key_can_be_reinserted_at_a_new_position(self, table):
        table = self._seeded(table)
        table.delete_rows([(1,)])
        table.insert({"id": 1, "title": "Alien (restored)", "year": 1979})
        assert table.get(1) == (1, "Alien (restored)", 1979)
        # The old physical slot stays tombstoned; the row lives at the end.
        assert table.physical_count == 4
        assert table.is_deleted(0)
        assert table.storage_rows[3][1] == "Alien (restored)"

    def test_secondary_index_ignores_tombstoned_rows(self, table):
        table = self._seeded(table)
        table.ensure_index("year")
        assert len(table.lookup("year", 1986)) == 1
        table.delete_rows([(2,)])
        assert table.lookup("year", 1986) == []

    def test_live_view_cached_per_version(self, table):
        table = self._seeded(table)
        table.delete_rows([(1,)])
        first = table.rows
        assert table.rows is first  # cached: same version, same list
        table.insert({"id": 4, "title": "Stalker", "year": 1979})
        assert table.rows is not first
        assert [row[0] for row in table.rows] == [2, 3, 4]


class TestPrepareApplySplit:
    def test_prepare_validates_without_applying(self, table):
        normalised = table.prepare_rows([{"id": 1, "title": "X", "year": None}])
        assert normalised == [(1, "X", None)]
        assert len(table) == 0  # nothing applied yet
        table.apply_prepared(normalised)
        assert table.get(1) == (1, "X", None)

    def test_prepare_rejects_batch_internal_duplicates(self, table):
        with pytest.raises(IntegrityError):
            table.prepare_rows(
                [
                    {"id": 1, "title": "A", "year": None},
                    {"id": 1, "title": "B", "year": None},
                ]
            )
        assert len(table) == 0  # all-or-nothing: the valid prefix too

    def test_prepare_rejects_stored_duplicates(self, table):
        table.insert({"id": 1, "title": "A", "year": None})
        with pytest.raises(IntegrityError):
            table.prepare_rows([{"id": 1, "title": "B", "year": None}])

    def test_insert_rows_is_prepare_plus_apply(self, table):
        rows = table.insert_rows(
            [{"id": 1, "title": "A", "year": None}, (2, "B", 1990)]
        )
        assert rows == [(1, "A", None), (2, "B", 1990)]
        assert len(table) == 2
