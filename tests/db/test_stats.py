"""Tests for instance statistics and join mutual information."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import (
    Column,
    ColumnRef,
    Database,
    ForeignKey,
    Schema,
    TableSchema,
    entropy,
    join_statistics,
    profile_column,
)
from repro.db.types import DataType


class TestEntropy:
    def test_empty(self):
        assert entropy([]) == 0.0

    def test_single_value(self):
        assert entropy([10]) == 0.0

    def test_uniform_two(self):
        assert entropy([5, 5]) == pytest.approx(math.log(2))

    def test_skew_lowers_entropy(self):
        assert entropy([9, 1]) < entropy([5, 5])

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=20))
    def test_bounded_by_log_n(self, counts):
        assert -1e-9 <= entropy(counts) <= math.log(len(counts)) + 1e-9


class TestProfile:
    def test_key_column_profile(self, mini_db):
        profile = profile_column(mini_db, ColumnRef("movie", "id"))
        assert profile.row_count == 5
        assert profile.distinct_count == 5
        assert profile.null_count == 0
        assert profile.is_key_like

    def test_non_key_profile(self, mini_db):
        profile = profile_column(mini_db, ColumnRef("movie", "director_id"))
        assert profile.distinct_count == 3
        assert not profile.is_key_like

    def test_null_fraction(self, mini_db):
        mini_db.insert(
            "movie",
            {"id": 9, "title": "N", "year": None, "director_id": 1, "genre_id": 1},
        )
        profile = profile_column(mini_db, ColumnRef("movie", "year"))
        assert profile.null_fraction == pytest.approx(1 / 6)

    def test_sample_is_bounded(self, mini_db):
        profile = profile_column(mini_db, ColumnRef("movie", "title"), sample_size=2)
        assert len(profile.sample) == 2


def two_table_db(pairs: list[tuple[int, int]]) -> tuple[Database, ForeignKey]:
    """R(id) <- S(id, r_id) with S rows given as (id, r_id) pairs."""
    schema = Schema(
        tables=[
            TableSchema(
                "r", (Column("id", DataType.INTEGER, nullable=False),), ("id",)
            ),
            TableSchema(
                "s",
                (
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("r_id", DataType.INTEGER),
                ),
                ("id",),
            ),
        ],
        foreign_keys=[ForeignKey("s", "r_id", "r", "id")],
    )
    db = Database(schema)
    for r_id in {p[1] for p in pairs if p[1] is not None}:
        db.insert("r", {"id": r_id})
    for s_id, r_id in pairs:
        db.insert("s", {"id": s_id, "r_id": r_id})
    return db, schema.foreign_keys[0]


class TestJoinStatistics:
    def test_empty_join_has_max_distance(self):
        db, fk = two_table_db([(1, None), (2, None)])
        stats = join_statistics(db, fk)
        assert stats.join_size == 0
        assert stats.distance == 1.0

    def test_single_pair_is_fully_informative(self):
        db, fk = two_table_db([(1, 10)])
        stats = join_statistics(db, fk)
        assert stats.join_size == 1
        assert stats.distance == 0.0

    def test_bijective_join_is_informative(self):
        db, fk = two_table_db([(i, i * 10) for i in range(1, 9)])
        stats = join_statistics(db, fk)
        assert stats.join_size == 8
        # One-to-one: knowing one side determines the other completely.
        assert stats.mutual_information == pytest.approx(stats.joint_entropy)
        assert stats.distance == pytest.approx(0.0)

    def test_all_to_one_join_is_uninformative(self):
        # Every S row references the same R row: knowing the R side says
        # nothing about which S row was drawn.
        db, fk = two_table_db([(i, 10) for i in range(1, 9)])
        stats = join_statistics(db, fk)
        assert stats.join_size == 8
        assert stats.mutual_information == pytest.approx(0.0)
        assert stats.distance == pytest.approx(1.0)

    def test_distance_orders_by_informativeness(self):
        bijective, fk1 = two_table_db([(i, i) for i in range(1, 9)])
        skewed, fk2 = two_table_db(
            [(1, 1), (2, 1), (3, 1), (4, 1), (5, 2), (6, 2), (7, 3), (8, 4)]
        )
        flat, fk3 = two_table_db([(i, 1) for i in range(1, 9)])
        d_bij = join_statistics(bijective, fk1).distance
        d_skew = join_statistics(skewed, fk2).distance
        d_flat = join_statistics(flat, fk3).distance
        assert d_bij < d_skew < d_flat

    def test_mutual_information_non_negative(self, mini_db):
        for fk in mini_db.schema.foreign_keys:
            stats = join_statistics(mini_db, fk)
            assert stats.mutual_information >= 0.0
            assert 0.0 <= stats.distance <= 1.0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=30),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=1,
            max_size=30,
            unique_by=lambda p: p[0],
        )
    )
    def test_distance_always_in_unit_interval(self, pairs):
        db, fk = two_table_db(pairs)
        stats = join_statistics(db, fk)
        assert 0.0 <= stats.distance <= 1.0
        assert stats.mutual_information <= stats.joint_entropy + 1e-9
