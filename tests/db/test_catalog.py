"""Tests for the catalog."""

from repro.db import Catalog, ColumnRef


class TestFullCatalog:
    def test_profiles_available(self, mini_db):
        catalog = Catalog.from_database(mini_db)
        assert catalog.has_instance
        profile = catalog.profile(ColumnRef("movie", "title"))
        assert profile is not None and profile.row_count == 5

    def test_join_stats_available(self, mini_db):
        catalog = Catalog.from_database(mini_db)
        fk = mini_db.schema.foreign_keys[0]
        stats = catalog.join_stats(fk)
        assert stats is not None and stats.join_size == 5

    def test_caching_returns_same_object(self, mini_db):
        catalog = Catalog.from_database(mini_db)
        ref = ColumnRef("movie", "title")
        assert catalog.profile(ref) is catalog.profile(ref)

    def test_cardinality(self, mini_db):
        catalog = Catalog.from_database(mini_db)
        assert catalog.table_cardinality("movie") == 5

    def test_warm_populates_everything(self, mini_db):
        catalog = Catalog.from_database(mini_db)
        catalog.warm()
        assert len(catalog._profiles) == sum(
            len(t.columns) for t in mini_db.schema.tables
        )
        assert len(catalog._join_stats) == len(mini_db.schema.foreign_keys)


class TestSchemaOnlyCatalog:
    def test_no_instance_data(self, mini_schema):
        catalog = Catalog.schema_only(mini_schema)
        assert not catalog.has_instance
        assert catalog.profile(ColumnRef("movie", "title")) is None
        assert catalog.join_stats(mini_schema.foreign_keys[0]) is None
        assert catalog.table_cardinality("movie") is None

    def test_warm_is_noop(self, mini_schema):
        catalog = Catalog.schema_only(mini_schema)
        catalog.warm()
        assert catalog._profiles == {}

    def test_repr(self, mini_schema):
        assert "schema-only" in repr(Catalog.schema_only(mini_schema))
