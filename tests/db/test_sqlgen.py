"""Tests for SQL rendering."""

from datetime import date

from repro.db import (
    Comparison,
    JoinCondition,
    Predicate,
    SelectQuery,
    TableRef,
    render_ddl,
    render_sql,
)
from repro.db.sqlgen import render_create_table, render_literal


class TestLiterals:
    def test_null(self):
        assert render_literal(None) == "NULL"

    def test_booleans(self):
        assert render_literal(True) == "TRUE"
        assert render_literal(False) == "FALSE"

    def test_numbers(self):
        assert render_literal(42) == "42"
        assert render_literal(2.5) == "2.5"

    def test_string_quoting(self):
        assert render_literal("it's") == "'it''s'"

    def test_date(self):
        assert render_literal(date(2013, 8, 26)) == "DATE '2013-08-26'"


class TestSelect:
    def test_simple_select(self):
        sql = render_sql(SelectQuery(tables=(TableRef.of("movie"),)))
        assert sql == "SELECT * FROM movie"

    def test_alias_rendering(self):
        sql = render_sql(SelectQuery(tables=(TableRef.of("movie", "m"),)))
        assert "movie AS m" in sql

    def test_join_and_predicates(self):
        sql = render_sql(
            SelectQuery(
                tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
                joins=(JoinCondition("m", "director_id", "p", "id"),),
                predicates=(
                    Predicate("p", "name", Comparison.CONTAINS, "Kubrick"),
                ),
                projection=(("m", "title"),),
            )
        )
        assert sql == (
            "SELECT DISTINCT m.title FROM movie AS m, person AS p "
            "WHERE m.director_id = p.id AND LOWER(p.name) LIKE '%kubrick%'"
        )

    def test_contains_lowers_pattern(self):
        sql = render_sql(
            SelectQuery(
                tables=(TableRef.of("t"),),
                predicates=(Predicate("t", "c", Comparison.CONTAINS, "ABC"),),
            )
        )
        assert "'%abc%'" in sql and "LOWER(t.c)" in sql

    def test_like_is_rendered_verbatim(self):
        sql = render_sql(
            SelectQuery(
                tables=(TableRef.of("t"),),
                predicates=(Predicate("t", "c", Comparison.LIKE, "A_%"),),
            )
        )
        assert "t.c LIKE 'A_%'" in sql

    def test_comparison(self):
        sql = render_sql(
            SelectQuery(
                tables=(TableRef.of("t"),),
                predicates=(Predicate("t", "year", Comparison.GE, 1980),),
            )
        )
        assert "t.year >= 1980" in sql

    def test_limit(self):
        sql = render_sql(SelectQuery(tables=(TableRef.of("t"),), limit=5))
        assert sql.endswith("LIMIT 5")

    def test_str_dunder_matches_render(self):
        query = SelectQuery(tables=(TableRef.of("movie"),))
        assert str(query) == render_sql(query)


class TestDDL:
    def test_create_table(self, mini_schema):
        ddl = render_create_table(mini_schema.table("movie"))
        assert "CREATE TABLE movie" in ddl
        assert "id INTEGER NOT NULL" in ddl
        assert "PRIMARY KEY (id)" in ddl

    def test_full_ddl_includes_fks(self, mini_schema):
        ddl = render_ddl(mini_schema)
        assert ddl.count("CREATE TABLE") == 3
        assert "ALTER TABLE movie ADD FOREIGN KEY (director_id)" in ddl
