"""Tests for the full-text inverted index."""

from repro.db import ColumnRef, FullTextIndex
from repro.db.fulltext import tokenize_value


class TestTokenizeValue:
    def test_null_gives_nothing(self):
        assert tokenize_value(None) == []

    def test_lowercases_and_splits(self):
        assert tokenize_value("A Space-Odyssey") == ["a", "space", "odyssey"]

    def test_numbers_are_tokens(self):
        assert tokenize_value(1968) == ["1968"]


class TestIndex:
    def test_vocabulary(self, mini_db):
        index = FullTextIndex(mini_db)
        assert "kubrick" in index
        assert "odyssey" in index
        assert "zzz" not in index
        assert index.vocabulary_size > 10

    def test_attribute_scores_target_right_column(self, mini_db):
        index = FullTextIndex(mini_db)
        scores = index.attribute_scores("kubrick")
        assert set(scores) == {ColumnRef("person", "name")}
        assert scores[ColumnRef("person", "name")] > 0

    def test_numeric_columns_are_indexed(self, mini_db):
        index = FullTextIndex(mini_db)
        scores = index.attribute_scores("1968")
        assert ColumnRef("movie", "year") in scores

    def test_term_spread_across_attributes(self, mini_db):
        # "the" appears in several titles only.
        index = FullTextIndex(mini_db)
        scores = index.attribute_scores("the")
        assert ColumnRef("movie", "title") in scores

    def test_score_zero_for_absent(self, mini_db):
        index = FullTextIndex(mini_db)
        assert index.score("nothing", ColumnRef("movie", "title")) == 0.0

    def test_matching_row_positions(self, mini_db):
        index = FullTextIndex(mini_db)
        positions = index.matching_row_positions(
            "kubrick", ColumnRef("person", "name")
        )
        assert positions == [0]

    def test_selectivity(self, mini_db):
        index = FullTextIndex(mini_db)
        ref = ColumnRef("movie", "title")
        assert index.selectivity("the", ref) == 2 / 5
        assert index.selectivity("zzz", ref) == 0.0

    def test_more_selective_term_scores_higher(self, mini_db):
        index = FullTextIndex(mini_db)
        ref = ColumnRef("movie", "title")
        # "odyssey" appears in 1/5 titles, "the" in 2/5 — idf equal or lower
        # for the more common term, so tf dominates.
        assert index.score("the", ref) > index.score("odyssey", ref)

    def test_fields_cover_all_columns(self, mini_db):
        index = FullTextIndex(mini_db)
        assert len(index.fields()) == sum(
            len(t.columns) for t in mini_db.schema.tables
        )


class TestRefresh:
    """The index stays correct under row inserts (mutation satellite)."""

    def test_reads_see_rows_inserted_after_build(self, mini_db):
        index = FullTextIndex(mini_db)
        assert "akerman" not in index
        mini_db.insert("person", {"id": 9, "name": "Chantal Akerman"})
        # no explicit refresh: reads lazily notice the stale version
        assert "akerman" in index
        assert index.matching_row_positions(
            "akerman", ColumnRef("person", "name")
        ) == [3]

    def test_incremental_equals_full_rebuild(self, mini_db):
        incremental = FullTextIndex(mini_db)
        incremental.attribute_scores("kubrick")  # force the initial build
        mini_db.insert("person", {"id": 9, "name": "Chantal Akerman"})
        mini_db.insert(
            "movie",
            {
                "id": 9,
                "title": "The Kubrick Documentary",
                "year": 2001,
                "director_id": 9,
                "genre_id": 3,
            },
        )
        rebuilt = FullTextIndex(mini_db)  # built fresh over the final state
        for keyword in ("kubrick", "akerman", "documentary", "2001", "the"):
            assert incremental.attribute_scores(
                keyword
            ) == rebuilt.attribute_scores(keyword), keyword
            for ref in (ColumnRef("person", "name"), ColumnRef("movie", "title")):
                assert incremental.matching_row_positions(
                    keyword, ref
                ) == rebuilt.matching_row_positions(keyword, ref)
                assert incremental.selectivity(
                    keyword, ref
                ) == rebuilt.selectivity(keyword, ref)

    def test_selectivity_denominator_tracks_inserts(self, mini_db):
        index = FullTextIndex(mini_db)
        ref = ColumnRef("movie", "title")
        assert index.selectivity("the", ref) == 2 / 5
        mini_db.insert(
            "movie",
            {"id": 9, "title": "The Return", "year": 2002, "director_id": 1,
             "genre_id": 1},
        )
        assert index.selectivity("the", ref) == 3 / 6

    def test_explicit_refresh_is_idempotent(self, mini_db):
        index = FullTextIndex(mini_db)
        before = index.attribute_scores("kubrick")
        index.refresh()
        index.refresh()
        assert index.attribute_scores("kubrick") == before


class TestDeltaLayer:
    """Mutations after a seal layer a write delta over the CSR snapshot
    (live-mutation tentpole): reads stay bit-identical to a rebuild."""

    KEYWORDS = ("kubrick", "odyssey", "the", "2001", "akerman")

    def _assert_matches_rebuild(self, index, db):
        rebuilt = FullTextIndex(db)
        for keyword in self.KEYWORDS:
            assert index.attribute_scores(keyword) == rebuilt.attribute_scores(
                keyword
            ), keyword
            for ref in (ColumnRef("person", "name"), ColumnRef("movie", "title")):
                assert index.matching_row_positions(
                    keyword, ref
                ) == rebuilt.matching_row_positions(keyword, ref)
                assert index.selectivity(keyword, ref) == rebuilt.selectivity(
                    keyword, ref
                )

    def test_insert_after_seal_layers_a_delta(self, mini_db):
        index = FullTextIndex(mini_db)
        index.warm()  # seal the columnar snapshot
        assert index.delta_terms == frozenset()
        mini_db.insert("person", {"id": 9, "name": "Chantal Akerman"})
        index.refresh()
        assert "akerman" in index.delta_terms
        self._assert_matches_rebuild(index, mini_db)

    def test_delete_after_seal_layers_a_delta(self, mini_db):
        index = FullTextIndex(mini_db)
        index.warm()
        mini_db.table("person").delete_rows([(1,)])
        index.refresh()
        assert index.delta_terms  # the deleted row's terms are layered
        self._assert_matches_rebuild(index, mini_db)

    def test_merge_reseals_with_identical_scores(self, mini_db):
        index = FullTextIndex(mini_db)
        index.warm()
        mini_db.insert("person", {"id": 9, "name": "Chantal Akerman"})
        mini_db.table("movie").delete_rows([(2,)])
        index.refresh()
        before = {k: index.attribute_scores(k) for k in self.KEYWORDS}
        index.merge()
        assert index.delta_terms == frozenset()
        for keyword in self.KEYWORDS:
            assert index.attribute_scores(keyword) == before[keyword]
        self._assert_matches_rebuild(index, mini_db)

    def test_save_seals_a_live_delta_first(self, mini_db, tmp_path):
        index = FullTextIndex(mini_db)
        index.warm()
        mini_db.insert("person", {"id": 9, "name": "Chantal Akerman"})
        index.refresh()
        assert index.delta_terms
        artifact = tmp_path / "index.npz"
        index.save(artifact, generation=7)
        assert index.delta_terms == frozenset()  # save sealed the delta
        assert FullTextIndex.peek_generation(artifact) == 7
        loaded = FullTextIndex.load(artifact, mini_db)
        for keyword in self.KEYWORDS:
            assert loaded.attribute_scores(keyword) == index.attribute_scores(
                keyword
            )
