"""Tests for the full-text inverted index."""

from repro.db import ColumnRef, FullTextIndex
from repro.db.fulltext import tokenize_value


class TestTokenizeValue:
    def test_null_gives_nothing(self):
        assert tokenize_value(None) == []

    def test_lowercases_and_splits(self):
        assert tokenize_value("A Space-Odyssey") == ["a", "space", "odyssey"]

    def test_numbers_are_tokens(self):
        assert tokenize_value(1968) == ["1968"]


class TestIndex:
    def test_vocabulary(self, mini_db):
        index = FullTextIndex(mini_db)
        assert "kubrick" in index
        assert "odyssey" in index
        assert "zzz" not in index
        assert index.vocabulary_size > 10

    def test_attribute_scores_target_right_column(self, mini_db):
        index = FullTextIndex(mini_db)
        scores = index.attribute_scores("kubrick")
        assert set(scores) == {ColumnRef("person", "name")}
        assert scores[ColumnRef("person", "name")] > 0

    def test_numeric_columns_are_indexed(self, mini_db):
        index = FullTextIndex(mini_db)
        scores = index.attribute_scores("1968")
        assert ColumnRef("movie", "year") in scores

    def test_term_spread_across_attributes(self, mini_db):
        # "the" appears in several titles only.
        index = FullTextIndex(mini_db)
        scores = index.attribute_scores("the")
        assert ColumnRef("movie", "title") in scores

    def test_score_zero_for_absent(self, mini_db):
        index = FullTextIndex(mini_db)
        assert index.score("nothing", ColumnRef("movie", "title")) == 0.0

    def test_matching_row_positions(self, mini_db):
        index = FullTextIndex(mini_db)
        positions = index.matching_row_positions(
            "kubrick", ColumnRef("person", "name")
        )
        assert positions == [0]

    def test_selectivity(self, mini_db):
        index = FullTextIndex(mini_db)
        ref = ColumnRef("movie", "title")
        assert index.selectivity("the", ref) == 2 / 5
        assert index.selectivity("zzz", ref) == 0.0

    def test_more_selective_term_scores_higher(self, mini_db):
        index = FullTextIndex(mini_db)
        ref = ColumnRef("movie", "title")
        # "odyssey" appears in 1/5 titles, "the" in 2/5 — idf equal or lower
        # for the more common term, so tf dominates.
        assert index.score("the", ref) > index.score("odyssey", ref)

    def test_fields_cover_all_columns(self, mini_db):
        index = FullTextIndex(mini_db)
        assert len(index.fields()) == sum(
            len(t.columns) for t in mini_db.schema.tables
        )
