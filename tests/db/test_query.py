"""Tests for the logical query model."""

import pytest

from repro.db import Comparison, JoinCondition, Predicate, SelectQuery, TableRef
from repro.db.query import with_limit
from repro.errors import QueryError


def movie_person_query(**overrides) -> SelectQuery:
    kwargs = dict(
        tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
        joins=(JoinCondition("m", "director_id", "p", "id"),),
        predicates=(Predicate("p", "name", Comparison.CONTAINS, "kubrick"),),
        projection=(("m", "title"),),
    )
    kwargs.update(overrides)
    return SelectQuery(**kwargs)


class TestValidation:
    def test_empty_from_rejected(self):
        with pytest.raises(QueryError):
            SelectQuery(tables=())

    def test_duplicate_alias_rejected(self):
        with pytest.raises(QueryError):
            SelectQuery(tables=(TableRef.of("a"), TableRef.of("b", "a")))

    def test_join_alias_must_exist(self):
        with pytest.raises(QueryError):
            movie_person_query(
                joins=(JoinCondition("m", "x", "zz", "id"),)
            )

    def test_predicate_alias_must_exist(self):
        with pytest.raises(QueryError):
            movie_person_query(
                predicates=(Predicate("zz", "name", Comparison.EQ, 1),)
            )

    def test_projection_alias_must_exist(self):
        with pytest.raises(QueryError):
            movie_person_query(projection=(("zz", "title"),))


class TestStructure:
    def test_aliases(self):
        assert movie_person_query().aliases == ("m", "p")

    def test_table_of(self):
        query = movie_person_query()
        assert query.table_of("m") == "movie"
        with pytest.raises(QueryError):
            query.table_of("zz")

    def test_table_names(self):
        assert movie_person_query().table_names() == frozenset(
            {"movie", "person"}
        )

    def test_self_join_table_names_collapse(self):
        query = SelectQuery(
            tables=(TableRef.of("person", "p1"), TableRef.of("person", "p2")),
            joins=(JoinCondition("p1", "id", "p2", "id"),),
        )
        assert query.table_names() == frozenset({"person"})

    def test_joined_column_refs(self):
        refs = movie_person_query().joined_column_refs()
        assert len(refs) == 2

    def test_with_limit(self):
        assert with_limit(movie_person_query(), 5).limit == 5


class TestSignature:
    def test_matches_ignores_join_direction(self):
        left = movie_person_query()
        right = movie_person_query(
            joins=(JoinCondition("p", "id", "m", "director_id"),)
        )
        assert left.matches(right)

    def test_matches_ignores_projection(self):
        assert movie_person_query().matches(
            movie_person_query(projection=(("p", "name"),))
        )

    def test_matches_ignores_value_case(self):
        other = movie_person_query(
            predicates=(Predicate("p", "name", Comparison.CONTAINS, "KUBRICK"),)
        )
        assert movie_person_query().matches(other)

    def test_different_predicate_breaks_match(self):
        other = movie_person_query(
            predicates=(Predicate("p", "name", Comparison.CONTAINS, "scott"),)
        )
        assert not movie_person_query().matches(other)

    def test_different_tables_break_match(self):
        other = SelectQuery(tables=(TableRef.of("movie", "m"),))
        assert not movie_person_query().matches(other)

    def test_different_operator_breaks_match(self):
        other = movie_person_query(
            predicates=(Predicate("p", "name", Comparison.EQ, "kubrick"),)
        )
        assert not movie_person_query().matches(other)

    def test_signature_is_hashable(self):
        assert {movie_person_query().signature()}
