"""Tests for the schema model."""

import pytest

from repro.db import Column, ColumnRef, ForeignKey, Schema, TableSchema
from repro.db.types import DataType
from repro.errors import SchemaError, UnknownColumnError, UnknownTableError


def simple_table(name: str = "t") -> TableSchema:
    return TableSchema(
        name,
        (
            Column("id", DataType.INTEGER, nullable=False),
            Column("label", DataType.TEXT),
        ),
        ("id",),
    )


class TestColumnRef:
    def test_str(self):
        assert str(ColumnRef("movie", "title")) == "movie.title"

    def test_parse_roundtrip(self):
        ref = ColumnRef.parse("movie.title")
        assert ref == ColumnRef("movie", "title")

    def test_parse_rejects_missing_dot(self):
        with pytest.raises(SchemaError):
            ColumnRef.parse("movie")

    def test_parse_rejects_empty_parts(self):
        with pytest.raises(SchemaError):
            ColumnRef.parse(".title")

    def test_hashable_and_equal(self):
        assert {ColumnRef("a", "b")} == {ColumnRef("a", "b")}


class TestColumn:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("not a name", DataType.TEXT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.TEXT)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (Column("a", DataType.TEXT), Column("a", DataType.TEXT)),
                ("a",),
            )

    def test_missing_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", DataType.TEXT),), ())

    def test_primary_key_must_exist(self):
        with pytest.raises(UnknownColumnError):
            TableSchema("t", (Column("a", DataType.TEXT),), ("b",))

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (), ("id",))

    def test_column_lookup(self):
        table = simple_table()
        assert table.column("id").dtype is DataType.INTEGER
        with pytest.raises(UnknownColumnError):
            table.column("absent")

    def test_key_helpers(self):
        table = simple_table()
        assert table.is_key_column("id")
        assert not table.is_key_column("label")
        assert [c.name for c in table.non_key_columns()] == ["label"]

    def test_column_names_ordered(self):
        assert simple_table().column_names == ("id", "label")


class TestSchema:
    def test_duplicate_tables_rejected(self):
        with pytest.raises(SchemaError):
            Schema([simple_table("a"), simple_table("a")])

    def test_fk_to_unknown_table_rejected(self):
        with pytest.raises(UnknownTableError):
            Schema(
                [simple_table("a")],
                [ForeignKey("a", "label", "missing", "id")],
            )

    def test_fk_to_unknown_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            Schema(
                [simple_table("a"), simple_table("b")],
                [ForeignKey("a", "nope", "b", "id")],
            )

    def test_fk_must_reference_primary_key(self):
        with pytest.raises(SchemaError):
            Schema(
                [simple_table("a"), simple_table("b")],
                [ForeignKey("a", "label", "b", "label")],
            )

    def test_duplicate_fk_rejected(self):
        fk = ForeignKey("a", "label", "b", "id")
        with pytest.raises(SchemaError):
            Schema([simple_table("a"), simple_table("b")], [fk, fk])

    def test_adjacency(self, mini_schema):
        assert mini_schema.adjacent_tables("movie") == {"person", "genre"}
        assert mini_schema.adjacent_tables("person") == {"movie"}
        assert mini_schema.tables_are_adjacent("movie", "genre")
        assert not mini_schema.tables_are_adjacent("person", "genre")

    def test_fk_direction_helpers(self, mini_schema):
        assert len(mini_schema.foreign_keys_of("movie")) == 2
        assert len(mini_schema.foreign_keys_into("person")) == 1
        assert mini_schema.foreign_keys_of("person") == ()

    def test_column_refs_enumerates_all(self, mini_schema):
        refs = list(mini_schema.column_refs())
        assert ColumnRef("movie", "title") in refs
        assert len(refs) == sum(len(t.columns) for t in mini_schema.tables)

    def test_contains_and_len(self, mini_schema):
        assert "movie" in mini_schema
        assert "nope" not in mini_schema
        assert len(mini_schema) == 3

    def test_unknown_table_lookup(self, mini_schema):
        with pytest.raises(UnknownTableError):
            mini_schema.table("nope")

    def test_join_edges(self, mini_schema):
        edges = mini_schema.join_edges()
        assert (
            ColumnRef("movie", "director_id"),
            ColumnRef("person", "id"),
        ) in edges
