"""Tests for column data types and value coercion."""

from datetime import date, datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.types import DataType, coerce, infer_type, is_null
from repro.errors import SchemaError


class TestIsNull:
    def test_none_is_null(self):
        assert is_null(None)

    def test_empty_string_is_null(self):
        assert is_null("")

    def test_zero_is_not_null(self):
        assert not is_null(0)

    def test_false_is_not_null(self):
        assert not is_null(False)

    def test_whitespace_is_not_null(self):
        assert not is_null(" ")


class TestCoerce:
    def test_null_passes_through_every_type(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None
            assert coerce("", dtype) is None

    def test_integer_from_string(self):
        assert coerce("42", DataType.INTEGER) == 42
        assert coerce(" -7 ", DataType.INTEGER) == -7

    def test_integer_from_whole_float(self):
        assert coerce(3.0, DataType.INTEGER) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(SchemaError):
            coerce(3.5, DataType.INTEGER)

    def test_integer_rejects_word(self):
        with pytest.raises(SchemaError):
            coerce("hello", DataType.INTEGER)

    def test_float_from_string(self):
        assert coerce("2.5", DataType.FLOAT) == 2.5
        assert coerce("1e3", DataType.FLOAT) == 1000.0

    def test_float_from_int(self):
        assert coerce(2, DataType.FLOAT) == 2.0

    def test_text_from_number(self):
        assert coerce(42, DataType.TEXT) == "42"

    def test_text_passthrough(self):
        assert coerce("abc", DataType.TEXT) == "abc"

    def test_boolean_literals(self):
        for literal in ("true", "T", "yes", "1", "y"):
            assert coerce(literal, DataType.BOOLEAN) is True
        for literal in ("false", "F", "no", "0", "n"):
            assert coerce(literal, DataType.BOOLEAN) is False

    def test_boolean_from_int(self):
        assert coerce(1, DataType.BOOLEAN) is True
        assert coerce(0, DataType.BOOLEAN) is False

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(SchemaError):
            coerce(2, DataType.BOOLEAN)

    def test_date_from_iso_string(self):
        assert coerce("2013-08-26", DataType.DATE) == date(2013, 8, 26)

    def test_date_from_datetime(self):
        assert coerce(datetime(2013, 8, 26, 12, 0), DataType.DATE) == date(
            2013, 8, 26
        )

    def test_date_rejects_garbage(self):
        with pytest.raises(SchemaError):
            coerce("not-a-date", DataType.DATE)

    def test_date_rejects_out_of_range(self):
        with pytest.raises(SchemaError):
            coerce("2013-13-45", DataType.DATE)

    @given(st.integers(min_value=-(10**12), max_value=10**12))
    def test_integer_roundtrip_through_text(self, value):
        assert coerce(coerce(value, DataType.TEXT), DataType.INTEGER) == value


class TestInferType:
    def test_all_null_defaults_to_text(self):
        assert infer_type([None, "", None]) is DataType.TEXT

    def test_integers(self):
        assert infer_type(["1", "2", "3"]) is DataType.INTEGER

    def test_floats(self):
        assert infer_type(["1.5", "2"]) is DataType.FLOAT

    def test_booleans(self):
        assert infer_type(["true", "false"]) is DataType.BOOLEAN

    def test_dates(self):
        assert infer_type(["2020-01-01", "1999-12-31"]) is DataType.DATE

    def test_mixed_falls_back_to_text(self):
        assert infer_type(["1", "hello"]) is DataType.TEXT

    def test_nulls_are_ignored(self):
        assert infer_type([None, "7", ""]) is DataType.INTEGER
