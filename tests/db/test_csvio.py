"""Tests for CSV import/export."""

import pytest

from repro.db.csvio import dump_database, load_database
from repro.errors import SchemaError


class TestRoundtrip:
    def test_dump_and_load(self, mini_db, tmp_path):
        paths = dump_database(mini_db, tmp_path)
        assert len(paths) == 3
        loaded = load_database(mini_db.schema, tmp_path)
        for table in mini_db.tables:
            assert loaded.table(table.name).rows == table.rows

    def test_nulls_roundtrip(self, mini_db, tmp_path):
        mini_db.insert(
            "movie",
            {"id": 9, "title": "N", "year": None, "director_id": 1, "genre_id": 1},
        )
        dump_database(mini_db, tmp_path)
        loaded = load_database(mini_db.schema, tmp_path)
        assert loaded.table("movie").get(9)[2] is None

    def test_missing_file_rejected(self, mini_db, tmp_path):
        dump_database(mini_db, tmp_path)
        (tmp_path / "genre.csv").unlink()
        with pytest.raises(SchemaError):
            load_database(mini_db.schema, tmp_path)

    def test_header_mismatch_rejected(self, mini_db, tmp_path):
        dump_database(mini_db, tmp_path)
        (tmp_path / "genre.csv").write_text("id,wrong\n1,x\n")
        with pytest.raises(SchemaError):
            load_database(mini_db.schema, tmp_path)

    def test_empty_file_rejected(self, mini_db, tmp_path):
        dump_database(mini_db, tmp_path)
        (tmp_path / "genre.csv").write_text("")
        with pytest.raises(SchemaError):
            load_database(mini_db.schema, tmp_path)

    def test_integrity_checked_on_load(self, mini_db, tmp_path):
        dump_database(mini_db, tmp_path)
        # Break referential integrity in the CSV.
        path = tmp_path / "movie.csv"
        content = path.read_text().splitlines()
        content.append("99,Ghost,2000,5.0,442,1")
        # mini schema has 5 columns; adjust row to the real arity.
        header = content[0].split(",")
        content[-1] = ",".join(["99", "Ghost", "2000", "442", "1"][: len(header)])
        path.write_text("\n".join(content) + "\n")
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            load_database(mini_db.schema, tmp_path)
