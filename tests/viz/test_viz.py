"""Tests for ASCII rendering and DOT export."""

from repro.viz import (
    graph_to_dot,
    render_explanation,
    render_ranking,
    render_results,
    render_tree,
    schema_to_dot,
    tree_to_dot,
)


def top_explanation(engine, query: str):
    explanations = engine.search(query, k=3)
    assert explanations
    return explanations


class TestRender:
    def test_render_tree_marks_terminals(self, mini_engine):
        explanations = top_explanation(mini_engine, "kubrick movies")
        tree = explanations[0].interpretation.tree
        text = render_tree(tree)
        assert "[movie]" in text and "[person]" in text
        assert "*" in text  # terminals marked

    def test_render_explanation_contains_sql(self, mini_engine):
        explanations = top_explanation(mini_engine, "kubrick movies")
        text = render_explanation(explanations[0], rank=1)
        assert text.startswith("#1 ")
        assert "SQL: SELECT" in text
        assert "'kubrick' -> domain:person.name" in text

    def test_render_ranking_numbers_results(self, mini_engine):
        explanations = top_explanation(mini_engine, "kubrick movies")
        text = render_ranking(explanations)
        assert "#1 " in text
        if len(explanations) > 1:
            assert "#2 " in text

    def test_render_results_tabulates(self, mini_engine):
        explanations = top_explanation(mini_engine, "kubrick movies")
        results = mini_engine.wrapper.execute(explanations[0].query)
        text = render_results(results, limit=1)
        assert "|" in text
        assert "more rows" in text or len(results) <= 1


class TestDot:
    def test_schema_to_dot(self, mini_schema):
        dot = schema_to_dot(mini_schema)
        assert dot.startswith("digraph")
        assert "movie" in dot and "->" in dot

    def test_graph_to_dot(self, mini_engine):
        dot = graph_to_dot(mini_engine.schema_graph)
        assert dot.startswith("graph")
        assert "movie.id" in dot

    def test_graph_highlight(self, mini_engine):
        explanations = top_explanation(mini_engine, "kubrick movies")
        tree = explanations[0].interpretation.tree
        dot = graph_to_dot(mini_engine.schema_graph, highlight=tree)
        assert "gold" in dot and "red" in dot

    def test_tree_to_dot(self, mini_engine):
        explanations = top_explanation(mini_engine, "kubrick movies")
        dot = tree_to_dot(explanations[0].interpretation.tree)
        assert dot.startswith("graph join_tree")
        assert "--" in dot
