"""Tests for metrics, the harness and reporting."""

import pytest

from repro.db import Comparison, Predicate, SelectQuery, TableRef
from repro.eval import (
    evaluate,
    format_results,
    format_table,
    hit_list,
    mean,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
    success_at_k,
)


class TestMetrics:
    def test_success_at_k(self):
        hits = [False, True, False]
        assert success_at_k(hits, 1) == 0.0
        assert success_at_k(hits, 2) == 1.0
        assert success_at_k([], 3) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank([True]) == 1.0
        assert reciprocal_rank([False, True]) == 0.5
        assert reciprocal_rank([False, False]) == 0.0

    def test_precision_at_k(self):
        assert precision_at_k([True, False, True, False], 4) == 0.5
        assert precision_at_k([], 4) == 0.0
        assert precision_at_k([True], 0) == 0.0

    def test_ndcg(self):
        assert ndcg_at_k([True], 10) == 1.0
        assert 0.0 < ndcg_at_k([False, True], 10) < 1.0
        assert ndcg_at_k([False, False], 10) == 0.0

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_hit_list(self):
        gold = SelectQuery(
            tables=(TableRef.of("movie"),),
            predicates=(Predicate("movie", "title", Comparison.CONTAINS, "x"),),
        )
        other = SelectQuery(tables=(TableRef.of("movie"),))
        assert hit_list([other, gold], gold) == [False, True]


class TestHarness:
    def test_quest_engine_on_workload(self, imdb_db, imdb_workload):
        from repro.core import Quest
        from repro.eval import quest_engine
        from repro.wrapper import FullAccessWrapper

        from tests.conftest import backend_for

        engine = Quest(FullAccessWrapper(backend_for(imdb_db)))
        result = evaluate(
            quest_engine(engine), imdb_workload, k=10, engine_name="quest"
        )
        assert result.query_count == len(imdb_workload)
        assert result.success_at(10) >= 0.7
        assert 0.0 <= result.mrr <= 1.0
        summary = result.summary()
        assert set(summary) == {
            "queries",
            "success@1",
            "success@3",
            "success@10",
            "mrr",
            "ndcg@10",
            "mean_seconds",
        }

    def test_failing_engine_counts_as_misses(self, imdb_workload):
        def broken(text, k):
            raise RuntimeError("boom")

        result = evaluate(broken, imdb_workload, k=5)
        assert result.success_at(5) == 0.0
        assert result.query_count == len(imdb_workload)

    def test_outcome_rank(self, imdb_workload):
        def const(text, k):
            return []

        result = evaluate(const, imdb_workload)
        assert all(o.rank is None for o in result.outcomes)

    def test_module_ablation_engines_run(self, imdb_db, imdb_workload):
        from repro.core import Quest
        from repro.eval import backward_only_engine, forward_only_engine
        from repro.wrapper import FullAccessWrapper

        from tests.conftest import backend_for

        engine = Quest(FullAccessWrapper(backend_for(imdb_db)))
        for adapter in (
            forward_only_engine(engine, "apriori"),
            backward_only_engine(engine),
        ):
            result = evaluate(adapter, imdb_workload.subset(4), k=5)
            assert result.query_count == 4

    def test_forward_only_feedback_without_model(self, imdb_db, imdb_workload):
        from repro.core import Quest
        from repro.eval import forward_only_engine
        from repro.wrapper import FullAccessWrapper

        from tests.conftest import backend_for

        engine = Quest(FullAccessWrapper(backend_for(imdb_db)))
        adapter = forward_only_engine(engine, "feedback")
        result = evaluate(adapter, imdb_workload.subset(2), k=5)
        assert result.success_at(5) == 0.0


class TestReport:
    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["a", 0.5], ["b", 1.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.500" in text and "1.000" in text

    def test_format_results(self):
        text = format_results(
            [{"mrr": 0.5}, {"mrr": 0.7}], ["quest", "discover"]
        )
        assert "quest" in text and "discover" in text

    def test_format_results_empty(self):
        assert format_results([], []) == ""
