"""questlint CLI: suppressions, baseline round-trip, JSON schema, exits."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis import analyze_paths, main
from repro.analysis.baseline import Baseline

BAD_SOURCE = (
    "import threading\n"
    "\n"
    "class Holder:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
)

SUPPRESSED_SOURCE = (
    "import threading\n"
    "\n"
    "class Holder:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()"
    "  # questlint: disable=fork-safety  # test-only holder, never forked\n"
)

FILE_SUPPRESSED_SOURCE = (
    "# questlint: disable-file=fork-safety\n" + BAD_SOURCE
)


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_violation_exits_nonzero(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    code, text = run_cli(str(tmp_path), "--baseline", str(tmp_path / "b.json"))
    assert code == 1
    assert "[fork-safety]" in text
    assert "bad.py:5" in text


def test_inline_suppression_waives_finding(tmp_path):
    (tmp_path / "ok.py").write_text(SUPPRESSED_SOURCE)
    code, text = run_cli(str(tmp_path), "--baseline", str(tmp_path / "b.json"))
    assert code == 0
    assert "1 suppressed" in text


def test_file_wide_suppression_waives_finding(tmp_path):
    (tmp_path / "ok.py").write_text(FILE_SUPPRESSED_SOURCE)
    code, _ = run_cli(str(tmp_path), "--baseline", str(tmp_path / "b.json"))
    assert code == 0


def test_suppressing_a_different_rule_does_not_waive(tmp_path):
    source = BAD_SOURCE.replace(
        "threading.Lock()",
        "threading.Lock()  # questlint: disable=cache-revision",
    )
    (tmp_path / "bad.py").write_text(source)
    code, _ = run_cli(str(tmp_path), "--baseline", str(tmp_path / "b.json"))
    assert code == 1


def test_baseline_round_trip(tmp_path):
    """--write-baseline parks the findings; the next run exits 0 and
    reports them as baselined; fixing the code leaves a shrinkable file."""
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    baseline = tmp_path / "questlint-baseline.json"

    code, text = run_cli(
        str(tmp_path), "--baseline", str(baseline), "--write-baseline"
    )
    assert code == 0
    assert "wrote 1 new entry" in text
    parked = Baseline.load(baseline)
    assert len(parked.entries) == 1
    (entry,) = parked.entries.values()
    assert entry["rule"] == "fork-safety"
    assert "justification" in entry

    code, text = run_cli(str(tmp_path), "--baseline", str(baseline))
    assert code == 0
    assert "1 baselined" in text


def test_baseline_survives_line_drift(tmp_path):
    """Fingerprints exclude line numbers, so shifting code above a parked
    finding must not resurrect it."""
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    baseline = tmp_path / "b.json"
    run_cli(str(tmp_path), "--baseline", str(baseline), "--write-baseline")

    bad.write_text("# a new leading comment shifts every line\n" + BAD_SOURCE)
    code, _ = run_cli(str(tmp_path), "--baseline", str(baseline))
    assert code == 0


def test_json_output_schema(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    code, text = run_cli(
        str(tmp_path), "--json", "--baseline", str(tmp_path / "b.json")
    )
    assert code == 1
    payload = json.loads(text)
    assert payload["schema_version"] == 1
    assert payload["exit_code"] == 1
    assert payload["files_checked"] == 1
    assert payload["counts"]["fork-safety"] == 1
    assert "fork-safety" in payload["rules"]
    (finding,) = payload["findings"]
    assert set(finding) >= {
        "rule", "path", "line", "col", "message", "fingerprint",
    }
    assert finding["rule"] == "fork-safety"
    assert len(finding["fingerprint"]) == 16


def test_unknown_rule_exits_two(tmp_path):
    code, text = run_cli(str(tmp_path), "--rules", "no-such-rule")
    assert code == 2
    assert "unknown rules: no-such-rule" in text


def test_rules_filter_restricts_checkers(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    code, _ = run_cli(
        str(tmp_path), "--rules", "cache-revision",
        "--baseline", str(tmp_path / "b.json"),
    )
    assert code == 0  # the fork-safety checker never ran


def test_list_rules_names_all_six():
    code, text = run_cli("--list-rules")
    assert code == 0
    for rule in (
        "fork-safety", "lock-order", "cache-revision",
        "journal-discipline", "fault-points", "clock-discipline",
    ):
        assert rule in text


def test_syntax_error_is_a_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    result = analyze_paths([tmp_path], root=tmp_path)
    assert result.exit_code == 1
    assert result.findings[0].rule == "syntax"


def test_clean_tree_reports_counts(tmp_path):
    (tmp_path / "fine.py").write_text("x = 1\n")
    code, text = run_cli(str(tmp_path), "--baseline", str(tmp_path / "b.json"))
    assert code == 0
    assert "clean" in text and "1 file" in text


def test_committed_baseline_is_empty():
    """The repo ships an empty baseline: every finding is fixed or carries
    an inline justification, and the ratchet starts at zero."""
    path = Path(__file__).resolve().parents[2] / "questlint-baseline.json"
    baseline = Baseline.load(path)
    assert baseline.entries == {}
