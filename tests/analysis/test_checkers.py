"""Fixture-driven good/bad snippets for every questlint checker."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.checkers import (
    CacheRevisionChecker,
    ClockDisciplineChecker,
    FaultPointChecker,
    ForkSafetyChecker,
    JournalDisciplineChecker,
    LockOrderChecker,
)


def run_checker(tmp_path: Path, checker, files: dict[str, str]):
    """Write *files* under tmp_path, analyse them with one checker."""
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    result = analyze_paths([tmp_path], checkers=[checker], root=tmp_path)
    return result.findings


# -- fork-safety -----------------------------------------------------------


BAD_FORK = """
    import threading

    class Holder:
        def __init__(self):
            self._lock = threading.Lock()
"""

GOOD_FORK = """
    import threading
    from repro.forksafe import register_lock_holder

    def _reset(holder):
        holder._lock = threading.Lock()

    class Holder:
        def __init__(self):
            self._lock = threading.Lock()
            register_lock_holder(self, _reset)
"""


def test_fork_safety_flags_unregistered_lock(tmp_path):
    findings = run_checker(tmp_path, ForkSafetyChecker(), {"bad.py": BAD_FORK})
    assert len(findings) == 1
    assert findings[0].rule == "fork-safety"
    assert "Holder._lock" in findings[0].message


def test_fork_safety_accepts_registered_lock(tmp_path):
    assert run_checker(tmp_path, ForkSafetyChecker(), {"good.py": GOOD_FORK}) == []


def test_fork_safety_ignores_module_level_locks(tmp_path):
    source = """
        import threading
        _LOCK = threading.Lock()
    """
    assert run_checker(tmp_path, ForkSafetyChecker(), {"mod.py": source}) == []


def test_fork_safety_sees_aliased_imports(tmp_path):
    source = """
        from threading import RLock

        class Holder:
            def __init__(self):
                self._lock = RLock()
    """
    findings = run_checker(tmp_path, ForkSafetyChecker(), {"alias.py": source})
    assert len(findings) == 1
    assert "RLock" in findings[0].message


# -- lock-order ------------------------------------------------------------


BAD_ORDER = """
    class Engine:
        def forward(self):
            with self._a_lock:
                with self._b_lock:
                    pass

        def backward(self):
            with self._b_lock:
                with self._a_lock:
                    pass
"""

GOOD_ORDER = """
    class Engine:
        def forward(self):
            with self._a_lock:
                with self._b_lock:
                    pass

        def backward(self):
            with self._a_lock:
                with self._b_lock:
                    pass
"""

SELF_DEADLOCK = """
    import threading

    class Engine:
        def __init__(self):
            self._lock = threading.Lock()

        def run(self):
            with self._lock:
                with self._lock:
                    pass
"""

RLOCK_NESTING = """
    import threading

    class Engine:
        def __init__(self):
            self._lock = threading.RLock()

        def run(self):
            with self._lock:
                with self._lock:
                    pass
"""


def test_lock_order_flags_abba_cycle(tmp_path):
    findings = run_checker(tmp_path, LockOrderChecker(), {"bad.py": BAD_ORDER})
    assert len(findings) == 1
    assert "cycle" in findings[0].message
    assert "_a_lock" in findings[0].message and "_b_lock" in findings[0].message


def test_lock_order_accepts_consistent_order(tmp_path):
    assert run_checker(tmp_path, LockOrderChecker(), {"good.py": GOOD_ORDER}) == []


def test_lock_order_flags_nested_nonreentrant(tmp_path):
    findings = run_checker(
        tmp_path, LockOrderChecker(), {"bad.py": SELF_DEADLOCK}
    )
    assert len(findings) == 1
    assert "self-deadlock" in findings[0].message


def test_lock_order_allows_nested_rlock(tmp_path):
    assert (
        run_checker(tmp_path, LockOrderChecker(), {"ok.py": RLOCK_NESTING}) == []
    )


def test_lock_order_cycle_across_files(tmp_path):
    one = """
        class A:
            def f(self):
                with self._first_lock:
                    with OTHER_LOCK:
                        pass
    """
    two = """
        class B:
            def g(self):
                with OTHER_LOCK:
                    with self._first_lock:
                        pass
    """
    # Same role ids only arise within one module/class, so build the
    # cycle through a shared module-level lock name imported as a global.
    findings = run_checker(
        tmp_path, LockOrderChecker(), {"one.py": one, "two.py": two}
    )
    # one.A._first_lock -> one.OTHER_LOCK and two.OTHER_LOCK ->
    # two.B._first_lock are distinct roles per module, so no cycle here:
    # this documents that role identity is module-qualified.
    assert findings == []


# -- cache-revision --------------------------------------------------------


BAD_CACHE = """
    class Scorer:
        def score(self, keyword, term):
            cached = self._score_cache.get((keyword, term))
            if cached is None:
                self._score_cache.put((keyword, term), 1.0)
            return cached
"""

GOOD_CACHE = """
    class Scorer:
        def score(self, keyword, term):
            key = (keyword, term, self._lexicon_version())
            cached = self._score_cache.get(key)
            if cached is None:
                self._score_cache.put(key, 1.0)
            return cached
"""

CONSTRUCTOR_NAMED_CACHE = """
    class Service:
        def __init__(self):
            self._results = TTLResultCache(64)

        def lookup(self, keywords, k):
            return self._results.get((keywords, k))
"""


def test_cache_revision_flags_unstamped_key(tmp_path):
    findings = run_checker(tmp_path, CacheRevisionChecker(), {"bad.py": BAD_CACHE})
    assert len(findings) == 2
    assert {f.rule for f in findings} == {"cache-revision"}


def test_cache_revision_accepts_stamped_key_via_local(tmp_path):
    assert (
        run_checker(tmp_path, CacheRevisionChecker(), {"good.py": GOOD_CACHE})
        == []
    )


def test_cache_revision_tracks_cache_constructor_attrs(tmp_path):
    findings = run_checker(
        tmp_path, CacheRevisionChecker(), {"svc.py": CONSTRUCTOR_NAMED_CACHE}
    )
    assert len(findings) == 1
    assert "_results.get" in findings[0].message


def test_cache_revision_ignores_plain_dict_get(tmp_path):
    source = """
        import os

        def f(mapping, key):
            return mapping.get(key), os.environ.get("HOME")
    """
    assert run_checker(tmp_path, CacheRevisionChecker(), {"ok.py": source}) == []


# -- journal-discipline ----------------------------------------------------


BAD_JOURNAL = """
    class MemoryBackend:
        def add_rows(self, table, rows):
            self._apply_add_rows(table, rows, 0)
"""

GOOD_JOURNAL = """
    class MemoryBackend:
        def add_rows(self, table, rows):
            seq = self._journal_append("add", table, rows)
            self._apply_add_rows(table, rows, seq)

        def _apply_add_rows(self, table, rows, seq):
            pass
"""


def test_journal_discipline_flags_unjournaled_apply(tmp_path):
    findings = run_checker(
        tmp_path, JournalDisciplineChecker(), {"bad.py": BAD_JOURNAL}
    )
    assert len(findings) == 1
    assert "_apply_add_rows" in findings[0].message


def test_journal_discipline_accepts_journal_then_apply(tmp_path):
    assert (
        run_checker(tmp_path, JournalDisciplineChecker(), {"good.py": GOOD_JOURNAL})
        == []
    )


def test_journal_discipline_ignores_non_backend_classes(tmp_path):
    source = """
        class Helper:
            def run(self):
                self._apply_add_rows("t", [], 0)
    """
    assert (
        run_checker(tmp_path, JournalDisciplineChecker(), {"ok.py": source}) == []
    )


# -- fault-points ----------------------------------------------------------


REGISTRY = """
    POINTS = (
        "storage.query",
        "worker.start",
    )
"""

GOOD_FIRES = """
    from repro import faults

    def query():
        faults.fire("storage.query")

    def boot():
        faults.fire("worker.start")
"""

TYPO_FIRE = """
    from repro import faults

    def query():
        faults.fire("storage.qurey")

    def boot():
        faults.fire("worker.start")
"""


def test_fault_points_flags_typo_and_unfired(tmp_path):
    findings = run_checker(
        tmp_path,
        FaultPointChecker(),
        {"faults.py": REGISTRY, "code.py": TYPO_FIRE},
    )
    messages = [f.message for f in findings]
    assert any("storage.qurey" in m and "not declared" in m for m in messages)
    assert any("storage.query" in m and "never fired" in m for m in messages)
    assert len(findings) == 2


def test_fault_points_accepts_matching_registry(tmp_path):
    findings = run_checker(
        tmp_path,
        FaultPointChecker(),
        {"faults.py": REGISTRY, "code.py": GOOD_FIRES},
    )
    assert findings == []


def test_fault_points_silent_without_registry(tmp_path):
    findings = run_checker(
        tmp_path, FaultPointChecker(), {"code.py": TYPO_FIRE}
    )
    assert findings == []


# -- clock-discipline ------------------------------------------------------


BAD_CLOCK = """
    import time

    def deadline(timeout):
        return time.monotonic() + timeout
"""

GOOD_CLOCK = """
    import time
    from typing import Callable

    class Deadline:
        def __init__(self, clock: Callable[[], float] = time.monotonic):
            self._clock = clock

        def remaining(self, until):
            return until - self._clock()
"""


def test_clock_discipline_flags_direct_read_in_service(tmp_path):
    findings = run_checker(
        tmp_path, ClockDisciplineChecker(), {"service/mod.py": BAD_CLOCK}
    )
    assert len(findings) == 1
    assert "time.monotonic" in findings[0].message


def test_clock_discipline_allows_injected_clock(tmp_path):
    assert (
        run_checker(
            tmp_path, ClockDisciplineChecker(), {"resilience/mod.py": GOOD_CLOCK}
        )
        == []
    )


def test_clock_discipline_ignores_unguarded_layers(tmp_path):
    assert (
        run_checker(
            tmp_path, ClockDisciplineChecker(), {"kernels/mod.py": BAD_CLOCK}
        )
        == []
    )


def test_clock_discipline_flags_from_import_alias(tmp_path):
    source = """
        from time import monotonic

        def now():
            return monotonic()
    """
    findings = run_checker(
        tmp_path, ClockDisciplineChecker(), {"pipeline/mod.py": source}
    )
    assert len(findings) == 1


# -- whole-tree self-gate --------------------------------------------------


REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_src_is_questlint_clean():
    """The acceptance gate, enforced from inside tier-1: the real tree
    analyses clean with no baseline entries at all."""
    result = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.files_checked > 100


def test_repo_fixture_violation_fails(tmp_path):
    """Introducing any one violation flips the exit code — the negative
    half of the acceptance criterion."""
    (tmp_path / "bad.py").write_text(
        "import threading\n\n"
        "class H:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )
    result = analyze_paths([tmp_path], root=tmp_path)
    assert result.exit_code == 1
    assert any(f.rule == "fork-safety" for f in result.findings)
