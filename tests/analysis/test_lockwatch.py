"""Unit tests for the runtime lock-order witness."""

from __future__ import annotations

import os
import threading

import pytest

from repro.analysis import lockwatch
from repro.analysis.lockwatch import LockWatcher, LockWatchError


@pytest.fixture()
def watcher():
    return LockWatcher()


def test_consistent_order_is_silent(watcher):
    a, b = watcher.lock("A"), watcher.lock("B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert watcher.violations() == ()


def test_seeded_inversion_is_detected(watcher):
    """The acceptance scenario: A-then-B in one place, B-then-A in
    another. The run itself never deadlocks — the witness flags the
    *potential* ABBA interleaving."""
    a, b = watcher.lock("A"), watcher.lock("B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    (violation,) = watcher.violations()
    assert violation.kind == "inversion"
    assert "A" in violation.message and "B" in violation.message
    assert "cycle" in violation.message
    assert violation.stack  # carries a traceback for the failure report


def test_inversion_detected_across_threads(watcher):
    a, b = watcher.lock("A"), watcher.lock("B")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    t = threading.Thread(target=forward)
    t.start()
    t.join()
    backward()  # opposite order on the main thread
    assert [v.kind for v in watcher.violations()] == ["inversion"]


def test_transitive_inversion_detected(watcher):
    """A->B and B->C teach the graph A-before-C; C->A closes the cycle
    even though A and C were never directly nested."""
    a, b, c = watcher.lock("A"), watcher.lock("B"), watcher.lock("C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    (violation,) = watcher.violations()
    assert violation.kind == "inversion"


def test_same_role_siblings_carry_no_ordering(watcher):
    """Two locks sharing one role (creation site) — e.g. the per-instance
    lock of two LRUCaches — may nest in either order."""
    one = watcher.lock("repro.cache:31")
    two = watcher.lock("repro.cache:31")
    with one:
        with two:
            pass
    with two:
        with one:
            pass
    assert watcher.violations() == ()


def test_self_deadlock_raises_immediately(watcher):
    lock = watcher.lock("A")
    with lock:
        with pytest.raises(LockWatchError, match="self-deadlock"):
            lock.acquire()
    (violation,) = watcher.violations()
    assert violation.kind == "self-deadlock"


def test_reentrant_lock_may_nest(watcher):
    lock = watcher.lock("R", reentrant=True)
    with lock:
        with lock:
            pass
    assert watcher.violations() == ()


def test_release_unwinds_held_stack(watcher):
    a, b = watcher.lock("A"), watcher.lock("B")
    with a:
        pass
    with b:
        with a:  # no inversion: A was released before B was taken
            pass
    assert watcher.violations() == ()
    assert watcher.held_by_current_thread() == ()


def test_install_wraps_repro_locks_only(watcher):
    lockwatch.install(watcher)
    try:
        from repro.cache import LRUCache

        cache = LRUCache(4)
        assert type(cache._lock).__name__ == "WatchedLock"
        # Locks created from non-repro frames (this test module) stay raw.
        plain = threading.Lock()
        assert type(plain).__name__ != "WatchedLock"
    finally:
        lockwatch.uninstall()


def test_install_is_exclusive(watcher):
    lockwatch.install(watcher)
    try:
        with pytest.raises(LockWatchError, match="already installed"):
            lockwatch.install(LockWatcher())
    finally:
        lockwatch.uninstall()
    assert lockwatch.active_watcher() is None


def test_watched_condition_still_works(watcher):
    """threading.Condition built on a watched lock must still signal."""
    lockwatch.install(watcher)
    try:
        from repro.cache import LRUCache  # noqa: F401 - patch sanity

        cond = threading.Condition()
        waiting = threading.Event()
        hits = []

        def waiter():
            with cond:
                waiting.set()
                cond.wait(timeout=5.0)
                hits.append(1)

        t = threading.Thread(target=waiter)
        t.start()
        waiting.wait(timeout=5.0)
        with cond:  # also proves the cond lock round-trips acquire/release
            cond.notify_all()
        t.join(timeout=5.0)
        assert hits == [1]
    finally:
        lockwatch.uninstall()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only")
def test_fork_while_held_is_recorded(watcher):
    """Forking with a watched lock held is recorded (not failed) — fork
    events only route through an *installed* watcher."""
    lockwatch.install(watcher)
    try:
        lock = watcher.lock("F")
        with lock:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            os.waitpid(pid, 0)
    finally:
        lockwatch.uninstall()
    (event,) = watcher.fork_events()
    assert event.held == ("F",)
    assert event.forking_thread_held == ("F",)
    assert watcher.violations() == ()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only")
def test_fork_with_nothing_held_records_no_event(watcher):
    lockwatch.install(watcher)
    try:
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
    finally:
        lockwatch.uninstall()
    assert watcher.fork_events() == ()


def test_clean_engine_search_under_watcher(mini_db):
    """A real end-to-end search with the watcher installed: every repro
    lock created while the engine is built and queried is watched, and
    the run stays silent — the positive control for the conftest fixture."""
    watcher = LockWatcher()
    lockwatch.install(watcher)
    try:
        from repro.core import Quest
        from repro.storage import create_backend
        from repro.wrapper import FullAccessWrapper

        engine = Quest(FullAccessWrapper(create_backend("memory", mini_db)))
        results = engine.search("kubrick scifi")
        assert results
    finally:
        lockwatch.uninstall()
    assert watcher.violations() == ()
