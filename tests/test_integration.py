"""End-to-end integration tests across the whole system."""

import pytest

from repro import (
    FullAccessWrapper,
    HiddenSourceWrapper,
    Quest,
    QuestSettings,
    SimulatedUser,
)
from repro.datasets import dblp, imdb, mondial
from repro.eval import evaluate, quest_engine
from repro.feedback import FeedbackTrainer

from tests.conftest import backend_for


class TestEndToEndQuality:
    """The paper's headline claim on each demo scenario."""

    def test_imdb_quality(self, imdb_db):
        workload = imdb.workload(imdb_db, queries_per_kind=2)
        engine = Quest(FullAccessWrapper(backend_for(imdb_db)))
        result = evaluate(quest_engine(engine), workload, k=10)
        assert result.success_at(10) >= 0.8
        assert result.mrr >= 0.6

    def test_dblp_quality(self, dblp_db):
        workload = dblp.workload(dblp_db, queries_per_kind=2)
        engine = Quest(FullAccessWrapper(backend_for(dblp_db)))
        result = evaluate(quest_engine(engine), workload, k=10)
        assert result.success_at(10) >= 0.7

    def test_mondial_quality(self, mondial_db):
        workload = mondial.workload(mondial_db, queries_per_kind=2)
        engine = Quest(FullAccessWrapper(backend_for(mondial_db)))
        result = evaluate(quest_engine(engine), workload, k=10)
        assert result.success_at(10) >= 0.7


class TestHiddenSourceParity:
    def test_hidden_engine_answers_queries(self, mondial_db):
        hidden = HiddenSourceWrapper(mondial_db.schema, remote_db=mondial_db)
        engine = Quest(
            hidden,
            QuestSettings(
                mutual_information_weights=False, uncertainty_backward=0.5
            ),
        )
        workload = mondial.workload(mondial_db, queries_per_kind=2)
        result = evaluate(quest_engine(engine), workload, k=10)
        # Hidden mode loses precision but must stay usable.
        assert result.success_at(10) >= 0.3

    def test_hidden_never_beats_full_access(self, mondial_db):
        workload = mondial.workload(mondial_db, queries_per_kind=2)
        full = Quest(FullAccessWrapper(backend_for(mondial_db)))
        hidden = Quest(
            HiddenSourceWrapper(mondial_db.schema, remote_db=mondial_db),
            QuestSettings(mutual_information_weights=False),
        )
        full_result = evaluate(quest_engine(full), workload, k=10)
        hidden_result = evaluate(quest_engine(hidden), workload, k=10)
        assert full_result.mrr >= hidden_result.mrr - 1e-9


class TestFeedbackLoop:
    def test_feedback_training_improves_feedback_mode(self, dblp_db):
        workload = dblp.workload(dblp_db, queries_per_kind=4)
        wrapper = FullAccessWrapper(backend_for(dblp_db))
        engine = Quest(
            wrapper, QuestSettings(use_apriori=True, use_feedback=True)
        )
        trainer = FeedbackTrainer(engine.states)
        oracle = SimulatedUser(workload.gold_training_pairs())

        for query in workload:
            proposals = engine.forward(
                engine.keywords_of(query.text), k=10
            )
            oracle.teach(trainer, query.keywords, proposals)
        assert trainer.is_trained
        assert trainer.suggested_ignorance() < 0.9

        engine.set_feedback_model(trainer.model)
        engine.settings = engine.settings.updated(
            uncertainty_feedback=trainer.suggested_ignorance()
        )
        result = evaluate(quest_engine(engine), workload, k=10)
        assert result.success_at(10) >= 0.7


class TestCrossDatasetIsolation:
    def test_engines_do_not_share_state(self, imdb_db, dblp_db):
        imdb_engine = Quest(FullAccessWrapper(backend_for(imdb_db)))
        dblp_engine = Quest(FullAccessWrapper(backend_for(dblp_db)))
        assert imdb_engine.search("kubrick movies", k=3)
        assert dblp_engine.search("keyword search papers", k=3)
        assert len(imdb_engine.states) != len(dblp_engine.states)


class TestDeterminism:
    def test_search_is_deterministic(self, imdb_db):
        left = Quest(FullAccessWrapper(backend_for(imdb_db))).search("kubrick movies", 5)
        right = Quest(FullAccessWrapper(backend_for(imdb_db))).search("kubrick movies", 5)
        assert [e.sql for e in left] == [e.sql for e in right]
        assert [e.probability for e in left] == pytest.approx(
            [e.probability for e in right]
        )
