"""Tests for the LRU cache backing the cross-query caching layer."""

import threading

import pytest

from repro.pipeline import CacheStats, LRUCache


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = LRUCache(4)
        assert cache.get("absent") is None
        assert cache.get("absent", 42) == 42

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        stats = cache.stats
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now the oldest
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        assert cache.get("a") == 10
        assert cache.get("b") == 2

    def test_clear_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_reset_stats_keeps_entries(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.reset_stats()
        assert cache.stats.hits == 0
        assert cache.get("a") == 1

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_contains_does_not_touch_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.lookups == 0

    def test_concurrent_access_stays_consistent(self):
        cache = LRUCache(64)
        errors = []

        def worker(offset):
            try:
                for i in range(200):
                    key = (offset + i) % 32
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.stats.lookups == 4 * 200


class TestCacheStats:
    def test_since_yields_deltas(self):
        before = CacheStats(hits=5, misses=3, size=4, maxsize=8)
        after = CacheStats(hits=9, misses=4, size=6, maxsize=8)
        delta = after.since(before)
        assert delta.hits == 4
        assert delta.misses == 1
        assert delta.size == 6

    def test_hit_rate_of_unused_cache_is_zero(self):
        assert CacheStats().hit_rate == 0.0
