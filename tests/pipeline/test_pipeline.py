"""Tests for the staged pipeline: wrapper equivalence, traces, composition."""

import pytest

from repro.core import Quest
from repro.errors import QuestError
from repro.pipeline import (
    BackwardStage,
    CombineStage,
    ExplainStage,
    ForwardStage,
    PipelineStage,
    SearchContext,
    SearchPipeline,
)


@pytest.fixture()
def engine(mini_wrapper) -> Quest:
    return Quest(mini_wrapper)


class TestStageWrappers:
    """Quest's public stage methods must equal direct stage execution."""

    def test_search_equals_staged_run(self, engine):
        query = "kubrick movies"
        explanations = engine.search(query)
        keywords = engine.keywords_of(query)
        pool = engine.settings.k * engine.settings.candidate_factor
        configurations = engine.forward(keywords, pool)
        interpretations = engine.backward(configurations, engine.settings.k)
        ranked = engine.combine(
            configurations,
            interpretations,
            max(pool, len(interpretations)),
        )
        assert explanations == engine.explain(ranked, limit=engine.settings.k)

    def test_forward_matches_forward_stage(self, engine):
        keywords = ["kubrick", "movies"]
        context = SearchContext(keywords=keywords, pool=5)
        ForwardStage().run(engine, context)
        assert engine.forward(keywords, 5) == context.configurations

    def test_forward_raises_without_configurations(self, engine):
        settings = engine.settings.updated(use_feedback=True, use_apriori=False)
        starved = Quest(engine.wrapper, settings)
        with pytest.raises(QuestError):
            starved.forward(["kubrick"])

    def test_backward_matches_backward_stage(self, engine):
        configurations = engine.forward(["kubrick", "movies"], 5)
        context = SearchContext(configurations=configurations, tree_k=3)
        BackwardStage().run(engine, context)
        assert engine.backward(configurations, 3) == context.interpretations

    def test_combine_and_explain_match_stages(self, engine):
        configurations = engine.forward(["kubrick", "movies"], 5)
        interpretations = engine.backward(configurations, 3)
        context = SearchContext(
            configurations=configurations,
            interpretations=interpretations,
            rank_k=10,
        )
        CombineStage().run(engine, context)
        assert engine.combine(configurations, interpretations, 10) == context.ranked
        ExplainStage().run(engine, context)
        assert engine.explain(context.ranked) == context.explanations

    def test_combine_of_nothing_is_empty(self, engine):
        assert engine.combine([], []) == []


class TestTrace:
    def test_search_records_trace(self, engine):
        engine.search("kubrick movies")
        trace = engine.last_trace
        assert trace is not None
        assert [report.stage for report in trace.stages] == [
            "forward",
            "backward",
            "combine",
            "explain",
        ]
        assert trace.keywords == ("kubrick", "movies")
        assert all(report.seconds >= 0.0 for report in trace.stages)
        assert trace.total_seconds == pytest.approx(
            sum(report.seconds for report in trace.stages)
        )
        assert trace.stage("explain").candidates == len(
            engine.search("kubrick movies")
        )

    def test_trace_counts_cache_deltas(self, engine):
        engine.search("kubrick movies")
        first = engine.last_trace
        engine.search("kubrick movies")
        second = engine.last_trace
        # Cold run computes every emission vector; warm run hits for all.
        assert first.emission_cache.misses >= 1
        assert second.emission_cache.misses == 0
        assert second.emission_cache.hits >= 1
        assert second.steiner_cache.misses == 0
        assert "emissions" in second.summary()

    def test_unknown_stage_lookup_raises(self, engine):
        engine.search("kubrick movies")
        with pytest.raises(KeyError):
            engine.last_trace.stage("nonexistent")


class TestPipelineComposition:
    def test_default_stage_order(self):
        pipeline = SearchPipeline()
        assert [stage.name for stage in pipeline.stages] == [
            "forward",
            "backward",
            "combine",
            "explain",
        ]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(QuestError):
            SearchPipeline(stages=[])

    def test_unknown_stage_rejected(self):
        with pytest.raises(QuestError):
            SearchPipeline().stage("rewrite")

    def test_custom_stage_composition(self, mini_wrapper):
        calls = []

        class RecordingStage(PipelineStage):
            name = "recording"

            def __init__(self, inner):
                self.inner = inner

            def run(self, engine, context):
                calls.append(self.inner.name)
                self.inner.run(engine, context)

            def candidates(self, context):
                return self.inner.candidates(context)

        pipeline = SearchPipeline(
            stages=[
                RecordingStage(ForwardStage()),
                RecordingStage(BackwardStage()),
                RecordingStage(CombineStage()),
                RecordingStage(ExplainStage()),
            ]
        )
        engine = Quest(mini_wrapper, pipeline=pipeline)
        reference = Quest(mini_wrapper)
        assert engine.search("kubrick movies") == reference.search("kubrick movies")
        assert calls == ["forward", "backward", "combine", "explain"]

    def test_run_requires_query_or_keywords(self, engine):
        with pytest.raises(QuestError):
            engine.pipeline.run(engine)
        with pytest.raises(QuestError):
            engine.pipeline.run(engine, keywords=[])

    def test_run_many_strict_raises_and_lax_collects(self, engine):
        with pytest.raises(QuestError):
            engine.pipeline.run_many(engine, ["kubrick", "???"])
        contexts = engine.pipeline.run_many(
            engine, ["kubrick", "???"], strict=False
        )
        assert contexts[0].error is None
        assert contexts[0].explanations
        assert isinstance(contexts[1].error, QuestError)
        assert contexts[1].explanations == []
        # Failures still report the time they burned (evaluate() parity).
        assert contexts[1].trace.stages
        assert contexts[1].trace.stage("error").seconds >= 0.0

    def test_run_many_lax_absorbs_wrapper_failures(self, engine, monkeypatch):
        # Like the evaluate() loop, a lax batch must score ANY per-query
        # failure as a miss, not just library errors.
        original = type(engine.wrapper).compute_emission_scores
        original_batch = type(engine.wrapper).compute_emission_matrix

        def flaky(self, keyword, states):
            if keyword == "poison":
                raise ValueError("wrapper blew up")
            return original(self, keyword, states)

        def flaky_batch(self, keywords, states):
            if "poison" in keywords:
                raise ValueError("wrapper blew up")
            return original_batch(self, keywords, states)

        monkeypatch.setattr(type(engine.wrapper), "compute_emission_scores", flaky)
        monkeypatch.setattr(
            type(engine.wrapper), "compute_emission_matrix", flaky_batch
        )
        contexts = engine.pipeline.run_many(
            engine, ["kubrick", "poison"], strict=False
        )
        assert contexts[0].explanations
        assert isinstance(contexts[1].error, ValueError)
        assert contexts[1].explanations == []
        with pytest.raises(ValueError):
            engine.pipeline.run_many(engine, ["poison"])
