"""Tests for the built-in lexicon."""

import pytest

from repro.semantics import Lexicon, default_lexicon


@pytest.fixture()
def lexicon() -> Lexicon:
    return default_lexicon()


class TestSynonyms:
    def test_ring_membership(self, lexicon):
        assert lexicon.are_synonyms("movie", "film")
        assert lexicon.are_synonyms("film", "movie")

    def test_stem_folding(self, lexicon):
        assert lexicon.are_synonyms("movies", "films")

    def test_same_word(self, lexicon):
        assert lexicon.are_synonyms("movie", "movie")

    def test_non_synonyms(self, lexicon):
        assert not lexicon.are_synonyms("movie", "person")

    def test_synonyms_exclude_self(self, lexicon):
        assert "movie" not in lexicon.synonyms("movie")
        assert "film" in lexicon.synonyms("movie")


class TestHypernyms:
    def test_direct_hop(self, lexicon):
        assert "person" in lexicon.hypernyms("actor")
        assert "actor" in lexicon.hyponyms("person")

    def test_relatedness_grades(self, lexicon):
        assert lexicon.relatedness("movie", "movie") == 1.0
        assert lexicon.relatedness("movie", "film") == pytest.approx(0.9)
        assert lexicon.relatedness("actor", "person") == pytest.approx(0.7)
        # siblings under "person"
        assert lexicon.relatedness("actor", "director") == pytest.approx(0.5)
        assert lexicon.relatedness("movie", "country") == 0.0

    def test_expand(self, lexicon):
        expanded = lexicon.expand("actor")
        assert "person" in expanded
        assert "actor" in expanded


class TestCustomization:
    def test_runtime_extension(self):
        lexicon = Lexicon()
        lexicon.add_synonym_ring("widget", "gadget")
        assert lexicon.are_synonyms("widgets", "gadget")
        lexicon.add_hypernym("widget", "thing")
        assert lexicon.relatedness("widget", "thing") == pytest.approx(0.7)

    def test_empty_lexicon_is_inert(self):
        lexicon = Lexicon()
        assert lexicon.relatedness("a", "b") == 0.0
        assert lexicon.synonyms("a") == set()
