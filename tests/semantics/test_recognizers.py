"""Tests for value-shape recognisers."""

import pytest

from repro.db import Column
from repro.db.types import DataType
from repro.semantics import matches_datatype, matches_pattern, shape_score
from repro.semantics.recognizers import (
    looks_like_email,
    looks_like_number,
    looks_like_year,
)


class TestShapeHeuristics:
    def test_years(self):
        assert looks_like_year("1968")
        assert looks_like_year("2023")
        assert not looks_like_year("123")
        assert not looks_like_year("12345")
        assert not looks_like_year("abcd")

    def test_emails(self):
        assert looks_like_email("a.b@example.com")
        assert not looks_like_email("not-an-email")

    def test_numbers(self):
        assert looks_like_number("3.14")
        assert looks_like_number("-2")
        assert not looks_like_number("three")


class TestDatatype:
    def test_integer(self):
        assert matches_datatype("42", DataType.INTEGER)
        assert not matches_datatype("hello", DataType.INTEGER)

    def test_text_accepts_all(self):
        assert matches_datatype("anything", DataType.TEXT)


class TestPattern:
    def test_no_pattern_is_unknown(self):
        assert matches_pattern("x", None) is None

    def test_match_and_mismatch(self):
        assert matches_pattern("1968", r"(19|20)\d\d") is True
        assert matches_pattern("42", r"(19|20)\d\d") is False

    def test_bad_regex_is_unknown(self):
        assert matches_pattern("x", "(") is None


class TestShapeScore:
    def test_declared_pattern_is_decisive(self):
        column = Column("year", DataType.INTEGER, pattern=r"(19|20)\d\d")
        assert shape_score("1968", column) == 1.0
        assert shape_score("3", column) == 0.0

    def test_datatype_mismatch_is_zero(self):
        column = Column("count", DataType.INTEGER)
        assert shape_score("hello", column) == 0.0

    def test_year_boost_for_year_named_columns(self):
        year_col = Column("birth_year", DataType.INTEGER)
        other_col = Column("population", DataType.INTEGER)
        assert shape_score("1968", year_col) > shape_score("1968", other_col)

    def test_email_boost(self):
        email_col = Column("email", DataType.TEXT)
        name_col = Column("name", DataType.TEXT)
        assert shape_score("a@b.com", email_col) > shape_score(
            "a@b.com", name_col
        )

    def test_text_word_gets_moderate_score(self):
        assert shape_score("kubrick", Column("name", DataType.TEXT)) == pytest.approx(
            0.4
        )
