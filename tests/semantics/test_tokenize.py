"""Tests for keyword-query tokenisation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.semantics import STOPWORDS, normalize, split_identifier, tokenize_query


class TestTokenizeQuery:
    def test_simple_split(self):
        assert tokenize_query("kubrick movies") == ["kubrick", "movies"]

    def test_lowercases(self):
        assert tokenize_query("Kubrick MOVIES") == ["kubrick", "movies"]

    def test_drops_stopwords(self):
        assert tokenize_query("movies of the year") == ["movies", "year"]

    def test_keep_stopwords_flag(self):
        assert tokenize_query("of the year", keep_stopwords=True) == [
            "of",
            "the",
            "year",
        ]

    def test_quoted_phrase_stays_together(self):
        assert tokenize_query('"space odyssey" 1968') == ["space odyssey", "1968"]

    def test_phrase_keeps_interior_stopwords(self):
        assert tokenize_query('"war of worlds"') == ["war of worlds"]

    def test_punctuation_stripped(self):
        assert tokenize_query("kubrick, movies!") == ["kubrick", "movies"]

    def test_empty_query(self):
        assert tokenize_query("") == []
        assert tokenize_query("   ") == []

    def test_only_stopwords(self):
        assert tokenize_query("the of a") == []

    @given(st.text(max_size=80))
    def test_never_raises_and_never_emits_empty(self, text):
        for keyword in tokenize_query(text):
            assert keyword
            assert keyword == keyword.casefold()


class TestSplitIdentifier:
    def test_snake_case(self):
        assert split_identifier("release_year") == ["release", "year"]

    def test_camel_case(self):
        assert split_identifier("releaseYear") == ["release", "year"]

    def test_digits(self):
        assert split_identifier("address2") == ["address2"] or split_identifier(
            "address2"
        ) == ["address", "2"]

    def test_single_word(self):
        assert split_identifier("title") == ["title"]


class TestNormalize:
    def test_squeezes_noise(self):
        assert normalize("  A-Space  Odyssey! ") == "a space odyssey"


def test_stopwords_are_lowercase():
    assert all(w == w.casefold() for w in STOPWORDS)
