"""Tests for the conservative stemmer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semantics import same_stem, stem


class TestStem:
    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            ("movies", "movie"),
            ("titles", "title"),
            ("cities", "city"),
            ("countries", "country"),
            ("people", "person"),
            ("children", "child"),
            ("classes", "class"),
            ("boxes", "box"),
            ("matches", "match"),
            ("directed", "direct"),
            ("directing", "direct"),
            ("running", "run"),
            ("planned", "plan"),
            ("papers", "paper"),
            ("series", "series"),
        ],
    )
    def test_known_stems(self, word, expected):
        assert stem(word) == expected

    @pytest.mark.parametrize(
        "word", ["bus", "is", "us", "class", "the", "a", "was"]
    )
    def test_short_and_protected_words_unchanged(self, word):
        assert stem(word) == word

    def test_case_insensitive(self):
        assert stem("Movies") == "movie"

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)), max_size=20))
    def test_idempotent_on_own_output_length(self, word):
        # Suffix stripping never lengthens a word (after case folding,
        # which may itself expand ligatures) and never raises. Irregular
        # forms are exempt: they map through a fixed table whose targets
        # may be longer than the source ("mice" -> "mouse").
        from repro.semantics.stemmer import _IRREGULAR

        folded = word.casefold()
        if folded in _IRREGULAR:
            assert stem(word) == _IRREGULAR[folded]
        else:
            assert len(stem(word)) <= max(len(folded), 1)


class TestSameStem:
    def test_plural_matches_singular(self):
        assert same_stem("movies", "movie")
        assert same_stem("Movie", "MOVIES")

    def test_unrelated_words_differ(self):
        assert not same_stem("movie", "person")

    def test_irregular(self):
        assert same_stem("people", "person")
