"""Tests for string similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semantics import (
    edit_similarity,
    jaro_winkler,
    levenshtein,
    term_similarity,
    token_set_similarity,
    trigram_similarity,
)
from repro.semantics.similarity import jaro

words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",)), max_size=12
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_winkler_boosts_prefix(self):
        assert jaro_winkler("prefix", "prefixx") > jaro("prefix", "prefixx")

    @given(words, words)
    def test_range(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestTrigram:
    def test_identical(self):
        assert trigram_similarity("movie", "movie") == 1.0

    def test_empty(self):
        assert trigram_similarity("", "abc") == 0.0

    def test_partial_overlap(self):
        assert 0.0 < trigram_similarity("movie", "movies") < 1.0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert trigram_similarity(a, b) == pytest.approx(
            trigram_similarity(b, a)
        )


class TestTokenSet:
    def test_reordered_compound(self):
        assert token_set_similarity("release_year", "year_release") == 1.0

    def test_stem_folding(self):
        assert token_set_similarity("movies", "movie") == 1.0

    def test_partial(self):
        assert token_set_similarity("release_year", "year") == pytest.approx(0.5)


class TestTermSimilarity:
    def test_exact_match(self):
        assert term_similarity("title", "title") == 1.0

    def test_case_insensitive(self):
        assert term_similarity("Title", "TITLE") == 1.0

    def test_stem_match(self):
        assert term_similarity("movies", "movie") == pytest.approx(0.95)

    def test_empty_inputs(self):
        assert term_similarity("", "title") == 0.0
        assert term_similarity("title", "") == 0.0

    def test_real_matches_beat_noise(self):
        assert term_similarity("movies", "movie") > term_similarity(
            "movies", "name"
        )
        assert term_similarity("director", "director_id") > term_similarity(
            "director", "genre_id"
        )

    @given(words, words)
    def test_range(self, a, b):
        assert 0.0 <= term_similarity(a, b) <= 1.0

    def test_edit_similarity_range(self):
        assert edit_similarity("", "") == 1.0
        assert edit_similarity("a", "b") == 0.0
