"""Tests for engine settings validation."""

import pytest

from repro.core import QuestSettings
from repro.errors import QuestError


class TestValidation:
    def test_defaults_are_valid(self):
        QuestSettings()

    def test_k_must_be_positive(self):
        with pytest.raises(QuestError):
            QuestSettings(k=0)

    def test_candidate_factor_must_be_positive(self):
        with pytest.raises(QuestError):
            QuestSettings(candidate_factor=0)

    @pytest.mark.parametrize(
        "field",
        [
            "uncertainty_apriori",
            "uncertainty_feedback",
            "uncertainty_forward",
            "uncertainty_backward",
        ],
    )
    def test_uncertainties_bounded(self, field):
        with pytest.raises(QuestError):
            QuestSettings(**{field: 1.5})
        with pytest.raises(QuestError):
            QuestSettings(**{field: -0.1})
        QuestSettings(**{field: 0.0})
        QuestSettings(**{field: 1.0})

    def test_at_least_one_forward_mode(self):
        with pytest.raises(QuestError):
            QuestSettings(use_apriori=False, use_feedback=False)
        QuestSettings(use_apriori=False, use_feedback=True)

    def test_min_results_non_negative(self):
        with pytest.raises(QuestError):
            QuestSettings(min_explanation_results=-1)


class TestUpdated:
    def test_updated_returns_new_instance(self):
        settings = QuestSettings()
        changed = settings.updated(k=5)
        assert changed.k == 5
        assert settings.k == 10

    def test_updated_validates(self):
        with pytest.raises(QuestError):
            QuestSettings().updated(k=-1)
