"""Tests for multi-source search (Algorithm 2 of the paper)."""

import pytest

from repro.core import MultiSourceQuest, Quest
from repro.errors import QuestError
from repro.wrapper import FullAccessWrapper

from tests.conftest import backend_for, build_mini_db


@pytest.fixture()
def two_sources(mini_db):
    """Two movie databases with overlapping but distinct content."""
    other = build_mini_db()
    other.insert("person", {"id": 4, "name": "Hayao Miyazaki"})
    other.insert(
        "movie",
        {"id": 6, "title": "The Wind Rises", "year": 2013,
         "director_id": 4, "genre_id": 3},
    )
    return {
        "alpha": Quest(FullAccessWrapper(backend_for(mini_db))),
        "beta": Quest(FullAccessWrapper(backend_for(other))),
    }


class TestMultiSource:
    def test_needs_at_least_one_source(self):
        with pytest.raises(QuestError):
            MultiSourceQuest({})

    def test_ignorance_validated(self, two_sources):
        with pytest.raises(QuestError):
            MultiSourceQuest(two_sources, {"alpha": 1.5})

    def test_answers_come_from_both_sources(self, two_sources):
        multi = MultiSourceQuest(two_sources)
        ranked = multi.search("kubrick movies", k=10)
        assert ranked
        sources = {name for name, _e in ranked}
        assert sources == {"alpha", "beta"}

    def test_source_exclusive_answers_dominate(self, two_sources):
        # Miyazaki exists only in source beta: alpha can still speculate
        # (schema-level mappings), but beta's grounded answer must rank
        # first and carry far more belief — evidence coverage makes the
        # uncomprehending source near-ignorant.
        multi = MultiSourceQuest(two_sources)
        ranked = multi.search("miyazaki movies", k=10)
        assert ranked
        top_name, top_explanation = ranked[0]
        assert top_name == "beta"
        best_alpha = max(
            (e.probability for n, e in ranked if n == "alpha"),
            default=0.0,
        )
        assert top_explanation.probability >= 3 * best_alpha

    def test_probabilities_form_subdistribution(self, two_sources):
        multi = MultiSourceQuest(two_sources)
        ranked = multi.search("kubrick movies", k=10)
        total = sum(e.probability for _n, e in ranked)
        assert 0.0 < total <= 1.0 + 1e-9
        probabilities = [e.probability for _n, e in ranked]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_ignorance_downweights_a_source(self, two_sources):
        trusted_alpha = MultiSourceQuest(
            two_sources, {"alpha": 0.05, "beta": 0.9}
        )
        trusted_beta = MultiSourceQuest(
            two_sources, {"alpha": 0.9, "beta": 0.05}
        )
        top_alpha = trusted_alpha.search("kubrick movies", k=5)[0][0]
        top_beta = trusted_beta.search("kubrick movies", k=5)[0][0]
        assert top_alpha == "alpha"
        assert top_beta == "beta"

    def test_unanswerable_query_gives_empty(self, two_sources):
        multi = MultiSourceQuest(two_sources)
        assert multi.search("zzzz qqqq", k=5) == []

    def test_k_bounds_results(self, two_sources):
        multi = MultiSourceQuest(two_sources)
        assert len(multi.search("kubrick movies", k=3)) <= 3

    def test_single_source_degenerates_gracefully(self, mini_db):
        multi = MultiSourceQuest(
            {"only": Quest(FullAccessWrapper(backend_for(mini_db)))}
        )
        ranked = multi.search("kubrick movies", k=5)
        assert ranked
        assert all(name == "only" for name, _e in ranked)


class TestExecutorLifecycle:
    def test_pool_recreated_when_width_changes(self, two_sources):
        # Regression: the lazily created executor used to pin the width
        # computed at first search, silently ignoring later max_workers
        # changes (and pools released by close()).
        multi = MultiSourceQuest(two_sources, max_workers=2)
        baseline = multi.search("kubrick movies", k=5)
        assert multi._executor is not None
        assert multi._executor._max_workers == 2

        multi.max_workers = 4
        assert multi.search("kubrick movies", k=5) == baseline
        assert multi._executor._max_workers == 4

        multi.max_workers = 3
        assert multi.search("kubrick movies", k=5) == baseline
        assert multi._executor._max_workers == 3
        multi.close()

    def test_pool_recreated_after_close(self, two_sources):
        multi = MultiSourceQuest(two_sources, max_workers=2)
        baseline = multi.search("kubrick movies", k=5)
        multi.close()
        assert multi._executor is None
        assert multi.search("kubrick movies", k=5) == baseline
        assert multi._executor is not None
        assert multi._executor._max_workers == 2
        multi.close()

    def test_stable_width_reuses_the_pool(self, two_sources):
        multi = MultiSourceQuest(two_sources, max_workers=2)
        multi.search("kubrick movies", k=5)
        pool = multi._executor
        multi.search("movies", k=5)
        assert multi._executor is pool
        multi.close()
