"""Cache-correctness tests: caching changes latency, never answers.

Covers the ISSUE acceptance criteria: cold vs. warm ``Quest.search`` must
be identical element-wise on the mondial workload, ``search_many`` must
equal per-query ``search``, and the threaded multi-source path must equal
serial execution.
"""

import pytest

from repro.core import MultiSourceQuest, Quest
from repro.datasets import mondial
from repro.errors import QuestError
from repro.wrapper import FullAccessWrapper, HiddenSourceWrapper

from tests.conftest import backend_for


@pytest.fixture(scope="module")
def mondial_cache_db():
    return mondial.generate(countries=10, seed=23)


@pytest.fixture(scope="module")
def mondial_engine(mondial_cache_db):
    return Quest(FullAccessWrapper(backend_for(mondial_cache_db)))


@pytest.fixture(scope="module")
def mondial_texts(mondial_cache_db):
    workload = mondial.workload(mondial_cache_db, queries_per_kind=2, seed=23)
    return [query.text for query in workload]


class TestColdVsWarm:
    def test_repeated_search_is_identical_elementwise(
        self, mondial_engine, mondial_texts
    ):
        cold = [mondial_engine.search(text) for text in mondial_texts]
        warm = [mondial_engine.search(text) for text in mondial_texts]
        for cold_ranked, warm_ranked in zip(cold, warm):
            assert len(cold_ranked) == len(warm_ranked)
            for cold_explanation, warm_explanation in zip(cold_ranked, warm_ranked):
                assert cold_explanation == warm_explanation

    def test_warm_pass_hits_both_caches(self, mondial_engine, mondial_texts):
        mondial_engine.search_many(mondial_texts)  # ensure caches are primed
        emissions_before = mondial_engine.wrapper.emission_cache_stats
        steiner_before = mondial_engine.schema_graph.steiner_cache.stats
        mondial_engine.search_many(mondial_texts)
        emissions = mondial_engine.wrapper.emission_cache_stats.since(
            emissions_before
        )
        steiner = mondial_engine.schema_graph.steiner_cache.stats.since(
            steiner_before
        )
        assert emissions.hits > 0
        assert emissions.misses == 0
        assert steiner.hits > 0
        assert steiner.misses == 0

    def test_hidden_wrapper_shares_the_cache_layer(self, mondial_cache_db):
        db = mondial_cache_db
        hidden = HiddenSourceWrapper(db.schema, remote_db=db)
        engine = Quest(hidden)
        cold = engine.search("capital ruritania")
        before = hidden.emission_cache_stats
        warm = engine.search("capital ruritania")
        assert cold == warm
        assert hidden.emission_cache_stats.since(before).misses == 0

    def test_disconnected_terminals_cached_and_still_raise(self, mini_schema):
        from repro.db.schema import ColumnRef
        from repro.errors import SteinerError
        from repro.steiner import SchemaGraph, top_k_steiner_trees

        graph = SchemaGraph(mini_schema)  # no edges: everything disconnected
        terminals = [ColumnRef("person", "name"), ColumnRef("movie", "title")]
        with pytest.raises(SteinerError):
            top_k_steiner_trees(graph, terminals, 3)
        before = graph.steiner_cache.stats
        with pytest.raises(SteinerError):
            top_k_steiner_trees(graph, terminals, 3)
        delta = graph.steiner_cache.stats.since(before)
        assert delta.hits == 1
        assert delta.misses == 0

    def test_steiner_cache_invalidated_on_graph_mutation(self, mini_engine):
        mini_engine.search("kubrick movies")
        graph = mini_engine.schema_graph
        assert len(graph.steiner_cache) > 0
        edge = graph.edges[0]
        graph.add_edge(edge.left, edge.right, edge.weight / 2, edge.kind)
        assert len(graph.steiner_cache) == 0

    def test_stale_emission_put_after_mutation_is_unreachable(self, mini_db):
        # The clear-then-stale-put race: a vector computed from
        # pre-mutation data but stored *after* a concurrent mutation
        # (and after another reader's sync cleared the cache) must not
        # be servable. Simulated deterministically: the first compute
        # mutates the backend and triggers a sync mid-flight, then
        # returns its stale pre-mutation scores.
        import numpy as np

        from repro.storage import create_backend
        from repro.wrapper import FullAccessWrapper

        backend = create_backend("memory", mini_db)
        wrapper = FullAccessWrapper(backend)
        from repro.hmm.states import StateSpace

        states = StateSpace(mini_db.schema)
        original = wrapper.compute_emission_scores
        tripped = []

        def compute_and_mutate(keyword, space):
            scores = original(keyword, space)
            if keyword == "godzilla" and not tripped:
                tripped.append(True)
                backend.insert(
                    "movie",
                    {"id": 99, "title": "Godzilla", "year": 1954,
                     "director_id": 1, "genre_id": 1},
                )
                # A concurrent reader syncs: clears the cache, adopts
                # the new version — while our stale result is in flight.
                wrapper.emission_scores("kubrick", states)
            return scores

        wrapper.compute_emission_scores = compute_and_mutate
        stale = wrapper.emission_scores("godzilla", states)
        assert float(np.max(stale)) == 0.0  # computed pre-insert
        fresh = wrapper.emission_scores("godzilla", states)
        assert float(np.max(fresh)) > 0.0  # stale put was unreachable

    def test_add_edge_mutates_topology_before_version_bump(self, mini_engine):
        # Ordering regression: if the version bumped before the
        # adjacency mutation, a reader in the window would pair the NEW
        # version with the OLD topology and poison the caches under the
        # new version permanently.
        graph = mini_engine.schema_graph
        edge = graph.edges[0]
        seen = {}
        original_invalidate = graph._invalidate_derived

        def spying_invalidate():
            seen["weight_at_bump"] = graph.edge_between(
                edge.left, edge.right
            ).weight
            original_invalidate()

        graph._invalidate_derived = spying_invalidate
        try:
            graph.add_edge(edge.left, edge.right, edge.weight / 2, edge.kind)
        finally:
            graph._invalidate_derived = original_invalidate
        assert seen["weight_at_bump"] == edge.weight / 2

    def test_stale_steiner_put_after_mutation_is_unreachable(self, mini_engine):
        from repro.steiner import top_k_steiner_trees

        graph = mini_engine.schema_graph
        configurations = mini_engine.forward(["kubrick", "movies"], 3)
        terminals = sorted(
            configurations[0].terminals(mini_engine.schema), key=str
        )
        before = top_k_steiner_trees(graph, terminals, 3)
        stale_key = next(iter(graph.steiner_cache._data))
        edge = graph.edges[0]
        graph.add_edge(edge.left, edge.right, edge.weight / 2, edge.kind)
        # An in-flight enumeration finishing now would put under the old
        # version's key; post-mutation lookups must not see it.
        graph.steiner_cache.put(stale_key, ("poisoned",))
        after = top_k_steiner_trees(graph, terminals, 3)
        assert after != ("poisoned",)
        assert {t.terminals for t in after} == {t.terminals for t in before}


class TestSearchMany:
    def test_search_many_equals_sequential_search(
        self, mondial_engine, mondial_texts
    ):
        sequential = [mondial_engine.search(text) for text in mondial_texts]
        batched = mondial_engine.search_many(mondial_texts)
        assert batched == sequential
        assert len(mondial_engine.batch_traces) == len(mondial_texts)

    def test_search_many_strict_raises(self, mini_engine):
        with pytest.raises(QuestError):
            mini_engine.search_many(["kubrick", "???"])

    def test_search_many_lax_scores_failures_empty(self, mini_engine):
        results = mini_engine.search_many(["kubrick", "???"], strict=False)
        assert results[0]
        assert results[1] == []

    def test_search_keywords_equals_search(self, mini_engine):
        query = "kubrick movies"
        assert mini_engine.search_keywords(
            mini_engine.keywords_of(query)
        ) == mini_engine.search(query)


class TestThreadedMultiSource:
    @pytest.fixture()
    def sources(self, mondial_engine, mondial_cache_db):
        db = mondial_cache_db
        return {
            "full": mondial_engine,
            "hidden": Quest(HiddenSourceWrapper(db.schema, remote_db=db)),
        }

    def test_threaded_equals_serial(self, sources, mondial_texts):
        serial = MultiSourceQuest(sources, max_workers=1)
        threaded = MultiSourceQuest(sources, max_workers=4)
        for text in mondial_texts[:4]:
            assert threaded.search(text) == serial.search(text)

    def test_threaded_path_is_deterministic(self, sources):
        multi = MultiSourceQuest(sources, max_workers=4)
        first = multi.search("capital ruritania")
        for _ in range(3):
            assert multi.search("capital ruritania") == first

    def test_search_many_matches_search(self, sources, mondial_texts):
        multi = MultiSourceQuest(sources)
        texts = mondial_texts[:3]
        assert multi.search_many(texts) == [multi.search(text) for text in texts]

    def test_unparseable_query_yields_no_answers(self, sources):
        multi = MultiSourceQuest(sources)
        assert multi.search("???") == []

    def test_max_workers_validated(self, sources):
        with pytest.raises(QuestError):
            MultiSourceQuest(sources, max_workers=0)
