"""Tests for configurations."""

from repro.core import Configuration, KeywordMapping
from repro.db import ColumnRef
from repro.hmm import State, StateKind


def config(*pairs: tuple[str, State], score: float = 0.5) -> Configuration:
    return Configuration(
        tuple(KeywordMapping(k, s) for k, s in pairs), score
    )


T = State(StateKind.TABLE, "movie")
A = State(StateKind.ATTRIBUTE, "movie", "title")
D = State(StateKind.DOMAIN, "person", "name")


class TestIdentity:
    def test_score_excluded_from_identity(self):
        assert config(("a", T), score=0.1) == config(("a", T), score=0.9)
        assert hash(config(("a", T), score=0.1)) == hash(
            config(("a", T), score=0.9)
        )

    def test_different_mappings_differ(self):
        assert config(("a", T)) != config(("a", A))
        assert config(("a", T)) != config(("b", T))

    def test_with_score_preserves_identity(self):
        original = config(("a", T))
        rescored = original.with_score(0.99)
        assert rescored == original
        assert rescored.score == 0.99


class TestAccessors:
    def test_keywords_and_states(self):
        c = config(("kubrick", D), ("movies", T))
        assert c.keywords == ("kubrick", "movies")
        assert c.states == (D, T)

    def test_kind_filters(self):
        c = config(("k", D), ("m", T), ("t", A))
        assert [m.keyword for m in c.domain_mappings()] == ["k"]
        assert [m.keyword for m in c.table_mappings()] == ["m"]
        assert [m.keyword for m in c.attribute_mappings()] == ["t"]

    def test_tables(self):
        c = config(("k", D), ("m", T))
        assert c.tables == frozenset({"person", "movie"})


class TestTerminals:
    def test_domain_and_attribute_contribute_columns(self, mini_schema):
        c = config(("k", D), ("t", A))
        assert c.terminals(mini_schema) == frozenset(
            {ColumnRef("person", "name"), ColumnRef("movie", "title")}
        )

    def test_table_contributes_primary_key(self, mini_schema):
        c = config(("m", T))
        assert c.terminals(mini_schema) == frozenset(
            {ColumnRef("movie", "id")}
        )

    def test_duplicate_terminals_collapse(self, mini_schema):
        c = config(("a", D), ("b", D))
        assert len(c.terminals(mini_schema)) == 1
