"""Tests for the query builder."""

from repro.core import Configuration, Interpretation, KeywordMapping, build_query
from repro.db import Catalog, ColumnRef, Comparison
from repro.hmm import State, StateKind
from repro.steiner import build_schema_graph, exact_steiner_tree


def interpretation_for(db, pairs):
    """Build an interpretation from (keyword, state) pairs over *db*."""
    configuration = Configuration(
        tuple(KeywordMapping(k, s) for k, s in pairs), 1.0
    )
    graph = build_schema_graph(db.schema, Catalog.from_database(db))
    terminals = sorted(configuration.terminals(db.schema), key=str)
    tree = exact_steiner_tree(graph, terminals)
    return Interpretation(configuration, tree, 1.0)


class TestBuildQuery:
    def test_domain_mapping_becomes_predicate(self, mini_db):
        interp = interpretation_for(
            mini_db,
            [
                ("kubrick", State(StateKind.DOMAIN, "person", "name")),
                ("movies", State(StateKind.TABLE, "movie")),
            ],
        )
        query = build_query(mini_db.schema, interp)
        assert len(query.predicates) == 1
        predicate = query.predicates[0]
        assert predicate.op is Comparison.CONTAINS
        assert predicate.value == "kubrick"
        assert (predicate.alias, predicate.column) == ("person", "name")

    def test_joins_follow_tree_foreign_keys(self, mini_db):
        interp = interpretation_for(
            mini_db,
            [
                ("kubrick", State(StateKind.DOMAIN, "person", "name")),
                ("scifi", State(StateKind.DOMAIN, "genre", "label")),
            ],
        )
        query = build_query(mini_db.schema, interp)
        assert query.table_names() == frozenset({"person", "movie", "genre"})
        assert len(query.joins) == 2

    def test_attribute_mapping_becomes_projection(self, mini_db):
        interp = interpretation_for(
            mini_db,
            [
                ("title", State(StateKind.ATTRIBUTE, "movie", "title")),
                ("1968", State(StateKind.DOMAIN, "movie", "year")),
            ],
        )
        query = build_query(mini_db.schema, interp)
        assert ("movie", "title") in query.projection
        assert len(query.predicates) == 1

    def test_table_mapping_projects_display_column(self, mini_db):
        interp = interpretation_for(
            mini_db, [("movies", State(StateKind.TABLE, "movie"))]
        )
        query = build_query(mini_db.schema, interp)
        # First non-key text column of movie is `title`.
        assert ("movie", "title") in query.projection

    def test_executes_against_database(self, mini_db):
        from repro.db import execute

        interp = interpretation_for(
            mini_db,
            [
                ("kubrick", State(StateKind.DOMAIN, "person", "name")),
                ("movies", State(StateKind.TABLE, "movie")),
            ],
        )
        query = build_query(mini_db.schema, interp)
        result = execute(mini_db, query)
        assert len(result) == 2  # two Kubrick movies in the fixture

    def test_limit_is_applied(self, mini_db):
        interp = interpretation_for(
            mini_db, [("movies", State(StateKind.TABLE, "movie"))]
        )
        assert build_query(mini_db.schema, interp, limit=1).limit == 1

    def test_distinct_by_default(self, mini_db):
        interp = interpretation_for(
            mini_db, [("movies", State(StateKind.TABLE, "movie"))]
        )
        assert build_query(mini_db.schema, interp).distinct
