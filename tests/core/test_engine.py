"""Tests for the Quest engine pipeline."""

import pytest

from repro.core import Quest, QuestSettings
from repro.errors import QuestError
from repro.hmm import HiddenMarkovModel, StateSpace


class TestForward:
    def test_returns_scored_configurations(self, mini_engine):
        configurations = mini_engine.forward(["kubrick", "movies"], 5)
        assert configurations
        assert sum(c.score for c in configurations) == pytest.approx(1.0)
        top = configurations[0]
        assert str(top.mappings[0].state) == "domain:person.name"
        assert str(top.mappings[1].state) == "table:movie"

    def test_scores_descending(self, mini_engine):
        configurations = mini_engine.forward(["kubrick", "movies"], 5)
        scores = [c.score for c in configurations]
        assert scores == sorted(scores, reverse=True)

    def test_feedback_mode_requires_model(self, mini_wrapper):
        engine = Quest(
            mini_wrapper,
            QuestSettings(use_apriori=True, use_feedback=True),
        )
        # No feedback model: silently falls back to a-priori only.
        assert engine.forward(["kubrick"], 3)

    def test_combined_modes(self, mini_wrapper):
        engine = Quest(
            mini_wrapper,
            QuestSettings(use_apriori=True, use_feedback=True),
        )
        engine.set_feedback_model(HiddenMarkovModel.uniform(engine.states))
        configurations = engine.forward(["kubrick", "movies"], 5)
        # Truncated pignistic ranking: a sub-distribution, best first.
        total = sum(c.score for c in configurations)
        assert 0.0 < total <= 1.0 + 1e-9
        scores = [c.score for c in configurations]
        assert scores == sorted(scores, reverse=True)

    def test_foreign_state_space_rejected(self, mini_engine, mondial_db):
        foreign = HiddenMarkovModel.uniform(StateSpace(mondial_db.schema))
        with pytest.raises(QuestError):
            mini_engine.set_feedback_model(foreign)

    def test_same_length_foreign_state_space_rejected(self, mini_engine):
        # Regression: a foreign space used to slip through whenever its
        # *length* matched — state indexes are positional, so a renamed
        # schema of identical shape would silently score the wrong terms.
        from repro.db import Column, Schema, TableSchema
        from repro.db.types import DataType

        def renamed(schema: Schema) -> Schema:
            return Schema(
                tables=[
                    TableSchema(
                        f"x{table.name}",
                        tuple(
                            Column(f"x{column.name}", DataType.TEXT)
                            for column in table.columns
                        ),
                        (f"x{table.columns[0].name}",),
                    )
                    for table in schema.tables
                ]
            )

        foreign_space = StateSpace(renamed(mini_engine.schema))
        assert len(foreign_space) == len(mini_engine.states)
        with pytest.raises(QuestError):
            mini_engine.set_feedback_model(
                HiddenMarkovModel.uniform(foreign_space)
            )

    def test_constructor_validates_feedback_model_too(
        self, mini_wrapper, mondial_db
    ):
        foreign = HiddenMarkovModel.uniform(StateSpace(mondial_db.schema))
        with pytest.raises(QuestError):
            Quest(mini_wrapper, feedback_model=foreign)

    def test_equal_content_state_space_accepted(self, mini_engine):
        # A *distinct* space object over the same schema carries the same
        # states in the same order: positionally interchangeable, accepted.
        twin = StateSpace(mini_engine.schema)
        assert twin is not mini_engine.states
        mini_engine.set_feedback_model(HiddenMarkovModel.uniform(twin))
        assert mini_engine.feedback_model is not None

    def test_feedback_model_swap_moves_engine_version(self, mini_engine):
        before = mini_engine.version
        mini_engine.set_feedback_model(
            HiddenMarkovModel.uniform(mini_engine.states)
        )
        assert mini_engine.version != before


class TestBackward:
    def test_produces_interpretations(self, mini_engine):
        configurations = mini_engine.forward(["kubrick", "movies"], 3)
        interpretations = mini_engine.backward(configurations, 3)
        assert interpretations
        assert all(0 < i.score <= 1 for i in interpretations)

    def test_single_column_config_gets_trivial_tree(self, mini_engine):
        # A single keyword pinned to one column needs no join path at all.
        configurations = mini_engine.forward(["odyssey"], 1)
        interpretations = mini_engine.backward(configurations[:1], 3)
        assert interpretations
        assert not interpretations[0].tree.edges
        assert interpretations[0].score == pytest.approx(1.0)

    def test_same_table_config_stays_in_table(self, mini_engine):
        configurations = mini_engine.forward(["odyssey", "1968"], 3)
        interpretations = mini_engine.backward(configurations[:1], 3)
        assert interpretations
        assert interpretations[0].tables == frozenset({"movie"})


class TestSearch:
    def test_gold_answer_ranks_first(self, mini_engine):
        explanations = mini_engine.search("kubrick movies", k=5)
        assert explanations
        top = explanations[0]
        assert top.query.table_names() == frozenset({"movie", "person"})
        assert top.result_count == 2

    def test_single_table_query(self, mini_engine):
        explanations = mini_engine.search("odyssey 1968", k=5)
        top = explanations[0]
        assert top.query.table_names() == frozenset({"movie"})
        assert top.result_count == 1

    def test_three_table_query(self, mini_engine):
        explanations = mini_engine.search("scifi scott", k=5)
        top = explanations[0]
        assert top.query.table_names() == frozenset(
            {"movie", "person", "genre"}
        )
        # DISTINCT (genre.label, person.name): both Scott scifi movies
        # collapse into one output row.
        assert top.result_count == 1

    def test_results_have_descending_probability(self, mini_engine):
        explanations = mini_engine.search("kubrick movies", k=5)
        probabilities = [e.probability for e in explanations]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_no_duplicate_sql(self, mini_engine):
        explanations = mini_engine.search("kubrick movies", k=10)
        signatures = [e.query.signature() for e in explanations]
        assert len(set(signatures)) == len(signatures)

    def test_empty_results_filtered_by_default(self, mini_engine):
        for explanation in mini_engine.search("kubrick movies", k=10):
            assert explanation.result_count >= 1

    def test_keep_empty_results_when_configured(self, mini_wrapper):
        engine = Quest(mini_wrapper, QuestSettings(min_explanation_results=0))
        explanations = engine.search("kubrick movies", k=10)
        assert any(e.result_count == 0 for e in explanations) or all(
            e.result_count >= 1 for e in explanations
        )

    def test_k_bounds_results(self, mini_engine):
        assert len(mini_engine.search("kubrick movies", k=2)) <= 2

    def test_blank_query_rejected(self, mini_engine):
        with pytest.raises(QuestError):
            mini_engine.search("   ")

    def test_stopword_only_query_rejected(self, mini_engine):
        with pytest.raises(QuestError):
            mini_engine.search("the of an")

    def test_unknown_keywords_yield_no_results(self, mini_engine):
        # Nothing matches: every candidate executes to empty and is dropped.
        assert mini_engine.search("qwxyz zzz", k=5) == []


class TestSearchWithoutExecution:
    def test_execution_disabled(self, mini_wrapper):
        engine = Quest(
            mini_wrapper, QuestSettings(execute_explanations=False)
        )
        explanations = engine.search("kubrick movies", k=5)
        assert explanations
        assert all(e.result_count is None for e in explanations)

    def test_hidden_source_without_endpoint(self, mini_schema):
        from repro.wrapper import HiddenSourceWrapper

        engine = Quest(
            HiddenSourceWrapper(mini_schema),
            QuestSettings(mutual_information_weights=False),
        )
        explanations = engine.search("kubrick movies", k=5)
        assert explanations
        assert all(e.result_count is None for e in explanations)


class TestEvidenceCoverage:
    def test_full_coverage(self, mini_engine):
        assert mini_engine.evidence_coverage(["kubrick", "movies"]) == 1.0

    def test_partial_coverage(self, mini_engine):
        assert mini_engine.evidence_coverage(["kubrick", "qqqq"]) == 0.5

    def test_zero_coverage(self, mini_engine):
        assert mini_engine.evidence_coverage(["qqqq", "zzzz"]) == 0.0

    def test_empty_keywords(self, mini_engine):
        assert mini_engine.evidence_coverage([]) == 0.0
