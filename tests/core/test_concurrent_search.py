"""Thread-stress suite: one shared engine, many concurrent callers.

Covers the concurrency contract of this PR's tentpole: N threads x M
queries on a single shared ``Quest`` must produce rankings identical to
sequential runs, every returned context must carry its *own* exact trace
(no shared-counter attribution, no cross-talk), and the serving tier
(``QuestService``) must keep that identity while demonstrably coalescing
identical in-flight requests — plus the satellite fixes: the forked batch
tier degrading (not blocking) under sibling contention and the
``FeedbackStore`` staying safe under concurrent append/iterate.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import MultiSourceQuest, Quest
from repro.core.batch import fork_available
from repro.datasets import mondial
from repro.errors import ServiceOverloadedError
from repro.feedback import FeedbackStore
from repro.pipeline.runner import SearchPipeline
from repro.service import QuestService, ServiceSettings
from repro.wrapper import FullAccessWrapper, HiddenSourceWrapper

from tests.conftest import backend_for

THREADS = 8


@pytest.fixture(scope="module")
def stress_db():
    return mondial.generate(countries=10, seed=31)


@pytest.fixture(scope="module")
def stress_texts(stress_db):
    workload = mondial.workload(stress_db, queries_per_kind=2, seed=31)
    return [query.text for query in workload]


@pytest.fixture()
def stress_engine(stress_db):
    return Quest(FullAccessWrapper(backend_for(stress_db)))


def _run_threaded(fn, jobs, threads=THREADS):
    """Run ``fn(job)`` for every job across *threads*, preserving order."""
    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(fn, jobs))


class SlowPipeline(SearchPipeline):
    """A pipeline whose runs take a guaranteed-visible amount of time,
    so tests can arrange requests to overlap deterministically."""

    def __init__(self, delay=0.2):
        super().__init__()
        self.delay = delay

    def run(self, engine, query=None, keywords=None, k=None):
        time.sleep(self.delay)
        return super().run(engine, query=query, keywords=keywords, k=k)


class TestConcurrentEngineIdentity:
    def test_threads_match_sequential_rankings(self, stress_engine, stress_texts):
        expected = {
            text: stress_engine.search(text) for text in stress_texts
        }
        # Every thread replays the whole workload against the shared
        # engine: N threads x M queries, all interleaving on the shared
        # emission/Steiner caches.
        jobs = [text for text in stress_texts for _ in range(THREADS)]
        results = _run_threaded(
            lambda text: (text, stress_engine.search(text)), jobs
        )
        for text, ranked in results:
            assert ranked == expected[text]

    def test_contexts_carry_own_results_without_crosstalk(
        self, stress_engine, stress_texts
    ):
        jobs = [text for text in stress_texts for _ in range(THREADS)]
        contexts = _run_threaded(
            lambda text: stress_engine.search_context(text), jobs
        )
        for text, context in zip(jobs, contexts):
            assert context.query == text
            assert context.trace.query == text
            assert tuple(context.keywords) == context.trace.keywords
            # Every run traced its own full stage sequence.
            assert [r.stage for r in context.trace.stages] == [
                stage.name for stage in stress_engine.pipeline.stages
            ]

    def test_warm_trace_deltas_exact_under_concurrency(
        self, stress_engine, stress_texts
    ):
        stress_engine.search_many(stress_texts)  # prime both caches
        expected = {}
        for text in stress_texts:
            trace = stress_engine.search_context(text).trace
            expected[text] = (
                (trace.emission_cache.hits, trace.emission_cache.misses),
                (trace.steiner_cache.hits, trace.steiner_cache.misses),
            )
        jobs = [text for text in stress_texts for _ in range(THREADS)]
        contexts = _run_threaded(
            lambda text: stress_engine.search_context(text), jobs
        )
        for text, context in zip(jobs, contexts):
            emission_expected, steiner_expected = expected[text]
            trace = context.trace
            assert (
                trace.emission_cache.hits,
                trace.emission_cache.misses,
            ) == emission_expected
            assert (
                trace.steiner_cache.hits,
                trace.steiner_cache.misses,
            ) == steiner_expected
            # Warm caches: a concurrent run must never observe a miss.
            assert trace.emission_cache.misses == 0
            assert trace.steiner_cache.misses == 0

    def test_cold_attribution_partitions_global_counters(
        self, stress_engine, stress_texts
    ):
        """Per-trace deltas must sum exactly to the global counter motion.

        The old snapshot-subtraction scheme double-counted interleaved
        lookups (overlapping before/after windows); the context-local
        recorder partitions them."""
        emissions_before = stress_engine.wrapper.emission_cache_stats
        steiner_before = stress_engine.schema_graph.steiner_cache.stats
        contexts = _run_threaded(
            lambda text: stress_engine.search_context(text), stress_texts
        )
        emissions = stress_engine.wrapper.emission_cache_stats.since(
            emissions_before
        )
        steiner = stress_engine.schema_graph.steiner_cache.stats.since(
            steiner_before
        )
        traces = [context.trace for context in contexts]
        assert sum(t.emission_cache.hits for t in traces) == emissions.hits
        assert sum(t.emission_cache.misses for t in traces) == emissions.misses
        assert sum(t.steiner_cache.hits for t in traces) == steiner.hits
        assert sum(t.steiner_cache.misses for t in traces) == steiner.misses

    def test_multisource_threads_match_serial(self, stress_db, stress_texts):
        engines = {
            "full": Quest(FullAccessWrapper(backend_for(stress_db))),
            "hidden": Quest(
                HiddenSourceWrapper(stress_db.schema, remote_db=stress_db)
            ),
        }
        multi = MultiSourceQuest(engines, max_workers=4)
        expected = {text: multi.search(text) for text in stress_texts[:4]}
        jobs = [text for text in stress_texts[:4] for _ in range(4)]
        results = _run_threaded(lambda text: (text, multi.search(text)), jobs)
        for text, ranked in results:
            assert ranked == expected[text]


class TestServiceConcurrency:
    def test_service_matches_sequential_engine_with_own_traces(
        self, stress_db, stress_texts
    ):
        engine = Quest(FullAccessWrapper(backend_for(stress_db)))
        expected = {text: engine.search(text) for text in stress_texts}
        service = QuestService(engine)
        jobs = [text for text in stress_texts for _ in range(THREADS)]
        responses = _run_threaded(lambda text: service.search(text), jobs)
        for text, response in zip(jobs, responses):
            assert list(response.explanations) == expected[text]
            assert response.trace is not None
            assert response.trace.query == text
        snapshot = service.metrics()
        assert snapshot.requests == len(jobs)
        assert snapshot.completed == len(jobs)
        # The serving tiers absorbed the bulk of the duplicate traffic.
        # (No hard per-query bound: a request preempted between its
        # cache miss and its flight join can legally lead a second
        # computation for an already-answered key.)
        assert snapshot.executed < len(jobs)
        assert snapshot.coalesced + snapshot.cache_hits == len(jobs) - snapshot.executed

    def test_coalescing_collapses_identical_inflight_queries(self, stress_db):
        engine = Quest(
            FullAccessWrapper(backend_for(stress_db)), pipeline=SlowPipeline()
        )
        service = QuestService(
            engine, ServiceSettings(cache_results=False)
        )
        barrier = threading.Barrier(THREADS)

        def storm(_index):
            barrier.wait()
            return service.search("capital ruritania")

        responses = _run_threaded(storm, range(THREADS))
        rankings = {tuple(r.explanations) for r in responses}
        assert len(rankings) == 1
        snapshot = service.metrics()
        assert snapshot.requests == THREADS
        # All followers entered while the leader's 200ms run was in
        # flight: exactly one pipeline execution served all of them.
        assert snapshot.executed == 1
        assert snapshot.coalesced == THREADS - 1
        assert sum(1 for r in responses if r.source == "engine") == 1
        assert sum(1 for r in responses if r.coalesced) == THREADS - 1

    def test_admission_control_sheds_fast(self, stress_db, stress_texts):
        engine = Quest(
            FullAccessWrapper(backend_for(stress_db)), pipeline=SlowPipeline()
        )
        service = QuestService(
            engine,
            ServiceSettings(
                max_concurrent=1,
                max_queue=0,
                cache_results=False,
                coalesce=False,  # every request must face admission alone
            ),
        )
        barrier = threading.Barrier(6)
        texts = (stress_texts * 6)[:6]

        def request(text):
            barrier.wait()
            try:
                return ("ok", service.search(text))
            except ServiceOverloadedError:
                return ("shed", None)

        outcomes = _run_threaded(request, texts, threads=6)
        shed = sum(1 for kind, _r in outcomes if kind == "shed")
        completed = sum(1 for kind, _r in outcomes if kind == "ok")
        assert shed > 0  # the house was full, someone was refused
        assert completed >= 1  # the slot holder answered
        assert shed + completed == 6
        snapshot = service.metrics()
        assert snapshot.shed == shed
        assert snapshot.completed == completed

    def test_cached_results_invalidated_by_engine_mutation(self, stress_db):
        engine = Quest(FullAccessWrapper(backend_for(stress_db)))
        service = QuestService(engine)
        first = service.search("capital ruritania")
        assert service.search("capital ruritania").cached
        version_before = engine.version
        engine.schema_graph.reset_derived_caches()
        assert engine.version != version_before
        refreshed = service.search("capital ruritania")
        assert refreshed.source == "engine"  # the stale key is unreachable
        assert list(refreshed.explanations) == list(first.explanations)


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestForkedBatchContention:
    def test_run_forked_yields_under_contention(self):
        from repro.core import batch

        assert batch._PAYLOAD_LOCK.acquire(timeout=5)
        try:
            assert (
                batch.run_forked(object(), _identity_worker, [1, 2, 3], 2)
                is None
            )
        finally:
            batch._PAYLOAD_LOCK.release()

    def test_forked_batch_survives_sibling_holding_a_cache_lock(
        self, stress_engine, stress_texts
    ):
        # A sibling thread may sit inside a cache lock at the instant the
        # batch tier forks; the child would inherit the lock in a locked
        # state with no owner. repro.forksafe re-initialises registered
        # locks post-fork, so the workers must complete regardless.
        expected = stress_engine.search_many(stress_texts[:4])
        lock = stress_engine.wrapper.emission_cache._lock
        assert lock.acquire(timeout=5)
        try:
            results = stress_engine.search_many(stress_texts[:4], workers=2)
        finally:
            lock.release()
        assert results == expected

    def test_forked_batch_survives_sibling_inside_the_fulltext_lock(
        self, stress_db, stress_texts
    ):
        # Every columnar read enters FullTextIndex._lock, so a COLD
        # engine's forked workers must not inherit it held. An RLock is
        # reentrant for the forking thread, so the holder has to be a
        # sibling thread for this to bite.
        from repro.core import Quest
        from repro.errors import QuestError
        from repro.wrapper import FullAccessWrapper

        expected = Quest(FullAccessWrapper(backend_for(stress_db))).search_many(
            stress_texts[:4]
        )
        cold = Quest(FullAccessWrapper(backend_for(stress_db)))
        try:
            lock = cold.wrapper.fulltext._lock
        except QuestError:
            pytest.skip("backend has no in-process full-text index")
        held = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                held.set()
                release.wait(120)

        sibling = threading.Thread(target=holder)
        sibling.start()
        assert held.wait(5)
        try:
            results = cold.search_many(stress_texts[:4], workers=2)
        finally:
            release.set()
            sibling.join(5)
        assert results == expected

    def test_search_many_degrades_to_sequential_under_contention(
        self, stress_engine, stress_texts
    ):
        from repro.core import batch

        expected = stress_engine.search_many(stress_texts[:4])
        assert batch._PAYLOAD_LOCK.acquire(timeout=5)
        try:
            start = time.perf_counter()
            results = stress_engine.search_many(stress_texts[:4], workers=2)
            elapsed = time.perf_counter() - start
        finally:
            batch._PAYLOAD_LOCK.release()
        assert results == expected
        # It ran (sequentially) instead of parking on the sibling's lock.
        assert elapsed < 60.0
        assert len(stress_engine.batch_traces) == 4


def _identity_worker(item):  # pragma: no cover - never reached (lock held)
    return item


class TestFeedbackStoreConcurrency:
    def test_concurrent_append_and_snapshot_iteration(self, mini_engine):
        configuration = mini_engine.forward(["kubrick"], 1)[0]
        store = FeedbackStore()
        stop = threading.Event()
        errors = []

        def writer():
            for index in range(200):
                if index % 3:
                    store.add_validation(["kubrick"], configuration)
                else:
                    store.add_rejection(["kubrick"], configuration)

        def reader():
            while not stop.is_set():
                try:
                    seen = list(store)
                    assert store.positive_count() + store.negative_count() >= 0
                    for record in seen:
                        assert record.keywords == ("kubrick",)
                except BaseException as error:  # pragma: no cover
                    errors.append(error)
                    return

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer) for _ in range(4)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        assert len(store) == 4 * 200
        assert store.positive_count() + store.negative_count() == len(store)


class TestMutateWhileSearch:
    """Live mutation racing concurrent readers (the durability tier's S3
    contract): every concurrent observation of a mutated batch is all-or-
    nothing — pre-state or post-state, never a torn half-applied batch —
    and the delta-layered index the readers raced is bit-identical to a
    sequential rebuild once the dust settles."""

    BATCH = 6

    def _mutating_backend(self):
        from repro.datasets import mixed, mondial
        from repro.storage import create_backend

        db = mondial.generate(countries=8, seed=31)
        backend = create_backend("memory", db)
        ops = [
            op
            for op in mixed.generate_ops(
                db, 120, profile="oltp", seed=13, batch=self.BATCH
            )
            if op.kind != "search"
        ]
        return backend, ops

    def test_readers_see_whole_batches_or_nothing(self):
        backend, ops = self._mutating_backend()
        adds = [op for op in ops if op.kind == "add"]

        # Every op applies atomically, so the only legal observations of
        # a probe's live row count are the counts holding *between* ops.
        # (Generated keys embed their probe — "probeSxN-counter" — so a
        # delete's effect can be attributed without extra bookkeeping.)
        valid = {op.probe: {0} for op in adds}
        live = {op.probe: 0 for op in adds}
        for op in ops:
            if op.kind == "add":
                live[op.probe] = self.BATCH
                valid[op.probe].add(self.BATCH)
            else:
                for key in op.keys:
                    probe = str(key[0]).rsplit("-", 1)[0]
                    live[probe] -= 1
                    valid[probe].add(live[probe])
        torn = []
        stop = threading.Event()

        def reader():
            # Positions are immune to global-statistics drift (unlike
            # scores), so a partially applied batch is directly visible:
            # a count no between-ops state ever held.
            while not stop.is_set():
                for op in adds:
                    for ref, _score in backend.fulltext.attribute_scores(
                        op.probe
                    ).items():
                        count = len(
                            backend.fulltext.matching_row_positions(
                                op.probe, ref
                            )
                        )
                        if count not in valid[op.probe]:
                            torn.append((op.probe, str(ref), count))

        readers = [threading.Thread(target=reader) for _ in range(THREADS)]
        for thread in readers:
            thread.start()
        from repro.datasets import mixed

        for op in ops:
            mixed.apply_op(backend, op)
        stop.set()
        for thread in readers:
            thread.join()
        assert not torn, f"torn batch observations: {torn[:5]}"

    def test_engine_searches_never_fail_and_settle_bit_identically(self):
        from repro.datasets import mixed, mondial
        from repro.db.fulltext import FullTextIndex
        from repro.storage import create_backend

        backend, ops = self._mutating_backend()
        engine = Quest(FullAccessWrapper(backend))
        probes = [op.probe for op in ops if op.kind == "add"]
        errors = []
        stop = threading.Event()

        def searcher():
            while not stop.is_set():
                for probe in probes:
                    try:
                        engine.search(probe, 3)
                    except BaseException as error:  # pragma: no cover
                        errors.append(error)
                        return

        searchers = [threading.Thread(target=searcher) for _ in range(THREADS)]
        for thread in searchers:
            thread.start()
        for op in ops:
            mixed.apply_op(backend, op)
        stop.set()
        for thread in searchers:
            thread.join()
        assert not errors

        # Settled state: the index the readers raced (sealed snapshot +
        # delta layers + tombstones) scores bit-identically to a from-
        # scratch sequential rebuild of the same mutation history.
        db = mondial.generate(countries=8, seed=31)
        sequential = create_backend("memory", db)
        for op in ops:
            mixed.apply_op(sequential, op)
        rebuilt = FullTextIndex(sequential.database)
        for probe in probes:
            assert backend.fulltext.attribute_scores(
                probe
            ) == rebuilt.attribute_scores(probe)
