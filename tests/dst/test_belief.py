"""Tests for belief, plausibility and pignistic ranking."""

import pytest

from repro.dst import MassFunction, belief, pignistic, plausibility, rank_hypotheses


@pytest.fixture()
def mass() -> MassFunction:
    m = MassFunction(frame={"a", "b", "c"})
    m.assign(frozenset({"a"}), 0.5)
    m.assign(frozenset({"a", "b"}), 0.3)
    m.assign(frozenset({"a", "b", "c"}), 0.2)
    return m


class TestBeliefPlausibility:
    def test_belief_is_contained_mass(self, mass):
        assert belief(mass, {"a"}) == pytest.approx(0.5)
        assert belief(mass, {"a", "b"}) == pytest.approx(0.8)
        assert belief(mass, {"a", "b", "c"}) == pytest.approx(1.0)

    def test_plausibility_is_intersecting_mass(self, mass):
        assert plausibility(mass, {"a"}) == pytest.approx(1.0)
        assert plausibility(mass, {"b"}) == pytest.approx(0.5)
        assert plausibility(mass, {"c"}) == pytest.approx(0.2)

    def test_belief_below_plausibility(self, mass):
        for h in ("a", "b", "c"):
            assert belief(mass, {h}) <= plausibility(mass, {h}) + 1e-12


class TestPignistic:
    def test_distributes_group_mass(self, mass):
        probabilities = pignistic(mass)
        assert probabilities["a"] == pytest.approx(0.5 + 0.15 + 0.2 / 3)
        assert probabilities["b"] == pytest.approx(0.15 + 0.2 / 3)
        assert probabilities["c"] == pytest.approx(0.2 / 3)

    def test_sums_to_one(self, mass):
        assert sum(pignistic(mass).values()) == pytest.approx(1.0)


class TestRanking:
    def test_order(self, mass):
        ranked = rank_hypotheses(mass)
        assert [h for h, _p in ranked] == ["a", "b", "c"]

    def test_k_truncation(self, mass):
        assert len(rank_hypotheses(mass, 2)) == 2

    def test_deterministic_tie_break(self):
        m = MassFunction.from_scores({"b": 1.0, "a": 1.0})
        assert [h for h, _p in rank_hypotheses(m)] == ["a", "b"]
