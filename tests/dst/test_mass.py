"""Tests for mass functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dst import MassFunction
from repro.errors import CombinationError


class TestFromScores:
    def test_scores_normalised_to_singletons(self):
        mass = MassFunction.from_scores({"a": 2.0, "b": 2.0}, ignorance=0.0)
        assert mass.mass({"a"}) == pytest.approx(0.5)
        assert mass.mass({"b"}) == pytest.approx(0.5)
        mass.validate()

    def test_ignorance_goes_to_frame(self):
        mass = MassFunction.from_scores({"a": 1.0}, ignorance=0.3, frame={"a", "b"})
        assert mass.mass({"a"}) == pytest.approx(0.7)
        assert mass.ignorance() == pytest.approx(0.3)
        mass.validate()

    def test_zero_scores_dropped(self):
        mass = MassFunction.from_scores({"a": 1.0, "b": 0.0})
        assert mass.mass({"b"}) == 0.0

    def test_all_zero_scores_gives_vacuous(self):
        mass = MassFunction.from_scores({"a": 0.0}, frame={"a", "b"})
        assert mass.ignorance() == 1.0

    def test_negative_score_rejected(self):
        with pytest.raises(CombinationError):
            MassFunction.from_scores({"a": -1.0})

    def test_bad_ignorance_rejected(self):
        with pytest.raises(CombinationError):
            MassFunction.from_scores({"a": 1.0}, ignorance=1.5)

    def test_empty_frame_rejected(self):
        with pytest.raises(CombinationError):
            MassFunction.from_scores({}, frame=set())

    @given(
        st.dictionaries(
            st.sampled_from("abcdef"),
            st.floats(min_value=0.01, max_value=100),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_always_valid(self, scores, ignorance):
        mass = MassFunction.from_scores(scores, ignorance)
        mass.validate()
        assert mass.total() == pytest.approx(1.0)


class TestAssign:
    def test_accumulates(self):
        mass = MassFunction()
        mass.assign(frozenset({"a"}), 0.3)
        mass.assign(frozenset({"a"}), 0.2)
        assert mass.mass({"a"}) == pytest.approx(0.5)

    def test_empty_set_cannot_carry_mass(self):
        mass = MassFunction()
        with pytest.raises(CombinationError):
            mass.assign(frozenset(), 0.1)

    def test_zero_mass_on_empty_is_noop(self):
        mass = MassFunction()
        mass.assign(frozenset(), 0.0)
        assert mass.focal_elements == ()

    def test_negative_mass_rejected(self):
        mass = MassFunction()
        with pytest.raises(CombinationError):
            mass.assign(frozenset({"a"}), -0.1)

    def test_frame_grows_with_focals(self):
        mass = MassFunction()
        mass.assign(frozenset({"a", "b"}), 1.0)
        assert mass.frame == frozenset({"a", "b"})


class TestNormalize:
    def test_normalize(self):
        mass = MassFunction()
        mass.assign(frozenset({"a"}), 2.0)
        mass.assign(frozenset({"b"}), 2.0)
        mass.normalize()
        mass.validate()

    def test_normalize_empty_rejected(self):
        with pytest.raises(CombinationError):
            MassFunction().normalize()


class TestVacuous:
    def test_vacuous(self):
        mass = MassFunction.vacuous({"a", "b"})
        assert mass.ignorance() == 1.0
        mass.validate()

    def test_vacuous_needs_frame(self):
        with pytest.raises(CombinationError):
            MassFunction.vacuous(set())


class TestEquality:
    def test_equal_masses(self):
        left = MassFunction.from_scores({"a": 1.0, "b": 1.0})
        right = MassFunction.from_scores({"a": 2.0, "b": 2.0})
        assert left == right

    def test_unequal_masses(self):
        left = MassFunction.from_scores({"a": 1.0})
        right = MassFunction.from_scores({"b": 1.0})
        assert left != right
