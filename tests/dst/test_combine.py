"""Tests for Dempster's rule and the QUEST combiner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dst import MassFunction, combine_scores, conflict, dempster_combine
from repro.errors import CombinationError


class TestDempsterRule:
    def test_textbook_example(self):
        # Shafer's classic: two witnesses, partial agreement.
        left = MassFunction.from_scores({"a": 0.8, "b": 0.2})
        right = MassFunction.from_scores({"a": 0.6, "c": 0.4}, frame={"a", "b", "c"})
        combined = dempster_combine(left, right)
        # Only {a}∩{a} survives: all mass concentrates on a.
        assert combined.mass({"a"}) == pytest.approx(1.0)

    def test_agreement_reinforces(self):
        left = MassFunction.from_scores({"a": 0.7, "b": 0.3}, ignorance=0.2)
        right = MassFunction.from_scores({"a": 0.7, "b": 0.3}, ignorance=0.2)
        combined = dempster_combine(left, right)
        # Two independent sources agreeing on `a` make it more certain than
        # either source alone.
        assert combined.mass({"a"}) > 0.56

    def test_vacuous_is_neutral(self):
        evidence = MassFunction.from_scores({"a": 0.7, "b": 0.3})
        vacuous = MassFunction.vacuous({"a", "b"})
        combined = dempster_combine(evidence, vacuous)
        assert combined == evidence

    def test_total_conflict_raises(self):
        left = MassFunction.from_scores({"a": 1.0})
        right = MassFunction.from_scores({"b": 1.0})
        with pytest.raises(CombinationError):
            dempster_combine(left, right)

    def test_conflict_coefficient(self):
        left = MassFunction.from_scores({"a": 0.5, "b": 0.5})
        right = MassFunction.from_scores({"a": 1.0}, frame={"a", "b"})
        assert conflict(left, right) == pytest.approx(0.5)

    def test_commutative(self):
        left = MassFunction.from_scores({"a": 0.6, "b": 0.4}, ignorance=0.1)
        right = MassFunction.from_scores({"b": 0.5, "c": 0.5}, ignorance=0.3)
        frame = {"a", "b", "c"}
        left = MassFunction.from_scores({"a": 0.6, "b": 0.4}, 0.1, frame)
        right = MassFunction.from_scores({"b": 0.5, "c": 0.5}, 0.3, frame)
        assert dempster_combine(left, right) == dempster_combine(right, left)

    def test_result_is_valid(self):
        left = MassFunction.from_scores({"a": 0.6, "b": 0.4}, 0.25)
        right = MassFunction.from_scores({"a": 0.3, "b": 0.7}, 0.4)
        dempster_combine(left, right).validate()


class TestCombineScores:
    def test_agreeing_hypothesis_wins(self):
        ranked = combine_scores(
            {"a": 0.6, "b": 0.4},
            {"a": 0.5, "c": 0.5},
            0.2,
            0.2,
        )
        assert ranked[0][0] == "a"

    def test_ignorance_shifts_weight(self):
        # Identical score profiles, but the right source is near-ignorant:
        # the left source's favourite must win.
        confident_left = combine_scores(
            {"a": 0.9, "b": 0.1}, {"a": 0.1, "b": 0.9}, 0.05, 0.9
        )
        assert confident_left[0][0] == "a"
        confident_right = combine_scores(
            {"a": 0.9, "b": 0.1}, {"a": 0.1, "b": 0.9}, 0.9, 0.05
        )
        assert confident_right[0][0] == "b"

    def test_k_truncates(self):
        ranked = combine_scores(
            {"a": 1.0, "b": 0.5, "c": 0.2}, {"a": 1.0}, 0.3, 0.3, k=2
        )
        assert len(ranked) == 2

    def test_one_sided_hypotheses_survive(self):
        # `c` is known only to the right source; the left source's
        # ignorance must let it survive combination.
        ranked = combine_scores({"a": 1.0}, {"c": 1.0}, 0.5, 0.5)
        hypotheses = [h for h, _p in ranked]
        assert "c" in hypotheses and "a" in hypotheses

    def test_empty_sources_rejected(self):
        with pytest.raises(CombinationError):
            combine_scores({}, {}, 0.1, 0.1)

    def test_probabilities_sum_to_one(self):
        ranked = combine_scores(
            {"a": 0.5, "b": 0.3}, {"b": 0.5, "c": 0.7}, 0.2, 0.4
        )
        assert sum(p for _h, p in ranked) == pytest.approx(1.0)

    @given(
        st.dictionaries(
            st.sampled_from("abcd"),
            st.floats(min_value=0.01, max_value=10),
            min_size=1,
            max_size=4,
        ),
        st.dictionaries(
            st.sampled_from("cdef"),
            st.floats(min_value=0.01, max_value=10),
            min_size=1,
            max_size=4,
        ),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_always_a_valid_distribution(self, left, right, o1, o2):
        ranked = combine_scores(left, right, o1, o2)
        assert sum(p for _h, p in ranked) == pytest.approx(1.0)
        assert all(p >= 0 for _h, p in ranked)
