"""Backend parity and behaviour tests for the storage subsystem.

The contract under test: for the same loaded data, every backend reports
bit-identical full-text scores, identical statistics and identical query
result counts — so rankings never depend on where the bytes live.
"""

import math

import pytest

from repro.core import Quest
from repro.datasets import mondial
from repro.db import (
    ColumnRef,
    Comparison,
    JoinCondition,
    Predicate,
    SelectQuery,
    TableRef,
)
from repro.errors import ExecutionError, IntegrityError, QuestError
from repro.eval import evaluate_backends
from repro.storage import (
    BACKENDS,
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    as_backend,
    create_backend,
)
from repro.wrapper import FullAccessWrapper

from tests.conftest import build_mini_db

KEYWORDS = ["kubrick", "scott", "scifi", "alien", "1979", "the", "shining", "absent"]
REFS = [
    ColumnRef("movie", "title"),
    ColumnRef("person", "name"),
    ColumnRef("genre", "label"),
    ColumnRef("movie", "year"),
]


@pytest.fixture()
def mini_backends():
    db = build_mini_db()
    return {name: create_backend(name, db) for name in BACKENDS}


class TestRegistry:
    def test_known_backends(self):
        assert set(BACKENDS) == {"memory", "sqlite"}

    def test_unknown_backend_rejected(self, mini_db):
        with pytest.raises(QuestError, match="unknown storage backend"):
            create_backend("duckdb", mini_db)

    def test_as_backend_wraps_database(self, mini_db):
        backend = as_backend(mini_db)
        assert isinstance(backend, MemoryBackend)
        assert backend.database is mini_db

    def test_as_backend_passes_backends_through(self, mini_db):
        backend = MemoryBackend(mini_db)
        assert as_backend(backend) is backend

    def test_as_backend_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_backend(object())


class TestRowParity:
    def test_rows_and_counts_match(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for table in memory.schema.table_names:
            assert memory.table_rows(table) == sqlite.table_rows(table)
            assert memory.row_count(table) == sqlite.row_count(table)
        assert memory.total_rows() == sqlite.total_rows()

    def test_column_values_round_trip_types(self, mini_backends):
        for ref in REFS:
            values = {
                name: backend.column_values(ref)
                for name, backend in mini_backends.items()
            }
            assert values["memory"] == values["sqlite"]
            # types round-trip, not just reprs
            for left, right in zip(values["memory"], values["sqlite"]):
                assert type(left) is type(right)


class TestFullTextParity:
    def test_attribute_scores_bit_identical(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for keyword in KEYWORDS:
            left, right = (
                memory.attribute_scores(keyword),
                sqlite.attribute_scores(keyword),
            )
            assert left == right  # exact float equality is the contract
            for ref, score in left.items():
                assert math.isfinite(score) and score > 0.0

    def test_point_scores_and_selectivity(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for keyword in KEYWORDS:
            for ref in REFS:
                assert memory.score(keyword, ref) == sqlite.score(keyword, ref)
                assert memory.selectivity(keyword, ref) == sqlite.selectivity(
                    keyword, ref
                )

    def test_matching_row_positions(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for keyword in KEYWORDS:
            for ref in REFS:
                assert memory.matching_row_positions(
                    keyword, ref
                ) == sqlite.matching_row_positions(keyword, ref)

    def test_punctuated_terms_fall_back_identically(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        ref = ColumnRef("person", "name")
        for term in ["kubrick's", "a b", ""]:
            assert memory.matching_row_positions(
                term, ref
            ) == sqlite.matching_row_positions(term, ref)


class TestExecutionParity:
    QUERIES = [
        SelectQuery(tables=(TableRef.of("movie"),)),
        SelectQuery(
            tables=(TableRef.of("movie", "m"), TableRef.of("person", "p")),
            joins=(JoinCondition("m", "director_id", "p", "id"),),
            predicates=(Predicate("p", "name", Comparison.CONTAINS, "KUBRICK"),),
            projection=(("m", "title"),),
        ),
        SelectQuery(
            tables=(TableRef.of("movie"),),
            predicates=(Predicate("movie", "title", Comparison.LIKE, "The %"),),
        ),
        SelectQuery(
            tables=(TableRef.of("movie"),),
            predicates=(Predicate("movie", "year", Comparison.GE, 1980),),
            projection=(("movie", "year"),),
            distinct=True,
        ),
        SelectQuery(tables=(TableRef.of("person"), TableRef.of("genre"))),
        SelectQuery(
            tables=(TableRef.of("movie", "m1"), TableRef.of("movie", "m2")),
            joins=(JoinCondition("m1", "director_id", "m2", "director_id"),),
            predicates=(Predicate("m1", "title", Comparison.EQ, "Alien"),),
            projection=(("m2", "title"),),
        ),
    ]

    def test_result_sets_match(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for query in self.QUERIES:
            left, right = memory.execute(query), sqlite.execute(query)
            assert left.columns == right.columns
            assert sorted(map(str, left.rows)) == sorted(map(str, right.rows))
            assert memory.result_count(query) == sqlite.result_count(query)

    def test_limit_counts_match(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        query = SelectQuery(tables=(TableRef.of("movie"),), limit=2)
        assert memory.result_count(query) == sqlite.result_count(query) == 2

    def test_type_mismatch_raises_on_both(self, mini_backends):
        query = SelectQuery(
            tables=(TableRef.of("movie"),),
            predicates=(Predicate("movie", "year", Comparison.LT, "abc"),),
        )
        for backend in mini_backends.values():
            with pytest.raises(ExecutionError):
                backend.execute(query)


class TestStatisticsParity:
    def test_profiles_and_join_stats(self, mini_backends):
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for ref in memory.schema.column_refs():
            assert memory.catalog.profile(ref) == sqlite.catalog.profile(ref)
        for fk in memory.schema.foreign_keys:
            assert memory.catalog.join_stats(fk) == sqlite.catalog.join_stats(fk)
        for table in memory.schema.table_names:
            assert memory.catalog.table_cardinality(
                table
            ) == sqlite.catalog.table_cardinality(table)


class TestMutation:
    def test_insert_keeps_search_consistent(self, mini_backends):
        for backend in mini_backends.values():
            assert backend.attribute_scores("akerman") == {}
            backend.insert("person", {"id": 9, "name": "Chantal Akerman"})
            scores = backend.attribute_scores("akerman")
            assert scores and ColumnRef("person", "name") in scores
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        assert memory.attribute_scores("akerman") == sqlite.attribute_scores(
            "akerman"
        )
        assert memory.table_rows("person") == sqlite.table_rows("person")

    def test_insert_many_counts(self, mini_backends):
        rows = [
            {"id": 21, "name": "Greta Gerwig"},
            {"id": 22, "name": "Wes Anderson"},
        ]
        for backend in mini_backends.values():
            assert backend.insert_many("person", rows) == 2
            assert backend.row_count("person") == 5

    def test_duplicate_primary_key_raises(self, mini_backends):
        for backend in mini_backends.values():
            with pytest.raises(IntegrityError):
                backend.insert("person", {"id": 1, "name": "Duplicate"})

    def test_not_null_enforced(self, mini_backends):
        for backend in mini_backends.values():
            with pytest.raises(IntegrityError):
                backend.insert("person", {"id": 30, "name": None})

    def test_failed_batch_keeps_prefix_on_both_backends(self, mini_backends):
        # A mid-batch failure keeps the rows inserted before it — on
        # every backend — so the stores never silently diverge.
        rows = [
            {"id": 60, "name": "Claire Denis"},
            {"id": 1, "name": "Duplicate Key"},
        ]
        for backend in mini_backends.values():
            with pytest.raises(IntegrityError):
                backend.insert_many("person", rows)
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        assert memory.table_rows("person") == sqlite.table_rows("person")
        assert memory.row_count("person") == 4  # prefix row landed

    def test_scores_exact_after_failed_insert(self, mini_backends):
        # A rolled-back insert must not corrupt the TF normalisers.
        for backend in mini_backends.values():
            with pytest.raises(IntegrityError):
                backend.insert("person", {"id": 1, "name": "Kubrick Clone"})
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        ref = ColumnRef("person", "name")
        assert sqlite.selectivity("kubrick", ref) == 1 / 3
        assert memory.attribute_scores("kubrick") == sqlite.attribute_scores(
            "kubrick"
        )

    def test_version_advances_on_insert(self, mini_backends):
        for backend in mini_backends.values():
            before = backend.version
            backend.insert("person", {"id": 40, "name": "Jane Campion"})
            assert backend.version > before

    def test_live_engine_sees_inserts_without_manual_invalidation(self):
        # The wrapper's emission LRU is keyed to the backend version, so
        # emission evidence after a mutation must reflect the new rows
        # even though the keyword's vector was already cached.
        for name in BACKENDS:
            backend = create_backend(name, build_mini_db())
            engine = Quest(FullAccessWrapper(backend))
            assert engine.evidence_coverage(["tarkovsky"]) == 0.0
            backend.insert("person", {"id": 50, "name": "Andrei Tarkovsky"})
            assert engine.evidence_coverage(["tarkovsky"]) == 1.0, name


class TestSQLitePersistence:
    def test_round_trip_through_file(self, tmp_path):
        db = build_mini_db()
        path = str(tmp_path / "mini.db")
        original = SQLiteBackend.from_database(db, path=path)
        expected_scores = original.attribute_scores("kubrick")
        expected_rows = original.table_rows("movie")
        original.close()

        reopened = SQLiteBackend.open(db.schema, path)
        assert reopened.table_rows("movie") == expected_rows
        assert reopened.attribute_scores("kubrick") == expected_scores
        reopened.close()

    def test_refresh_rebuilds_index(self):
        db = build_mini_db()
        backend = SQLiteBackend.from_database(db)
        before = backend.attribute_scores("kubrick")
        backend.refresh()
        assert backend.attribute_scores("kubrick") == before

    def test_repr_reports_index_kind(self):
        backend = SQLiteBackend.from_database(build_mini_db())
        assert "SQLiteBackend" in repr(backend)
        assert ("fts5" in repr(backend)) == backend.fts_enabled


class TestSQLiteServingPosture:
    """The pragmas and fork behaviour multi-process serving relies on."""

    @staticmethod
    def _pragma(backend, name):
        return backend._connection.execute(f"PRAGMA {name}").fetchone()[0]

    def test_file_backed_store_runs_wal_normal_with_busy_timeout(self, tmp_path):
        backend = SQLiteBackend.from_database(
            build_mini_db(), path=str(tmp_path / "wal.db")
        )
        assert self._pragma(backend, "journal_mode") == "wal"
        assert self._pragma(backend, "synchronous") == 1  # NORMAL
        assert self._pragma(backend, "busy_timeout") == 5000
        backend.close()

    def test_memory_store_skips_wal_but_keeps_busy_timeout(self):
        backend = SQLiteBackend.from_database(build_mini_db())
        assert self._pragma(backend, "journal_mode") != "wal"
        assert self._pragma(backend, "busy_timeout") == 5000

    def test_forked_child_gets_its_own_connection_with_pragmas(self, tmp_path):
        backend = SQLiteBackend.from_database(
            build_mini_db(), path=str(tmp_path / "forked.db")
        )
        parent_connection = backend._connection
        expected = backend.table_rows("movie")
        # Simulate waking up in a forked child: the pid guard must swap
        # in a fresh connection (SQLite handles don't survive fork) and
        # re-apply the serving pragmas on it.
        backend._pid = -1
        child_connection = backend._connection
        assert child_connection is not parent_connection
        assert self._pragma(backend, "journal_mode") == "wal"
        assert self._pragma(backend, "busy_timeout") == 5000
        assert backend.table_rows("movie") == expected
        backend.close()

    def test_memory_store_keeps_its_connection_across_pid_change(self):
        backend = SQLiteBackend.from_database(build_mini_db())
        connection = backend._connection
        backend._pid = -1
        # Reconnecting a :memory: store would open an *empty* database;
        # the fork-copied connection is private to the child and correct.
        assert backend._connection is connection

    def test_concurrent_process_reads_same_wal_file(self, tmp_path):
        import os as _os

        path = str(tmp_path / "shared.db")
        backend = SQLiteBackend.from_database(build_mini_db(), path=path)
        expected = backend.attribute_scores("kubrick")
        read_fd, write_fd = _os.pipe()
        pid = _os.fork()
        if pid == 0:
            status = 1
            try:
                _os.close(read_fd)
                child_scores = backend.attribute_scores("kubrick")
                verdict = b"ok" if child_scores == expected else b"differs"
                _os.write(write_fd, verdict)
                _os.close(write_fd)
                status = 0
            finally:
                _os._exit(status)
        _os.close(write_fd)
        verdict = _os.read(read_fd, 16)
        _os.close(read_fd)
        _, wait_status = _os.waitpid(pid, 0)
        assert _os.waitstatus_to_exitcode(wait_status) == 0
        assert verdict == b"ok"
        # The parent's own connection is untouched by the child's reads.
        assert backend.attribute_scores("kubrick") == expected
        backend.close()


class TestWrapperBinding:
    def test_wrapper_accepts_backend(self, mini_db):
        for name in BACKENDS:
            wrapper = FullAccessWrapper(create_backend(name, mini_db))
            assert isinstance(wrapper.backend, StorageBackend)
            assert wrapper.catalog.has_instance

    def test_database_property_gated_by_backend(self, mini_db):
        memory = FullAccessWrapper(create_backend("memory", mini_db))
        assert memory.database is mini_db
        sqlite = FullAccessWrapper(create_backend("sqlite", mini_db))
        with pytest.raises(QuestError):
            sqlite.database
        with pytest.raises(QuestError):
            sqlite.fulltext

    def test_prebuilt_fulltext_requires_database_source(self, mini_db):
        backend = create_backend("sqlite", mini_db)
        from repro.db import FullTextIndex

        with pytest.raises(QuestError):
            FullAccessWrapper(backend, fulltext=FullTextIndex(mini_db))


class TestSearchParity:
    """The acceptance criterion: identical rankings through the full engine."""

    @pytest.fixture(scope="class")
    def mondial_setup(self):
        db = mondial.generate(countries=10, seed=23)
        texts = [
            q.text for q in mondial.workload(db, queries_per_kind=2, seed=23)
        ]
        return db, texts

    def test_search_many_rankings_identical(self, mondial_setup):
        db, texts = mondial_setup
        results = {}
        for name in BACKENDS:
            engine = Quest(FullAccessWrapper(create_backend(name, db)))
            results[name] = engine.search_many(texts)
        assert results["memory"] == results["sqlite"]
        assert any(results["memory"])  # the workload actually answers

    def test_evaluate_backends_agree_on_quality(self, mondial_setup):
        db, texts = mondial_setup
        workload = mondial.workload(db, queries_per_kind=2, seed=23)
        per_backend = evaluate_backends(db, workload, k=5)
        summaries = {
            name: {
                metric: value
                for metric, value in result.summary().items()
                if metric != "mean_seconds"  # timing is the one honest delta
            }
            for name, result in per_backend.items()
        }
        assert summaries["memory"] == summaries["sqlite"]

    def test_workload_derivable_from_any_backend(self, mondial_setup):
        db, _texts = mondial_setup
        backend = create_backend("sqlite", db)
        from_db = mondial.workload(db, queries_per_kind=2, seed=23)
        from_backend = mondial.workload(backend, queries_per_kind=2, seed=23)
        assert [q.text for q in from_db] == [q.text for q in from_backend]
        assert [q.gold_query for q in from_db] == [
            q.gold_query for q in from_backend
        ]


class TestDatasetLoaders:
    def test_generate_backend_parameter(self):
        backend = mondial.generate(countries=5, seed=23, backend="sqlite")
        assert isinstance(backend, SQLiteBackend)
        database = mondial.generate(countries=5, seed=23)
        memory = mondial.generate(countries=5, seed=23, backend="memory")
        assert isinstance(memory, MemoryBackend)
        for table in database.schema.table_names:
            assert backend.table_rows(table) == database.table_rows(table)

    def test_generate_backend_options_forwarded(self, tmp_path):
        path = str(tmp_path / "mondial.db")
        backend = mondial.generate(countries=5, seed=23, backend="sqlite", path=path)
        assert backend.path == path
        assert backend.row_count("country") == 5


class TestBatchedMutation:
    """``add_rows``/``delete_rows`` — the journaled batch write path.

    Contrast with ``insert_many`` above: the legacy path keeps the
    prefix of a failed batch, the batched path validates everything
    up front and lands all rows or none.
    """

    BATCH = [
        {"id": 60, "name": "Claire Denis"},
        {"id": 61, "name": "Lucrecia Martel"},
    ]

    def test_add_rows_parity(self, mini_backends):
        for backend in mini_backends.values():
            landed = backend.add_rows("person", self.BATCH)
            assert len(landed) == 2
            assert backend.row_count("person") == 5
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for keyword in ("denis", "martel", "kubrick"):
            assert memory.attribute_scores(keyword) == sqlite.attribute_scores(
                keyword
            ), keyword
        assert memory.table_rows("person") == sqlite.table_rows("person")

    def test_add_rows_accepts_positional_rows(self, mini_backends):
        for backend in mini_backends.values():
            backend.add_rows("person", [[70, "Agnes Varda"]])
            assert backend.attribute_scores("varda")

    def test_failed_batch_lands_nothing(self, mini_backends):
        # All-or-nothing: the valid first row must NOT land when a later
        # row fails validation (unlike insert_many's prefix semantics).
        rows = [
            {"id": 60, "name": "Claire Denis"},
            {"id": 1, "name": "Duplicate Key"},
        ]
        for backend in mini_backends.values():
            with pytest.raises(IntegrityError):
                backend.add_rows("person", rows)
            assert backend.row_count("person") == 3
            assert backend.attribute_scores("denis") == {}
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        assert memory.table_rows("person") == sqlite.table_rows("person")

    def test_batch_internal_duplicate_lands_nothing(self, mini_backends):
        rows = [
            {"id": 60, "name": "Claire Denis"},
            {"id": 60, "name": "Clone Denis"},
        ]
        for backend in mini_backends.values():
            with pytest.raises(IntegrityError, match="duplicate"):
                backend.add_rows("person", rows)
            assert backend.row_count("person") == 3

    def test_delete_rows_idempotent_parity(self, mini_backends):
        for backend in mini_backends.values():
            backend.add_rows("person", self.BATCH)
            assert backend.delete_rows("person", [(60,), (61,)]) == 2
            assert backend.delete_rows("person", [(60,), (99,)]) == 0
            assert backend.row_count("person") == 3
            assert backend.attribute_scores("denis") == {}
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        for keyword in KEYWORDS:
            assert memory.attribute_scores(keyword) == sqlite.attribute_scores(
                keyword
            ), keyword

    def test_positions_never_reused_after_delete(self, mini_backends):
        # Tombstoned positions stay dead: a row added after a delete gets
        # a fresh position, so sealed artifacts and mmap readers never
        # see a recycled slot with different content.
        ref = ColumnRef("person", "name")
        for backend in mini_backends.values():
            before = max(backend.matching_row_positions("kubrick", ref) or [0])
            backend.delete_rows("person", [(1,)])
            backend.add_rows("person", [{"id": 80, "name": "Kelly Reichardt"}])
            positions = backend.matching_row_positions("reichardt", ref)
            assert positions and min(positions) > before
        memory, sqlite = mini_backends["memory"], mini_backends["sqlite"]
        assert memory.matching_row_positions(
            "reichardt", ref
        ) == sqlite.matching_row_positions("reichardt", ref)

    def test_applied_seq_advances_with_journal(self, tmp_path):
        from repro.journal import MutationJournal

        for name in BACKENDS:
            backend = create_backend(name, build_mini_db())
            journal = MutationJournal(tmp_path / f"{name}.journal")
            backend.attach_journal(journal)
            assert backend.applied_seq == 0
            backend.add_rows("person", self.BATCH)
            assert backend.applied_seq == 1
            backend.delete_rows("person", [(60,)])
            assert backend.applied_seq == 2
            assert [r.seq for r in journal.records()] == [1, 2]
            journal.close()

    def test_version_advances_on_batched_writes(self, mini_backends):
        for backend in mini_backends.values():
            v0 = backend.version
            backend.add_rows("person", self.BATCH)
            assert backend.version > v0
            v1 = backend.version
            backend.delete_rows("person", [(60,)])
            assert backend.version > v1
