"""SQL pushdown parity: CTE answers must equal the in-memory answers.

Three pushdown surfaces, each compared against the shared in-memory
implementation on the same mondial data:

* ``connected_nodes`` — recursive reachability CTE vs BFS;
* ``join_path_candidates`` — bounded recursive CTE enumeration vs the
  in-memory ``enumerate_join_paths`` (orderings and costs included);
* bounded ``result_count(query, limit)`` — the Explain stage's probe
  must make the same keep/drop decision the exact count would.
"""

import itertools

import pytest

from repro.core import Quest, QuestSettings
from repro.datasets import mondial
from repro.steiner.weights import build_schema_graph
from repro.storage import create_backend
from repro.wrapper import FullAccessWrapper


@pytest.fixture(scope="module")
def pushdown_pair():
    db = mondial.generate(countries=10, seed=29)
    memory = create_backend("memory", db)
    sqlite = create_backend("sqlite", db)
    graph = build_schema_graph(memory.schema, memory.catalog)
    return db, memory, sqlite, graph


def test_sqlite_advertises_pushdown(pushdown_pair):
    _db, memory, sqlite, _graph = pushdown_pair
    assert sqlite.supports_graph_pushdown
    assert sqlite.supports_count_pushdown
    assert not memory.supports_graph_pushdown
    assert not memory.supports_count_pushdown


def test_connected_nodes_cte_matches_bfs(pushdown_pair):
    _db, memory, sqlite, graph = pushdown_pair
    for start in graph.nodes:
        assert sqlite.connected_nodes(graph, start) == memory.connected_nodes(
            graph, start
        )


def test_connected_nodes_unknown_start_empty(pushdown_pair):
    _db, memory, sqlite, graph = pushdown_pair
    from repro.db import ColumnRef

    ghost = ColumnRef("no_such_table", "no_such_column")
    assert sqlite.connected_nodes(graph, ghost) == set()
    assert memory.connected_nodes(graph, ghost) == set()


@pytest.mark.parametrize("k,max_hops", [(1, 2), (3, 3), (5, 4)])
def test_join_path_candidates_cte_matches_memory(pushdown_pair, k, max_hops):
    """Same paths, same costs, same order — including self-pairs."""
    _db, memory, sqlite, graph = pushdown_pair
    nodes = sorted(graph.nodes, key=str)[:7]
    pairs = list(itertools.combinations(nodes, 2)) + [(nodes[0], nodes[0])]
    assert sqlite.join_path_candidates(
        graph, pairs, k, max_hops
    ) == memory.join_path_candidates(graph, pairs, k, max_hops)


def test_graph_sync_tracks_mutations(pushdown_pair):
    """The edge mirror refreshes when the graph version moves."""
    db, _memory, _sqlite, _graph = pushdown_pair
    sqlite = create_backend("sqlite", db)
    memory = create_backend("memory", db)
    graph = build_schema_graph(sqlite.schema, sqlite.catalog)
    start = graph.nodes[0]
    before = sqlite.connected_nodes(graph, start)
    left, right = graph.nodes[0], graph.nodes[-1]
    edge = graph.edge_between(left, right)
    weight = 0.05 if edge is None else edge.weight / 2
    graph.add_edge(left, right, weight, "intra")
    after = sqlite.connected_nodes(graph, start)
    assert after == memory.connected_nodes(graph, start)
    assert before <= after  # reachability only grows with an extra edge


# -- bounded counting ------------------------------------------------------


@pytest.fixture(scope="module")
def explain_queries(pushdown_pair):
    """Real generated queries, straight from a full search."""
    db, _memory, _sqlite, _graph = pushdown_pair
    engine = Quest(FullAccessWrapper(create_backend("memory", db)))
    texts = [q.text for q in mondial.workload(db, queries_per_kind=2, seed=31)]
    queries = []
    for text in texts:
        for explanation in engine.search(text):
            queries.append(explanation.query)
    assert queries
    return queries


@pytest.mark.parametrize("limit", [1, 2, 5])
def test_bounded_count_decision_equivalence(pushdown_pair, explain_queries, limit):
    """``probe < limit`` iff ``exact < limit`` — the Explain drop rule."""
    _db, memory, sqlite, _graph = pushdown_pair
    for query in explain_queries:
        exact = memory.result_count(query)
        for backend in (memory, sqlite):
            probe = backend.result_count(query, limit)
            assert probe == min(exact, limit)
            assert (probe < limit) == (exact < limit)


def test_unbounded_count_unchanged(pushdown_pair, explain_queries):
    _db, memory, sqlite, _graph = pushdown_pair
    for query in explain_queries:
        assert sqlite.result_count(query) == memory.result_count(query)


def test_explain_probe_preserves_reported_counts(pushdown_pair):
    """With the probe on, survivors still report their exact counts."""
    db, _memory, _sqlite, _graph = pushdown_pair
    texts = [q.text for q in mondial.workload(db, queries_per_kind=1, seed=31)]
    probed = Quest(
        FullAccessWrapper(create_backend("sqlite", db)),
        QuestSettings(min_explanation_results=1),
    )
    unprobed = Quest(
        FullAccessWrapper(create_backend("sqlite", db)),
        QuestSettings(min_explanation_results=1, sql_pushdown=False),
    )
    for text in texts:
        fast = [(e.sql, e.probability, e.result_count) for e in probed.search(text)]
        slow = [(e.sql, e.probability, e.result_count) for e in unprobed.search(text)]
        assert fast == slow
