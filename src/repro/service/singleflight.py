"""Request coalescing: identical in-flight calls share one computation.

The classic *singleflight* primitive (named after Go's
``golang.org/x/sync/singleflight``): the first caller for a key becomes
the **leader** and runs the function; callers arriving with the same key
while the leader is in flight become **followers** and block until the
leader publishes — one computation, many answers. The serving tier keys
flights on ``(keywords, k, engine version)``, so a burst of identical
queries (a hot search term, a retry storm) costs the engine exactly one
pipeline run.

Errors propagate to everyone: if the leader raises, every follower of
that flight re-raises the same exception — a follower was promised *this*
computation's result, and silently recomputing would defeat the
admission-control bound the leader ran under.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

from repro.forksafe import register_lock_holder

__all__ = ["SingleFlight"]

_PENDING = object()


def _reset_singleflight_lock(flights: "SingleFlight") -> None:
    flights._lock = threading.Lock()
    # In-flight leaders do not survive the fork; drop their flights so
    # children never wait on an Event no thread will ever set.
    flights._flights = {}
    flights._waiting = 0


class _Flight:
    """One in-flight computation and its synchronisation point."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = _PENDING
        self.error: BaseException | None = None


class SingleFlight:
    """Deduplicates concurrent calls per key.

    Thread-safe; keys must be hashable. A flight exists only while its
    leader runs — once published, the key is released and the *next*
    caller leads a fresh computation (result reuse across time is the
    result cache's job, not this class's).
    """

    def __init__(self) -> None:
        self._flights: dict[Hashable, _Flight] = {}
        self._lock = threading.Lock()
        register_lock_holder(self, _reset_singleflight_lock)
        self._waiting = 0

    def in_flight(self) -> int:
        """Number of distinct keys currently being computed."""
        with self._lock:
            return len(self._flights)

    def waiting(self) -> int:
        """Followers currently parked behind a leader.

        Followers deliberately bypass admission control (their cost is
        the caller thread that is parked anyway, not engine work), so
        this gauge is how an operator sees a hot-key backlog that the
        admission house counters cannot.
        """
        with self._lock:
            return self._waiting

    def do(self, key: Hashable, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """Run ``fn()`` once per concurrent burst of *key*.

        Returns ``(value, shared)`` — ``shared`` is ``True`` for
        followers that received the leader's value without computing.
        Raises whatever the leader's ``fn`` raised, in the leader and in
        every follower. Followers re-raise the *same* exception instance
        (the semantics of a shared :class:`concurrent.futures.Future`),
        so concurrently formatted tracebacks may interleave frames from
        sibling raise sites — acceptable for diagnostics, and it keeps
        the exception's type and payload intact for ``except`` clauses.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
        if not leader:
            with self._lock:
                self._waiting += 1
            try:
                flight.done.wait()
            finally:
                with self._lock:
                    self._waiting -= 1
            if flight.error is not None:
                raise flight.error
            return flight.value, True
        try:
            flight.value = fn()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            # Release the key *before* waking followers: a caller that
            # arrives after publication must start a fresh flight, never
            # observe a completed one as joinable.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.value, False
