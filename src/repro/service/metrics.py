"""Serving-tier metrics: counters, latency quantiles, windowed QPS.

Cheap enough for the hot path (one lock, a few integer bumps and a
bounded deque append per request) while answering the questions an
operator actually asks: how much traffic, how slow at the median and the
tail, and how much work the coalescing/caching/shedding tiers are
absorbing. ``snapshot()`` returns an immutable point-in-time view.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.forksafe import register_lock_holder

__all__ = ["MetricsSnapshot", "ServiceMetrics"]


def _reset_metrics_lock(metrics: "ServiceMetrics") -> None:
    metrics._lock = threading.Lock()

#: Completed-request timestamps/latencies retained for quantiles and QPS.
DEFAULT_WINDOW = 1024
#: Seconds of history the QPS rate is computed over.
QPS_WINDOW_S = 60.0


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of pre-sorted values (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class MetricsSnapshot:
    """A consistent point-in-time view of the service counters.

    Attributes:
        requests: searches accepted by the front door (shed included).
        completed: searches answered (any tier, errors excluded).
        executed: searches that ran the engine (cache misses leading a
            flight) — ``completed - executed`` answers came for free.
        coalesced: followers served by another caller's in-flight search.
        cache_hits / cache_misses: TTL result-cache outcomes.
        shed: admission-control refusals — one per refused computation
            (coalesced followers of a shed leader share its one count).
        errors: searches that raised (engine failures, not sheds).
        deadline_expired: searches aborted by their time budget with
            nothing salvageable (the HTTP tier's 504s).
        degraded: searches answered on a degraded path — best-so-far
            results after deadline expiry (``trace.degraded``).
        stale_served: searches answered from the revision-stale fallback
            cache because the engine's storage was failing.
        stale_last_revision: the engine revision of the most recent
            stale-served ranking — tells an operator how old the data
            behind the last fallback answer was (``None`` until a stale
            serve happens).
        in_flight: requests currently admitted (executing or queued).
        coalesce_waiting: followers currently parked behind an in-flight
            leader — hot-key backlog that never enters the admission
            house (its cost is the parked caller thread, not engine
            work).
        qps: completed requests per second over the last minute.
        p50_latency_s / p95_latency_s: latency quantiles over the
            retained window (all serving tiers — cached answers count).
    """

    requests: int = 0
    completed: int = 0
    executed: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shed: int = 0
    errors: int = 0
    deadline_expired: int = 0
    degraded: int = 0
    stale_served: int = 0
    stale_last_revision: Any = None
    in_flight: int = 0
    coalesce_waiting: int = 0
    qps: float = 0.0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0

    def summary(self) -> str:
        """A one-line operator digest."""
        return (
            f"requests={self.requests} qps={self.qps:.1f} "
            f"p50={self.p50_latency_s * 1e3:.1f}ms "
            f"p95={self.p95_latency_s * 1e3:.1f}ms "
            f"coalesced={self.coalesced} cache_hits={self.cache_hits} "
            f"shed={self.shed} errors={self.errors}"
        )


class ServiceMetrics:
    """Thread-safe accumulator behind :meth:`QuestService.metrics`."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        register_lock_holder(self, _reset_metrics_lock)
        self._clock = clock
        self._requests = 0
        self._completed = 0
        self._executed = 0
        self._coalesced = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._shed = 0
        self._errors = 0
        self._deadline_expired = 0
        self._degraded = 0
        self._stale_served = 0
        self._stale_last_revision: Any = None
        #: (completion timestamp, latency seconds), bounded.
        self._latencies: deque[tuple[float, float]] = deque(maxlen=window)

    def record_request(self) -> None:
        with self._lock:
            self._requests += 1

    def record_shed(self) -> None:
        with self._lock:
            self._shed += 1

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    def record_deadline_expired(self) -> None:
        with self._lock:
            self._deadline_expired += 1

    def record_degraded(self) -> None:
        with self._lock:
            self._degraded += 1

    def record_stale_served(self, revision: Any = None) -> None:
        """Count a stale serve, remembering the revision it came from."""
        with self._lock:
            self._stale_served += 1
            self._stale_last_revision = revision

    def record_completion(
        self,
        latency_s: float,
        *,
        executed: bool = False,
        coalesced: bool = False,
        cache_hit: bool | None = None,
    ) -> None:
        """Record one answered search and which tier answered it.

        *cache_hit* is ``None`` when the result cache was never
        consulted (caching disabled) — neither counter moves then.
        """
        with self._lock:
            self._completed += 1
            if executed:
                self._executed += 1
            if coalesced:
                self._coalesced += 1
            if cache_hit is True:
                self._cache_hits += 1
            elif cache_hit is False:
                self._cache_misses += 1
            self._latencies.append((self._clock(), latency_s))

    def snapshot(
        self, in_flight: int = 0, coalesce_waiting: int = 0
    ) -> MetricsSnapshot:
        """An immutable view of everything accumulated so far."""
        with self._lock:
            now = self._clock()
            horizon = now - QPS_WINDOW_S
            recent = [ts for ts, _latency in self._latencies if ts >= horizon]
            qps = 0.0
            if recent:
                # Rate over the observed span, not the full window: ten
                # requests in the last two seconds is 5 qps even if the
                # service is only two seconds old. The one-second floor
                # keeps a snapshot taken right after a lone completion
                # from reporting a microsecond-span rate.
                span = max(now - min(recent), 1.0)
                qps = len(recent) / span
            latencies = sorted(latency for _ts, latency in self._latencies)
            return MetricsSnapshot(
                requests=self._requests,
                completed=self._completed,
                executed=self._executed,
                coalesced=self._coalesced,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                shed=self._shed,
                errors=self._errors,
                deadline_expired=self._deadline_expired,
                degraded=self._degraded,
                stale_served=self._stale_served,
                stale_last_revision=self._stale_last_revision,
                in_flight=in_flight,
                coalesce_waiting=coalesce_waiting,
                qps=qps,
                p50_latency_s=_quantile(latencies, 0.50),
                p95_latency_s=_quantile(latencies, 0.95),
            )
