"""TTL'd LRU result cache for the serving tier.

Completed rankings are cached under ``(keywords, k, engine version)``
for a bounded time. Freshness is belt and braces: the engine *version*
in the key already moves on any result-affecting mutation (source
writes, schema-graph changes, feedback-model swaps), so a stale entry is
simply never looked up again; the TTL bounds how long dead entries (and
any mutation a wrapper fails to version) can linger, and the LRU bound
caps memory.

A monotonic clock is injected for testability (``clock=`` in the
constructor); production uses :func:`time.monotonic`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.forksafe import register_lock_holder

__all__ = ["TTLResultCache"]

_MISSING = object()


def _reset_result_cache_lock(cache: "TTLResultCache") -> None:
    cache._lock = threading.Lock()


class TTLResultCache:
    """A bounded mapping whose entries expire *ttl* seconds after insert.

    Thread-safe; all operations are O(1) amortised (expired entries are
    reaped lazily on access and on insert).
    """

    def __init__(
        self,
        maxsize: int = 256,
        ttl: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock
        #: key -> (expiry deadline, value); insertion/refresh order = LRU.
        self._data: OrderedDict[Hashable, tuple[float, Any]] = OrderedDict()
        self._lock = threading.Lock()
        register_lock_holder(self, _reset_result_cache_lock)
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The live cached value for *key*; expired entries count as misses."""
        now = self._clock()
        with self._lock:
            entry = self._data.get(key, _MISSING)
            if entry is not _MISSING:
                deadline, value = entry
                if deadline > now:
                    self._data.move_to_end(key)
                    self._hits += 1
                    return value
                del self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key* with a fresh TTL."""
        now = self._clock()
        with self._lock:
            self._data[key] = (now + self.ttl, value)
            self._data.move_to_end(key)
            # Reap expired entries from the cold end before evicting live
            # ones: they sit oldest-first unless refreshed.
            while self._data:
                oldest = next(iter(self._data))
                if self._data[oldest][0] > now:
                    break
                del self._data[oldest]
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def counters(self) -> tuple[int, int]:
        """Cumulative ``(hits, misses)``."""
        with self._lock:
            return self._hits, self._misses

    def __repr__(self) -> str:
        hits, misses = self.counters
        return (
            f"TTLResultCache(size={len(self)}, maxsize={self.maxsize}, "
            f"ttl={self.ttl}, hits={hits}, misses={misses})"
        )
