"""Per-tenant admission quotas: fairness in front of the shared house.

:class:`~repro.service.admission.AdmissionController` bounds the *total*
work the service accepts; it cannot stop one hot tenant from filling
every slot and starving the rest. This tier layers a per-tenant
controller in front of the shared one: each tenant gets its own small
house (``max_concurrent`` executing + ``max_queue`` waiting), and a
tenant that exhausts it fails fast with
:class:`~repro.errors.QuotaExceededError` — mapped to HTTP 429 by the
front end, distinct from the service-wide 503 — while other tenants'
requests keep flowing.

Tenant controllers are created on first sight (an unknown tenant gets
the default quota) and capped in number so a tenant-id-per-request abuse
pattern cannot grow the registry without bound: beyond ``max_tenants``
distinct ids, the least-recently-active idle tenant is evicted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.errors import QuestError, QuotaExceededError, ServiceOverloadedError
from repro.forksafe import register_lock_holder
from repro.service.admission import AdmissionController

__all__ = ["TenantQuotas"]


def _reset_quota_lock(quotas: "TenantQuotas") -> None:
    quotas._lock = threading.Lock()

#: Tenant requests use when the caller supplies no tenant id.
DEFAULT_TENANT = "default"
#: Distinct tenant ids tracked before idle controllers are evicted.
DEFAULT_MAX_TENANTS = 1024


class TenantQuotas:
    """A registry of per-tenant :class:`AdmissionController` gates.

    Args:
        max_concurrent: execution slots per tenant.
        max_queue: admitted-but-waiting slots per tenant.
        overrides: per-tenant ``(max_concurrent, max_queue)`` exceptions
            to the default quota (a paying tenant's higher cap, an
            abusive one's lower).
        max_tenants: distinct tenant ids tracked at once; idle tenants
            beyond this are evicted least-recently-active first.
    """

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queue: int = 8,
        overrides: dict[str, tuple[int, int]] | None = None,
        max_tenants: int = DEFAULT_MAX_TENANTS,
    ) -> None:
        if max_concurrent <= 0:
            raise QuestError(
                f"max_concurrent must be positive, got {max_concurrent}"
            )
        if max_queue < 0:
            raise QuestError(f"max_queue must be non-negative, got {max_queue}")
        if max_tenants <= 0:
            raise QuestError(f"max_tenants must be positive, got {max_tenants}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self._overrides = dict(overrides or {})
        self._max_tenants = max_tenants
        self._lock = threading.Lock()
        register_lock_holder(self, _reset_quota_lock)
        #: tenant -> controller, in least-recently-admitted order.
        self._tenants: "OrderedDict[str, AdmissionController]" = OrderedDict()
        self._rejections = 0

    def _controller(self, tenant: str) -> AdmissionController:
        with self._lock:
            controller = self._tenants.get(tenant)
            if controller is None:
                limits = self._overrides.get(
                    tenant, (self.max_concurrent, self.max_queue)
                )
                controller = AdmissionController(*limits)
                self._tenants[tenant] = controller
                if len(self._tenants) > self._max_tenants:
                    # Evict the least-recently-active *idle* tenant; a
                    # tenant with requests in flight keeps its gate (the
                    # exiting context manager still holds it).
                    for candidate in list(self._tenants):
                        if (
                            candidate != tenant
                            and self._tenants[candidate].admitted == 0
                        ):
                            del self._tenants[candidate]
                            break
            else:
                self._tenants.move_to_end(tenant)
            return controller

    @contextmanager
    def admit(self, tenant: str | None) -> Iterator[None]:
        """Hold one of *tenant*'s slots for the body's duration.

        Raises :class:`QuotaExceededError` without blocking when the
        tenant's own house is full. A missing tenant id shares the
        :data:`DEFAULT_TENANT` quota — anonymous traffic is one tenant,
        not infinitely many.
        """
        name = tenant if tenant else DEFAULT_TENANT
        controller = self._controller(name)
        gate = controller.admit()
        # Enter the gate outside the body's try: only the per-tenant
        # refusal translates to the quota error. A ServiceOverloadedError
        # raised *inside* the body (the shared service-wide controller
        # shedding) must propagate untouched — it means 503, not 429.
        try:
            gate.__enter__()
        except ServiceOverloadedError:
            with self._lock:
                self._rejections += 1
            raise QuotaExceededError(
                name, controller.max_concurrent + controller.max_queue
            ) from None
        try:
            yield
        finally:
            gate.__exit__(None, None, None)

    def in_flight(self, tenant: str | None = None) -> int:
        """Admitted requests of one tenant (or of every tenant summed)."""
        with self._lock:
            if tenant is not None:
                controller = self._tenants.get(tenant)
                return controller.admitted if controller is not None else 0
            return sum(c.admitted for c in self._tenants.values())

    @property
    def rejections(self) -> int:
        """Requests refused by per-tenant gates since construction."""
        with self._lock:
            return self._rejections

    @property
    def tenants(self) -> int:
        """Distinct tenant ids currently tracked."""
        with self._lock:
            return len(self._tenants)

    def __repr__(self) -> str:
        return (
            f"TenantQuotas(max_concurrent={self.max_concurrent}, "
            f"max_queue={self.max_queue}, tenants={self.tenants})"
        )
