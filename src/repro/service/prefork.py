"""Preforked multi-worker serving: N processes, one shared artifact.

The GIL denies threads real multi-core search throughput, and the
fork-per-batch tier loses outright on small machines because every pool
rebuilds engine state from scratch (``BENCH_e7.json``'s
``batch_throughput.parallel_speedup`` < 1 on one CPU). This module is
the production answer: fork the workers **once**, make their warm start
nearly free, and let each one run its own event loop and engine.

The accept model, in order of events:

1. The **parent** prepares shared state exactly once — generating or
   opening the database and running
   :meth:`~repro.db.fulltext.FullTextIndex.load_or_build` so the ``.npz``
   columnar artifact exists on disk — then binds one listening socket.
2. It forks N **workers**. Each worker re-attaches the artifact with
   ``mmap=True`` (a validate-and-map, not a rebuild): every worker's
   snapshot arrays are ``np.memmap`` views over the *same file*, so the
   OS page cache holds one physical copy for all N workers — warm start
   for N at the cost of one. Forked children also inherit the parent's
   Python heap copy-on-write, and the :mod:`repro.forksafe` registry
   hands every registered lock holder a fresh lock, so a worker is
   immediately safe to serve from.
3. All workers ``accept()`` on the inherited parent listener fd (the
   classic prefork model — the kernel queues connections in the single
   listen backlog and wakes workers to take them; asyncio absorbs the
   thundering-herd ``EAGAIN``). With ``reuse_port=True`` each worker
   instead binds its own ``SO_REUSEPORT`` socket and the kernel
   load-balances connections across them.
4. The parent **supervises**: a poll loop reaps dead workers and forks
   replacements (bounded by ``max_restarts``); ``stop()`` sends SIGTERM,
   which each worker turns into a graceful drain — stop accepting,
   finish in-flight requests, exit 0.

Respawns are paced, not immediate: a slot that keeps dying waits out a
jittered exponential backoff (``restart_backoff_s`` doubling up to
``restart_backoff_max_s``) before its replacement forks, so a worker
that crashes on startup burns its restart budget over seconds rather
than milliseconds — and a worker that stayed up ``healthy_interval_s``
resets both its slot's backoff and the fleet-wide budget, so one bad
deploy followed by a fix does not leave the supervisor primed to give
up on the next transient crash.

Only the parent ever writes the artifact; workers open it read-only
(``load_or_build(..., readonly=True)``), so a crashed-and-restarted
worker can never race a sibling through the file. A worker that cannot
use the artifact at all (corrupt or replaced mid-read) falls back to
building a dict-layout index in-process — slower to start, but
rank-identical — and marks itself degraded in
:data:`~repro.resilience.health.process_health`.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro import faults
from repro.errors import ServiceError
from repro.forksafe import register_lock_holder
from repro.resilience import process_health
from repro.service.http import HttpServerSettings, QuestHttpServer
from repro.service.quota import TenantQuotas
from repro.service.service import QuestService, ServiceSettings

__all__ = [
    "PreforkServer",
    "PreforkSettings",
    "shared_artifact_engine",
]

#: Seconds between supervisor liveness polls of the worker set.
_SUPERVISE_POLL_S = 0.05


@dataclass(frozen=True)
class PreforkSettings:
    """Process-tier knobs (network knobs live on the HTTP server).

    Attributes:
        workers: serving processes to fork.
        host: interface the listener binds.
        port: TCP port (0 = ephemeral; read back via ``port``).
        reuse_port: ``SO_REUSEPORT`` per-worker listeners instead of one
            inherited parent listener fd.
        backlog: listen queue depth of the shared listener.
        drain_timeout_s: seconds a SIGTERM'd worker lets in-flight
            requests finish before exiting anyway.
        stop_timeout_s: seconds the parent waits for SIGTERM'd workers
            before escalating to SIGKILL.
        max_restarts: worker deaths the supervisor will absorb (fork a
            replacement) before declaring the deployment failed.
        restart_backoff_s: base respawn delay for a slot's first crash;
            doubles per consecutive crash of the same slot.
        restart_backoff_max_s: respawn delay ceiling per slot.
        healthy_interval_s: a worker that lived this long before dying
            resets its slot's backoff *and* the fleet-wide restart
            budget — only crash *storms* should exhaust ``max_restarts``.
        backoff_seed: seed for the respawn jitter (``None`` = entropy);
            fixed in tests so restart schedules replay exactly.
        artifact_poll_s: seconds between worker checks for a republished
            index artifact (engines exposing ``artifact_reload`` — see
            :func:`shared_artifact_engine`). ``0`` disables polling;
            workers then serve their attached generation for life.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    reuse_port: bool = False
    backlog: int = 128
    drain_timeout_s: float = 10.0
    stop_timeout_s: float = 15.0
    max_restarts: int = 8
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 5.0
    healthy_interval_s: float = 30.0
    backoff_seed: int | None = None
    artifact_poll_s: float = 0.0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ServiceError(f"workers must be positive, got {self.workers}")
        if self.max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )
        if self.restart_backoff_s <= 0:
            raise ServiceError(
                f"restart_backoff_s must be positive, got {self.restart_backoff_s}"
            )
        if self.restart_backoff_max_s < self.restart_backoff_s:
            raise ServiceError(
                "restart_backoff_max_s must be >= restart_backoff_s, got "
                f"{self.restart_backoff_max_s} < {self.restart_backoff_s}"
            )
        if self.healthy_interval_s <= 0:
            raise ServiceError(
                f"healthy_interval_s must be positive, got {self.healthy_interval_s}"
            )
        if self.artifact_poll_s < 0:
            raise ServiceError(
                f"artifact_poll_s must be non-negative, got {self.artifact_poll_s}"
            )


def shared_artifact_engine(
    db: Any,
    artifact: str | Path,
    settings: Any = None,
    journal: str | Path | None = None,
) -> tuple[Callable[[], Any], Callable[[], Any]]:
    """``(prepare, factory)`` for serving one database via a shared artifact.

    *prepare* runs once in the parent before forking: it builds (or
    validates) the ``.npz`` columnar artifact on disk, paying the index
    build exactly once per deployment. *factory* runs in each worker
    after the fork: it re-attaches the artifact read-only — memory-mapped
    when ``settings.artifact_mmap`` holds (the default) — and wires a
    fresh :class:`Quest` over it. Workers never write the artifact.

    The built engine exposes an ``artifact_reload()`` callable: a pinned
    reader's republish hook. It peeks the published artifact generation
    and, when it has advanced past the attached one, catches the
    worker's forked database copy up by replaying the mutation
    *journal* (opened readonly — followers never repair the writer's
    file) to exactly that generation, then swaps the new artifact in
    atomically. Any failure leaves the current snapshot serving and is
    retried on the next poll; a successful swap clears the
    ``index-artifact-fallback`` health mark. The prefork worker loop
    calls it every ``PreforkSettings.artifact_poll_s`` seconds.
    """
    from repro.core.engine import Quest
    from repro.core.settings import QuestSettings
    from repro.db.fulltext import FullTextIndex
    from repro.journal import MutationJournal
    from repro.storage.memory import MemoryBackend
    from repro.wrapper.full import FullAccessWrapper

    engine_settings = settings if settings is not None else QuestSettings()
    artifact_path = Path(artifact)
    journal_path = Path(journal) if journal is not None else None

    def prepare() -> None:
        FullTextIndex.load_or_build(artifact_path, db)

    def factory() -> Any:
        try:
            index = FullTextIndex.load_or_build(
                artifact_path,
                db,
                mmap=engine_settings.artifact_mmap,
                readonly=True,
            )
        except Exception as exc:
            # Degraded-but-correct: a corrupt (or mid-replacement)
            # artifact must not keep the worker down. The dict-layout
            # index is built from the same database, so rankings are
            # bit-identical — only startup cost and per-query constants
            # change. The mark surfaces through /readyz.
            process_health.mark(
                "index-artifact-fallback",
                f"columnar artifact unusable ({exc}); "
                "serving from an in-process dict-layout index",
            )
            index = FullTextIndex(db, columnar=False)
            index.warm()
        backend = MemoryBackend(db, fulltext=index)
        engine = Quest(FullAccessWrapper(backend), engine_settings)

        def artifact_reload() -> bool:
            try:
                published = FullTextIndex.peek_generation(artifact_path)
                if published is None or published <= backend.fulltext.generation:
                    return False
                if journal_path is not None and published > backend.applied_seq:
                    with MutationJournal(journal_path, readonly=True) as follow:
                        backend.replay_journal(follow, up_to_seq=published)
                if not backend.maybe_reload_index(
                    artifact_path, mmap=engine_settings.artifact_mmap
                ):
                    return False
            except Exception:
                # Mid-republish torn reads, a journal not yet caught up,
                # validation mismatches: keep serving the pinned
                # generation and try again next poll.
                return False
            process_health.clear("index-artifact-fallback")
            return True

        engine.artifact_reload = artifact_reload
        return engine

    return prepare, factory


def _reset_prefork_lock(server: "PreforkServer") -> None:
    server._state_lock = threading.Lock()


class PreforkServer:
    """A supervised fleet of forked HTTP serving workers.

    Args:
        engine_factory: builds each worker's engine, called *in the
            worker after the fork* (so mmap attachments and fresh locks
            are per-process). See :func:`shared_artifact_engine`.
        service_settings: per-worker :class:`ServiceSettings`.
        quotas_factory: builds each worker's per-tenant quota tier
            (``None`` = no per-tenant limits).
        settings: process-tier knobs; defaults to
            :class:`PreforkSettings`.
        prepare: one-time parent-side setup run before any fork (build
            the shared artifact, warm shared state).
    """

    def __init__(
        self,
        engine_factory: Callable[[], Any],
        service_settings: ServiceSettings | None = None,
        quotas_factory: Callable[[], TenantQuotas] | None = None,
        settings: PreforkSettings | None = None,
        prepare: Callable[[], Any] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.settings = settings if settings is not None else PreforkSettings()
        self._engine_factory = engine_factory
        self._service_settings = service_settings
        self._quotas_factory = quotas_factory
        self._prepare = prepare
        self._clock = clock
        self._listener: socket.socket | None = None
        self._port: int | None = None
        self._state_lock = threading.Lock()
        # The supervisor forks while potentially holding this lock in a
        # sibling thread; workers must reset it (see repro.forksafe).
        register_lock_holder(self, _reset_prefork_lock)
        #: pid -> worker slot index, for every live worker.
        self._children: dict[int, int] = {}
        #: pid -> monotonic fork time, for healthy-interval accounting.
        self._spawn_times: dict[int, float] = {}
        #: slot -> consecutive crashes (cleared by a healthy lifetime).
        self._crash_streak: dict[int, int] = {}
        #: slot -> monotonic respawn-at time for slots waiting out backoff.
        self._pending: dict[int, float] = {}
        self._backoff_rng = random.Random(self.settings.backoff_seed)
        self._restarts = 0
        self._stopping = False
        self._failed = False
        self._supervisor: threading.Thread | None = None

    # -- parent lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Prepare shared state, bind the listener, fork the workers."""
        if self._supervisor is not None:
            raise ServiceError("server already started")
        if self._prepare is not None:
            self._prepare()
        self._bind()
        for slot in range(self.settings.workers):
            self._spawn(slot)
        self._supervisor = threading.Thread(
            target=self._supervise, name="quest-prefork-supervisor", daemon=True
        )
        self._supervisor.start()

    def _bind(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.settings.reuse_port:
            # The parent's socket only *reserves* the port (bound, never
            # listening, so the kernel excludes it from the accept
            # group); each worker binds its own listening SO_REUSEPORT
            # socket to the reserved port.
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            listener.bind((self.settings.host, self.settings.port))
        else:
            listener.bind((self.settings.host, self.settings.port))
            listener.listen(self.settings.backlog)
            listener.set_inheritable(True)
        self._listener = listener
        self._port = listener.getsockname()[1]

    @property
    def port(self) -> int:
        """The TCP port clients connect to (after :meth:`start`)."""
        if self._port is None:
            raise ServiceError("server is not started")
        return self._port

    @property
    def restarts(self) -> int:
        """Workers the supervisor has replaced so far."""
        with self._state_lock:
            return self._restarts

    @property
    def failed(self) -> bool:
        """Whether the restart budget was exhausted (fleet declared dead)."""
        with self._state_lock:
            return self._failed

    def worker_pids(self) -> list[int]:
        """Live worker pids (supervision may change them at any time)."""
        with self._state_lock:
            return sorted(self._children)

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until a worker answers ``/readyz`` (or raise)."""
        deadline = self._clock() + timeout
        last_error: Exception | None = None
        while self._clock() < deadline:
            try:
                connection = http.client.HTTPConnection(
                    self.settings.host, self.port, timeout=5.0
                )
                try:
                    connection.request("GET", "/readyz")
                    response = connection.getresponse()
                    response.read()
                    if response.status == 200:
                        return
                finally:
                    connection.close()
            except OSError as exc:
                last_error = exc
            time.sleep(0.05)
        raise ServiceError(
            f"no worker became ready within {timeout}s"
            + (f" (last error: {last_error})" if last_error else "")
        )

    def stop(self, graceful: bool = True) -> None:
        """Tear the fleet down (SIGTERM drain, then SIGKILL stragglers)."""
        with self._state_lock:
            if self._stopping:
                return
            self._stopping = True
            pids = list(self._children)
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM if graceful else signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - racing a death
                pass
        deadline = self._clock() + (
            self.settings.stop_timeout_s if graceful else 1.0
        )
        while self._clock() < deadline:
            with self._state_lock:
                if not self._children:
                    break
            time.sleep(_SUPERVISE_POLL_S)
        with self._state_lock:
            stragglers = list(self._children)
        for pid in stragglers:  # pragma: no cover - drain overran its budget
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        if self._listener is not None:
            self._listener.close()

    def run(self) -> int:
        """Blocking entry point for scripts: start, serve until SIGTERM/
        SIGINT, drain, exit. Returns a process exit code."""
        stop_requested = threading.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop_requested.set())
        self.start()
        print(
            f"quest-serve: {self.settings.workers} workers on "
            f"{self.settings.host}:{self.port} "
            f"({'SO_REUSEPORT' if self.settings.reuse_port else 'shared listener fd'})"
        )
        while not stop_requested.is_set() and not self.failed:
            stop_requested.wait(timeout=0.5)
        self.stop(graceful=True)
        return 1 if self.failed else 0

    def __enter__(self) -> "PreforkServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- supervision ---------------------------------------------------------

    def _spawn(self, slot: int) -> None:
        pid = os.fork()
        if pid == 0:
            # Worker. Never return into the parent's call stack: serve,
            # then _exit (skipping atexit/pytest machinery the child
            # inherited but must not run).
            code = 1
            try:
                code = self._worker_main(slot)
            finally:
                os._exit(code)
        with self._state_lock:
            self._children[pid] = slot
            self._spawn_times[pid] = self._clock()

    def _respawn_delay(self, streak: int) -> float:
        """Equal-jitter exponential backoff for the *streak*-th crash.

        Jitter decorrelates slots: two workers killed by the same event
        must not refork (and re-crash) in lockstep forever.
        """
        capped = min(
            self.settings.restart_backoff_max_s,
            self.settings.restart_backoff_s * (2.0**streak),
        )
        return capped / 2.0 + self._backoff_rng.random() * capped / 2.0

    def _supervise(self) -> None:
        """Reap dead workers; replace them while the budget allows.

        Polls each known worker pid individually — a ``waitpid(-1)``
        would steal exit notifications from unrelated children of this
        process (the batch tier's process pools live in the same
        parent). Replacements respect the per-slot backoff schedule:
        a reaped slot is queued with a respawn time and forked only
        once that time passes.
        """
        while True:
            with self._state_lock:
                pids = list(self._children)
                if (
                    not pids
                    and not self._pending
                    and (self._stopping or self._failed)
                ):
                    return
            for pid in pids:
                try:
                    reaped, status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:  # pragma: no cover - reaped elsewhere
                    reaped = pid
                    status = 0
                if reaped == 0:
                    continue
                now = self._clock()
                with self._state_lock:
                    slot = self._children.pop(pid, None)
                    born = self._spawn_times.pop(pid, None)
                    stopping = self._stopping
                    if slot is not None and not stopping:
                        healthy = (
                            born is not None
                            and now - born >= self.settings.healthy_interval_s
                        )
                        if healthy:
                            # A long-lived worker dying is churn, not a
                            # storm: forgive the slot and the fleet.
                            self._crash_streak.pop(slot, None)
                            self._restarts = 0
                        streak = self._crash_streak.get(slot, 0)
                        self._crash_streak[slot] = streak + 1
                        self._restarts += 1
                        if self._restarts > self.settings.max_restarts:
                            self._failed = True
                            self._stopping = True
                            stopping = True
                        else:
                            self._pending[slot] = now + self._respawn_delay(
                                streak
                            )
            # Fork replacements whose backoff has elapsed.
            now = self._clock()
            with self._state_lock:
                if self._stopping or self._failed:
                    self._pending.clear()
                due = [
                    slot
                    for slot, respawn_at in self._pending.items()
                    if respawn_at <= now
                ]
                for slot in due:
                    del self._pending[slot]
            for slot in due:
                self._spawn(slot)
            time.sleep(_SUPERVISE_POLL_S)

    # -- the worker ----------------------------------------------------------

    def _worker_listener(self) -> socket.socket:
        if self.settings.reuse_port:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            listener.bind((self.settings.host, self.port))
            listener.listen(self.settings.backlog)
            return listener
        assert self._listener is not None
        return self._listener

    def _worker_main(self, slot: int) -> int:
        # Default dispositions first: the parent's run() handler (if
        # any) was inherited across the fork and must not fire here.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        import asyncio

        try:
            # Chaos hook: an installed FaultPlan (inherited across the
            # fork) can delay, fail or crash worker startup here.
            faults.fire("worker.start")
            engine = self._engine_factory()
        except Exception as exc:
            print(f"quest-serve worker {os.getpid()}: engine build failed: {exc}")
            return 1
        service = QuestService(engine, self._service_settings)
        quotas = (
            self._quotas_factory() if self._quotas_factory is not None else None
        )
        server = QuestHttpServer(
            service,
            settings=HttpServerSettings(
                host=self.settings.host,
                port=self.port,
                drain_timeout_s=self.settings.drain_timeout_s,
            ),
            quotas=quotas,
            sock=self._worker_listener(),
        )

        reload_artifact = getattr(engine, "artifact_reload", None)

        async def poll_artifact() -> None:
            # Between-requests republish pickup: the swap itself is an
            # atomic attribute replace, so requests in flight keep the
            # generation they started on.
            while True:
                await asyncio.sleep(self.settings.artifact_poll_s)
                try:
                    reload_artifact()
                except Exception:  # pragma: no cover - reload never raises
                    pass

        async def serve() -> None:
            await server.start()
            stopped = asyncio.Event()
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGTERM, stopped.set)
            poller = None
            if reload_artifact is not None and self.settings.artifact_poll_s > 0:
                poller = asyncio.ensure_future(poll_artifact())
            try:
                await stopped.wait()
            finally:
                if poller is not None:
                    poller.cancel()
            # Graceful drain: refuse new connections, finish in-flight.
            await server.close()

        try:
            asyncio.run(serve())
        except Exception as exc:  # pragma: no cover - loop-level failure
            print(f"quest-serve worker {os.getpid()}: {exc}")
            return 1
        return 0

    def __repr__(self) -> str:
        bound = self._port if self._port is not None else "unbound"
        return (
            f"PreforkServer(workers={self.settings.workers}, port={bound}, "
            f"restarts={self.restarts})"
        )


def fetch_json(
    host: str, port: int, path: str, timeout: float = 30.0
) -> tuple[int, dict]:
    """One GET against a serving worker, JSON-decoded (tests + benchmarks)."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read()
        return response.status, json.loads(body) if body else {}
    finally:
        connection.close()
