"""The HTTP front door: a stdlib/asyncio network tier over ``QuestService``.

Nothing in the serving stack listened on a socket until now —
:class:`~repro.service.service.QuestService` is an in-process object.
This module puts a wire protocol in front of it with zero dependencies
beyond the standard library: one asyncio server per process, a minimal
HTTP/1.1 request parser (keep-alive, ``Content-Length`` bodies), and a
fixed route table:

- ``GET /search?q=...&k=...`` (or ``POST /search`` with a JSON body) —
  answer a keyword query; the JSON response carries the ranked
  explanations with their probabilities and SQL text, so rank identity
  against a direct engine call is checkable bit for bit.
- ``GET /metrics`` — the service's :class:`MetricsSnapshot` plus the
  quota tier's counters, as JSON.
- ``GET /healthz`` — liveness: the process is up and the event loop
  turns.
- ``GET /readyz`` — readiness: the engine behind the service is built
  and the server accepts traffic (503 while draining).

Error mapping follows the shedding semantics of the tiers underneath:
a per-tenant quota refusal (:class:`QuotaExceededError`) is **429** with
``Retry-After`` — *you* should back off; a service-wide admission shed
(:class:`ServiceOverloadedError`) is **503** with ``Retry-After`` — *we*
are saturated; an exhausted request budget
(:class:`DeadlineExceededError`) is **504**; an unusable query is 400;
everything else is 500. Every error body is a structured envelope —
``{"error": {"code", "message", "request_id", ...}}`` — so clients and
log pipelines key on stable codes, never on message prose. A request
budget rides in on the ``X-Quest-Deadline-Ms`` header; degraded and
revision-stale answers are flagged in the payload (stale ones also
carry an RFC 7234 ``Warning`` header).

The engine's ``search`` is CPU-bound Python, so the event loop never
runs it: requests are handed to a thread pool sized to the service's
admission house, and the loop stays free to accept, parse and time out
sockets. Graceful drain (`close()`) stops accepting, lets in-flight
requests finish within a deadline, and only then tears the loop down —
the preforked supervisor drives exactly this on SIGTERM.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import os
import socket
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import (
    DeadlineExceededError,
    QuestError,
    QuotaExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service.quota import TenantQuotas
from repro.service.service import QuestService, ServiceResponse

__all__ = ["HttpServerSettings", "QuestHttpServer", "explanation_payload"]

#: Upper bound on request head (request line + headers) bytes.
_MAX_HEAD_BYTES = 16 * 1024
#: Upper bound on request body bytes (search payloads are tiny).
_MAX_BODY_BYTES = 64 * 1024
#: Seconds an idle keep-alive connection may sit between requests.
_KEEPALIVE_TIMEOUT_S = 30.0
#: ``Retry-After`` seconds advertised on 429/503 sheds.
_RETRY_AFTER_S = 1

#: The header tenants identify themselves with (case-insensitive).
TENANT_HEADER = "x-quest-tenant"
#: The header carrying the caller's request budget in milliseconds.
DEADLINE_HEADER = "x-quest-deadline-ms"
#: ``Warning`` header value stamped on revision-stale answers (RFC 7234
#: warn-code 110, "Response is Stale").
_STALE_WARNING = '110 quest "stale result: storage degraded"'


@dataclass(frozen=True)
class HttpServerSettings:
    """Network-tier knobs (the serving-tier knobs live on the service).

    Attributes:
        host: interface to bind.
        port: TCP port (0 = ephemeral, read back via ``port``).
        reuse_port: set ``SO_REUSEPORT`` on the listener so N workers
            can each bind their own socket to one port (the alternative
            accept model to parent-listener fd inheritance).
        executor_threads: thread-pool width for blocking engine calls;
            defaults to the service's whole admission house so a full
            house plus its queue never waits on a pool slot.
        drain_timeout_s: seconds ``close()`` waits for in-flight
            requests before cancelling them.
    """

    host: str = "127.0.0.1"
    port: int = 0
    reuse_port: bool = False
    executor_threads: int | None = None
    drain_timeout_s: float = 10.0


@dataclass(frozen=True)
class _Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Mapping[str, list[str]]
    headers: Mapping[str, str]
    body: bytes
    close: bool


class _BadRequest(Exception):
    """The bytes on the wire were not a usable HTTP request."""


def _json_safe(value: Any) -> Any:
    """*value* if JSON can carry it, else its ``repr``.

    Engine revisions are opaque composite objects (e.g. a tuple closing
    over the settings object); the wire format only promises operators a
    stable *identifier*, not a decomposable structure.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _error(
    code: str, message: str, request_id: str, **extra: Any
) -> dict[str, Any]:
    """The structured error envelope every non-2xx body uses."""
    envelope: dict[str, Any] = {
        "code": code,
        "message": message,
        "request_id": request_id,
    }
    envelope.update(extra)
    return {"error": envelope}


def explanation_payload(explanations: tuple[Any, ...]) -> list[dict[str, Any]]:
    """The JSON shape of a ranking, identical for every serving path.

    Probabilities are emitted through ``repr``-exact JSON floats, so two
    rankings serialise identically iff they are bit-identical — the
    property the prefork tests and the serving storm's rank-identity
    assertion lean on. Multi-source engines rank ``(source, Explanation)``
    pairs; the source label is carried through.
    """
    payload: list[dict[str, Any]] = []
    for rank, item in enumerate(explanations):
        source = None
        explanation = item
        if isinstance(item, tuple) and len(item) == 2:
            source, explanation = item
        entry: dict[str, Any] = {
            "rank": rank,
            "probability": explanation.probability,
            "sql": explanation.sql,
            "result_count": explanation.result_count,
        }
        if source is not None:
            entry["source"] = str(source)
        payload.append(entry)
    return payload


class QuestHttpServer:
    """One process's HTTP server over one :class:`QuestService`.

    Args:
        service: the serving tier to answer through.
        settings: network knobs; defaults to :class:`HttpServerSettings`.
        quotas: the per-tenant admission tier; ``None`` disables
            per-tenant limits (the service-wide controller still
            applies).
        sock: an already-bound listening socket to accept on instead of
            binding ``host:port`` — the preforked accept model, where
            every worker inherits the parent's listener fd.
    """

    def __init__(
        self,
        service: QuestService,
        settings: HttpServerSettings | None = None,
        quotas: TenantQuotas | None = None,
        sock: socket.socket | None = None,
    ) -> None:
        self.service = service
        self.settings = settings if settings is not None else HttpServerSettings()
        self.quotas = quotas
        self._sock = sock
        self._server: asyncio.base_events.Server | None = None
        threads = self.settings.executor_threads
        if threads is None:
            threads = (
                service.settings.max_concurrent + service.settings.max_queue
            )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, threads), thread_name_prefix="quest-http"
        )
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._accepting = False
        self._ready = False
        #: Monotone per-process counter behind request ids: correlating a
        #: client-visible error envelope with a worker's logs needs both
        #: the pid and a within-process ordinal.
        self._request_ids = itertools.count()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind (or adopt) the listener and begin accepting."""
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.settings.host,
                port=self.settings.port,
                reuse_port=self.settings.reuse_port or None,
            )
        self._accepting = True
        self._ready = True

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Accept until cancelled (the worker main loop parks here)."""
        if self._server is None:
            raise ServiceError("server is not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, tear down.

        New connections are refused immediately; requests already being
        answered get ``drain_timeout_s`` to complete (SIGTERM semantics —
        a deploy must not eat answers already being computed).
        """
        self._ready = False
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.settings.drain_timeout_s
            )
        except asyncio.TimeoutError:  # pragma: no cover - pathological body
            pass
        self._executor.shutdown(wait=False)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=_KEEPALIVE_TIMEOUT_S
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                except _BadRequest as exc:
                    await self._write_response(
                        writer,
                        400,
                        _error("bad_request", str(exc), self._request_id()),
                        close=True,
                    )
                    break
                if request is None:
                    break
                self._in_flight += 1
                self._idle.clear()
                try:
                    status, payload, extra = await self._dispatch(request)
                finally:
                    self._in_flight -= 1
                    if self._in_flight == 0:
                        self._idle.set()
                close = request.close or not self._accepting
                await self._write_response(
                    writer, status, payload, close=close, extra=extra
                )
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _Request | None:
        """Parse one request off the stream (``None`` on clean EOF)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest("request head too large") from exc
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between keep-alive requests
            raise
        if len(head) > _MAX_HEAD_BYTES:
            raise _BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise _BadRequest(f"malformed header: {line!r}")
            headers[name.strip().lower()] = value.strip()
        split = urlsplit(target)
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError as exc:
                raise _BadRequest("malformed Content-Length") from exc
            if n < 0 or n > _MAX_BODY_BYTES:
                raise _BadRequest("request body too large")
            body = await reader.readexactly(n)
        connection = headers.get("connection", "").lower()
        close = connection == "close" or (
            version == "HTTP/1.0" and connection != "keep-alive"
        )
        return _Request(
            method=method.upper(),
            path=unquote(split.path),
            query=parse_qs(split.query),
            headers=headers,
            body=body,
            close=close,
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        close: bool,
        extra: Mapping[str, str] | None = None,
    ) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable",
            504: "Gateway Timeout",
        }
        body = json.dumps(payload).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    def _request_id(self) -> str:
        return f"{os.getpid():x}-{next(self._request_ids):06x}"

    async def _dispatch(
        self, request: _Request
    ) -> tuple[int, dict[str, Any], dict[str, str] | None]:
        request_id = self._request_id()
        try:
            return await self._route(request, request_id)
        except Exception as exc:
            # The last-resort guard: a bug anywhere in a route handler
            # becomes a structured 500 on a still-healthy keep-alive
            # connection, never a dropped socket.
            return (
                500,
                _error(
                    "internal",
                    f"{type(exc).__name__}: {exc}",
                    request_id,
                ),
                None,
            )

    async def _route(
        self, request: _Request, request_id: str
    ) -> tuple[int, dict[str, Any], dict[str, str] | None]:
        route = (request.method, request.path)
        if request.path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed(request_id)
            # Liveness: the loop turns, so the process is alive — a
            # degraded process is still a live one (200, state inside).
            state = self._degradation()
            status = "degraded" if state["degraded"] else "ok"
            return 200, {"status": status, "pid": os.getpid()}, None
        if request.path == "/readyz":
            if request.method != "GET":
                return self._method_not_allowed(request_id)
            if not self._ready:
                return (
                    503,
                    {
                        "status": "unhealthy",
                        "reasons": ["draining"],
                        "pid": os.getpid(),
                    },
                    None,
                )
            state = self._degradation()
            status = "degraded" if state["degraded"] else "ok"
            return (
                200,
                {
                    "status": status,
                    "reasons": state["reasons"],
                    "pid": os.getpid(),
                },
                None,
            )
        if route == ("GET", "/metrics"):
            return 200, self._metrics_payload(), None
        if request.path == "/search":
            if request.method not in ("GET", "POST"):
                return self._method_not_allowed(request_id)
            return await self._search(request, request_id)
        return (
            404,
            _error("not_found", f"no route for {request.path}", request_id),
            None,
        )

    @staticmethod
    def _method_not_allowed(
        request_id: str,
    ) -> tuple[int, dict[str, Any], dict[str, str] | None]:
        return (
            405,
            _error("method_not_allowed", "method not allowed", request_id),
            None,
        )

    def _degradation(self) -> dict[str, Any]:
        degradation = getattr(self.service, "degradation", None)
        if degradation is None:  # a bare engine shim in tests
            return {"degraded": False, "reasons": []}
        return degradation()

    def _metrics_payload(self) -> dict[str, Any]:
        snapshot = self.service.metrics()
        payload: dict[str, Any] = {
            "pid": os.getpid(),
            "service": {
                field: _json_safe(getattr(snapshot, field))
                for field in snapshot.__dataclass_fields__
            },
            "degradation": self._degradation(),
        }
        if self.quotas is not None:
            payload["quota"] = {
                "tenants": self.quotas.tenants,
                "in_flight": self.quotas.in_flight(),
                "rejections": self.quotas.rejections,
            }
        return payload

    # -- the search endpoint -------------------------------------------------

    async def _search(
        self, request: _Request, request_id: str
    ) -> tuple[int, dict[str, Any], dict[str, str] | None]:
        try:
            query, k = self._search_arguments(request)
            deadline_ms = self._deadline_argument(request)
        except _BadRequest as exc:
            return 400, _error("bad_request", str(exc), request_id), None
        tenant = request.headers.get(TENANT_HEADER) or None
        loop = asyncio.get_running_loop()
        retry = {"Retry-After": str(_RETRY_AFTER_S)}
        try:
            response = await loop.run_in_executor(
                self._executor,
                self._search_blocking,
                tenant,
                query,
                k,
                deadline_ms,
            )
        except QuotaExceededError as exc:
            return (
                429,
                _error(
                    "quota_exceeded", str(exc), request_id, tenant=exc.tenant
                ),
                retry,
            )
        except ServiceOverloadedError as exc:
            return 503, _error("overloaded", str(exc), request_id), retry
        except DeadlineExceededError as exc:
            return (
                504,
                _error(
                    "deadline_exceeded",
                    str(exc),
                    request_id,
                    budget_ms=exc.budget_ms,
                ),
                None,
            )
        except QuestError as exc:
            return 400, _error("bad_request", str(exc), request_id), None
        except Exception as exc:  # pragma: no cover - engine bugs
            return (
                500,
                _error(
                    "internal", f"{type(exc).__name__}: {exc}", request_id
                ),
                None,
            )
        extra = {"Warning": _STALE_WARNING} if response.stale else None
        return 200, self._search_payload(response, request_id), extra

    @staticmethod
    def _deadline_argument(request: _Request) -> float | None:
        raw = request.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            deadline_ms = float(raw)
        except ValueError as exc:
            raise _BadRequest(
                f"{DEADLINE_HEADER} must be a number of milliseconds, "
                f"got {raw!r}"
            ) from exc
        if not math.isfinite(deadline_ms) or deadline_ms <= 0:
            raise _BadRequest(
                f"{DEADLINE_HEADER} must be a positive finite number of "
                f"milliseconds, got {raw!r}"
            )
        return deadline_ms

    def _search_blocking(
        self,
        tenant: str | None,
        query: str,
        k: int | None,
        deadline_ms: float | None,
    ) -> ServiceResponse:
        """The blocking slice, run on the executor: quota gate + search.

        The whole gate-and-search runs off the event loop so a tenant's
        queued requests block an executor thread, never the accept loop.
        """

        def run() -> ServiceResponse:
            # deadline_ms is forwarded only when the caller sent the
            # header, so stand-in search callables with the plain
            # ``(query, k=None)`` signature keep working.
            if deadline_ms is not None:
                return self.service.search(query, k=k, deadline_ms=deadline_ms)
            return self.service.search(query, k=k)

        if self.quotas is not None:
            with self.quotas.admit(tenant):
                return run()
        return run()

    def _search_arguments(self, request: _Request) -> tuple[str, int | None]:
        query: str | None = None
        k: Any = None
        if request.method == "GET":
            values = request.query.get("q") or request.query.get("query")
            if values:
                query = values[0]
            k_values = request.query.get("k")
            if k_values:
                k = k_values[0]
        else:
            if request.body:
                try:
                    payload = json.loads(request.body.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise _BadRequest(f"malformed JSON body: {exc}") from exc
                if not isinstance(payload, dict):
                    raise _BadRequest("JSON body must be an object")
                query = payload.get("q") or payload.get("query")
                k = payload.get("k")
        if not query or not isinstance(query, str):
            raise _BadRequest("missing query: pass ?q=... or a JSON {'q': ...}")
        if k is not None:
            try:
                k = int(k)
            except (TypeError, ValueError) as exc:
                raise _BadRequest(f"k must be an integer, got {k!r}") from exc
            if k <= 0:
                raise _BadRequest(f"k must be positive, got {k}")
        return query, k

    def _search_payload(
        self, response: ServiceResponse, request_id: str
    ) -> dict[str, Any]:
        return {
            "query": response.query,
            "keywords": list(response.keywords),
            "k": response.k,
            "source": response.source,
            "latency_s": response.latency_s,
            "degraded": response.degraded,
            "stale": response.stale,
            "stale_revision": _json_safe(response.stale_revision),
            "request_id": request_id,
            "pid": os.getpid(),
            "results": explanation_payload(response.explanations),
        }

    def __repr__(self) -> str:
        bound = "unbound"
        if self._server is not None and self._server.sockets:
            bound = f"{self.settings.host}:{self.port}"
        return f"QuestHttpServer({bound}, service={self.service!r})"
