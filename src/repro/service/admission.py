"""Admission control: bounded concurrency, bounded queue, fast-fail shed.

A production front door must degrade predictably: at most *max_concurrent*
searches execute at once, at most *max_queue* more may wait for a slot,
and anything beyond that is shed immediately with
:class:`~repro.errors.ServiceOverloadedError` — an overloaded service
that answers "try elsewhere" in microseconds is strictly better than one
that accepts everything and answers nothing within its latency budget.

Scope: these bounds govern *computations*. Coalescing followers never
enter the house — they park on their leader's flight (costing only the
caller thread that would block anyway, never extra engine work) and are
reported separately via the ``coalesce_waiting`` metrics gauge.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ServiceOverloadedError
from repro.forksafe import register_lock_holder

__all__ = ["AdmissionController"]


def _reset_admission_lock(gate: "AdmissionController") -> None:
    gate._gauge_lock = threading.Lock()
    # Admitted requests do not survive the fork; rebuild the semaphores
    # at full capacity so children start with an empty house.
    gate._presence = threading.Semaphore(gate.max_concurrent + gate.max_queue)
    gate._execution = threading.Semaphore(gate.max_concurrent)
    gate._admitted = 0


class AdmissionController:
    """Semaphore-backed concurrency gate with a bounded waiting room.

    ``admit()`` is a context manager wrapped around one search execution:
    it first claims one of ``max_concurrent + max_queue`` *presence*
    slots without blocking (failure = shed), then blocks on one of
    ``max_concurrent`` *execution* slots — so at most ``max_queue``
    admitted requests are ever waiting, and every request past the house
    limit fails fast instead of queueing unboundedly.
    """

    def __init__(self, max_concurrent: int, max_queue: int) -> None:
        if max_concurrent <= 0:
            raise ValueError(
                f"max_concurrent must be positive, got {max_concurrent}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be non-negative, got {max_queue}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self._presence = threading.Semaphore(max_concurrent + max_queue)
        self._execution = threading.Semaphore(max_concurrent)
        self._gauge_lock = threading.Lock()
        register_lock_holder(self, _reset_admission_lock)
        self._admitted = 0

    @property
    def admitted(self) -> int:
        """Requests currently inside the house (executing or queued)."""
        with self._gauge_lock:
            return self._admitted

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one execution slot for the body's duration.

        Raises :class:`ServiceOverloadedError` without blocking when the
        house (execution slots + waiting room) is full.
        """
        if not self._presence.acquire(blocking=False):
            raise ServiceOverloadedError(
                f"service overloaded: {self.max_concurrent} executing and "
                f"{self.max_queue} queued requests already admitted"
            )
        with self._gauge_lock:
            self._admitted += 1
        try:
            self._execution.acquire()
            try:
                yield
            finally:
                self._execution.release()
        finally:
            with self._gauge_lock:
                self._admitted -= 1
            self._presence.release()
