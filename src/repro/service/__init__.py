"""The serving tier: concurrent, latency-bounded query answering.

``QuestService`` wraps one engine (single- or multi-source) with the
tiers an interactive deployment needs — TTL'd result caching, in-flight
request coalescing, admission control with fast-fail shedding, and an
operator metrics snapshot. See :mod:`repro.service.service` for the
full story.
"""

from repro.errors import ServiceError, ServiceOverloadedError
from repro.service.admission import AdmissionController
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.result_cache import TTLResultCache
from repro.service.service import QuestService, ServiceResponse, ServiceSettings
from repro.service.singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "MetricsSnapshot",
    "QuestService",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ServiceResponse",
    "ServiceSettings",
    "SingleFlight",
    "TTLResultCache",
]
