"""The serving tier: concurrent, latency-bounded query answering.

``QuestService`` wraps one engine (single- or multi-source) with the
tiers an interactive deployment needs — TTL'd result caching, in-flight
request coalescing, admission control with fast-fail shedding, and an
operator metrics snapshot. See :mod:`repro.service.service` for the
full story.

On top of it sits the network tier: :class:`QuestHttpServer` puts a
stdlib-asyncio HTTP front end over one service (with per-tenant
:class:`TenantQuotas` admission), and :class:`PreforkServer` runs N of
those as supervised forked workers mmap-sharing one columnar index
artifact. See :mod:`repro.service.http` and
:mod:`repro.service.prefork`.

Cutting across all three is the resilience tier
(:mod:`repro.resilience`): per-request deadlines propagated down to the
Steiner search (``X-Quest-Deadline-Ms`` → 504 or degraded best-so-far
answers), a circuit breaker over SQLite that sheds only the optional
pushdown surfaces (rankings stay bit-identical), revision-stale serving
when storage fails outright, and jittered-exponential worker respawn
backoff — all testable deterministically through :mod:`repro.faults`.
"""

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QuotaExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.resilience import (
    BreakerSettings,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    process_health,
)
from repro.service.admission import AdmissionController
from repro.service.http import HttpServerSettings, QuestHttpServer
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.prefork import (
    PreforkServer,
    PreforkSettings,
    shared_artifact_engine,
)
from repro.service.quota import TenantQuotas
from repro.service.result_cache import TTLResultCache
from repro.service.service import QuestService, ServiceResponse, ServiceSettings
from repro.service.singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "BreakerSettings",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "HttpServerSettings",
    "MetricsSnapshot",
    "PreforkServer",
    "PreforkSettings",
    "QuestHttpServer",
    "QuestService",
    "QuotaExceededError",
    "RetryPolicy",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ServiceResponse",
    "ServiceSettings",
    "SingleFlight",
    "TTLResultCache",
    "TenantQuotas",
    "process_health",
    "shared_artifact_engine",
]
