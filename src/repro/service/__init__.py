"""The serving tier: concurrent, latency-bounded query answering.

``QuestService`` wraps one engine (single- or multi-source) with the
tiers an interactive deployment needs — TTL'd result caching, in-flight
request coalescing, admission control with fast-fail shedding, and an
operator metrics snapshot. See :mod:`repro.service.service` for the
full story.

On top of it sits the network tier: :class:`QuestHttpServer` puts a
stdlib-asyncio HTTP front end over one service (with per-tenant
:class:`TenantQuotas` admission), and :class:`PreforkServer` runs N of
those as supervised forked workers mmap-sharing one columnar index
artifact. See :mod:`repro.service.http` and
:mod:`repro.service.prefork`.
"""

from repro.errors import (
    QuotaExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service.admission import AdmissionController
from repro.service.http import HttpServerSettings, QuestHttpServer
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.prefork import (
    PreforkServer,
    PreforkSettings,
    shared_artifact_engine,
)
from repro.service.quota import TenantQuotas
from repro.service.result_cache import TTLResultCache
from repro.service.service import QuestService, ServiceResponse, ServiceSettings
from repro.service.singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "HttpServerSettings",
    "MetricsSnapshot",
    "PreforkServer",
    "PreforkSettings",
    "QuestHttpServer",
    "QuestService",
    "QuotaExceededError",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ServiceResponse",
    "ServiceSettings",
    "SingleFlight",
    "TTLResultCache",
    "TenantQuotas",
    "shared_artifact_engine",
]
