"""``QuestService``: a thread-safe serving front door over one engine.

The engines themselves are now safe for concurrent callers (searches
return their own :class:`~repro.pipeline.context.SearchContext`; the
shared caches attribute hits exactly), but *safe* is not *production*:
an interactive keyword-search service — the deployment scenario QUEST
assumes — also needs the traffic-shaping tiers this class layers on
top of a :class:`~repro.core.engine.Quest` (or
:class:`~repro.core.multisource.MultiSourceQuest`):

1. **Result cache** — completed rankings are served from a TTL'd LRU
   keyed on ``(keywords, k, engine version)``; any result-affecting
   mutation moves the engine version, so stale answers are unreachable
   by construction.
2. **Request coalescing** — identical in-flight ``(keywords, k)``
   requests share one pipeline run through a singleflight map: a burst
   of a hot query costs one computation.
3. **Admission control** — at most ``max_concurrent`` searches execute,
   at most ``max_queue`` wait; everything beyond fails fast with
   :class:`~repro.errors.ServiceOverloadedError`.
4. **Metrics** — counters, windowed QPS and p50/p95 latency via
   :meth:`QuestService.metrics`.

Requests are tokenised before keying, so ``"capital  Ruritania"`` and
``"capital ruritania"`` coalesce. Answers are rank-identical to calling
the engine directly — every tier changes *when* and *how often* the
engine runs, never what it returns.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
    QuestError,
    ServiceOverloadedError,
)
from repro.resilience import Deadline, process_health
from repro.semantics.tokenize import tokenize_query
from repro.service.admission import AdmissionController
from repro.service.metrics import DEFAULT_WINDOW, MetricsSnapshot, ServiceMetrics
from repro.service.result_cache import TTLResultCache
from repro.service.singleflight import SingleFlight

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.pipeline.context import SearchTrace

__all__ = ["QuestService", "ServiceResponse", "ServiceSettings"]

#: Fallback answer size for engines without a ``settings.k`` (the
#: multi-source combiner), matching its own ``search`` default.
DEFAULT_K = 10


@dataclass(frozen=True)
class ServiceSettings:
    """Serving-tier knobs (the engine's own knobs live on the engine).

    Attributes:
        k: default answers per query; ``None`` defers to the engine
            (``Quest.settings.k``, or 10 for multi-source).
        max_concurrent: searches executing at once.
        max_queue: admitted searches allowed to wait for a slot; the
            next request past ``max_concurrent + max_queue`` is shed.
        coalesce: share one computation among identical in-flight
            requests.
        cache_results: serve repeated queries from the TTL'd result
            cache.
        result_ttl_s: seconds a cached ranking stays servable.
        result_cache_size: rankings retained (LRU beyond that).
        metrics_window: completed requests kept for quantiles/QPS.
        serve_stale: when the engine fails on a *storage* error
            (:class:`ExecutionError`, :class:`CircuitOpenError`), answer
            from the long-TTL stale cache — rankings from an earlier
            engine revision — instead of failing the request. Stale
            responses carry ``source="stale"`` (the HTTP tier adds a
            ``Warning`` header) and count in ``metrics().stale_served``.
        stale_ttl_s: seconds a ranking stays eligible for stale serving.
        stale_cache_size: stale rankings retained (LRU beyond that).
    """

    k: int | None = None
    max_concurrent: int = 8
    max_queue: int = 32
    coalesce: bool = True
    cache_results: bool = True
    result_ttl_s: float = 30.0
    result_cache_size: int = 256
    metrics_window: int = DEFAULT_WINDOW
    serve_stale: bool = True
    stale_ttl_s: float = 300.0
    stale_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.k is not None and self.k <= 0:
            raise QuestError(f"k must be positive, got {self.k}")
        if self.max_concurrent <= 0:
            raise QuestError(
                f"max_concurrent must be positive, got {self.max_concurrent}"
            )
        if self.max_queue < 0:
            raise QuestError(
                f"max_queue must be non-negative, got {self.max_queue}"
            )
        if self.result_ttl_s <= 0:
            raise QuestError(
                f"result_ttl_s must be positive, got {self.result_ttl_s}"
            )
        if self.result_cache_size <= 0:
            raise QuestError(
                f"result_cache_size must be positive, got {self.result_cache_size}"
            )
        if self.metrics_window <= 0:
            raise QuestError(
                f"metrics_window must be positive, got {self.metrics_window}"
            )
        if self.stale_ttl_s <= 0:
            raise QuestError(
                f"stale_ttl_s must be positive, got {self.stale_ttl_s}"
            )
        if self.stale_cache_size <= 0:
            raise QuestError(
                f"stale_cache_size must be positive, got {self.stale_cache_size}"
            )


@dataclass(frozen=True)
class ServiceResponse:
    """One answered search and where the answer came from.

    Attributes:
        query: the raw request text.
        keywords: the tokenised request (the coalescing/cache key).
        k: answers requested.
        explanations: the ranked answers (``(source, Explanation)``
            pairs when the engine is multi-source).
        trace: the exact per-run diagnostics of the pipeline run that
            produced this ranking — shared (by design) among the
            coalesced/cached responses that ranking also answered;
            ``None`` for multi-source engines, which have no single
            trace.
        source: ``"engine"`` (this request ran the pipeline),
            ``"coalesced"`` (joined another request's run),
            ``"cache"`` (TTL result cache) or ``"stale"`` (the
            revision-stale fallback cache, served because the engine's
            storage was failing).
        latency_s: wall time this request spent in the service.
    """

    query: str
    keywords: tuple[str, ...]
    k: int
    explanations: tuple[Any, ...]
    trace: "SearchTrace | None"
    source: str
    latency_s: float

    @property
    def cached(self) -> bool:
        return self.source == "cache"

    @property
    def coalesced(self) -> bool:
        return self.source == "coalesced"

    @property
    def stale(self) -> bool:
        return self.source == "stale"

    @property
    def stale_revision(self) -> Any:
        """The engine revision a stale answer was computed at.

        ``None`` on fresh responses, and on stale ones whose engine is
        multi-source (no single trace to carry the stamp).
        """
        return self.trace.stale_revision if self.trace is not None else None

    @property
    def degraded(self) -> bool:
        """Served on a degraded path: stale fallback, or a pipeline run
        whose deadline expired mid-flight (best-so-far answers)."""
        return self.stale or (self.trace is not None and self.trace.degraded)


@dataclass(frozen=True)
class _Computed:
    """What one engine run produced (the cached/shared unit)."""

    explanations: tuple[Any, ...]
    trace: "SearchTrace | None"


class QuestService:
    """Concurrent, latency-bounded query answering over one engine.

    Args:
        engine: a :class:`Quest` or :class:`MultiSourceQuest` (anything
            with a ``search``-shaped surface; engines exposing
            ``search_context`` additionally get per-response traces,
            and a ``version`` property keys cache freshness).
        settings: serving-tier knobs; defaults to
            :class:`ServiceSettings`.
        clock: monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        engine: Any,
        settings: ServiceSettings | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.engine = engine
        self.settings = settings if settings is not None else ServiceSettings()
        self._admission = AdmissionController(
            self.settings.max_concurrent, self.settings.max_queue
        )
        self._flights = SingleFlight()
        self._results = TTLResultCache(
            maxsize=self.settings.result_cache_size,
            ttl=self.settings.result_ttl_s,
            clock=clock,
        )
        self._metrics = ServiceMetrics(
            window=self.settings.metrics_window, clock=clock
        )
        self._clock = clock
        #: Long-TTL fallback rankings keyed on (keywords, k) — the engine
        #: version is deliberately absent: when live storage is failing,
        #: an answer from an earlier revision beats no answer.
        self._stale = TTLResultCache(
            maxsize=self.settings.stale_cache_size,
            ttl=self.settings.stale_ttl_s,
            clock=clock,
        )
        #: When the stale tier last had to answer (degradation signal).
        self._last_stale_at: float | None = None
        search_context = getattr(engine, "search_context", None)
        self._engine_takes_deadline = search_context is not None and (
            "deadline" in inspect.signature(search_context).parameters
        )

    # -- the front door ------------------------------------------------------

    def search(
        self, query: str, k: int | None = None, deadline_ms: float | None = None
    ) -> ServiceResponse:
        """Answer one query through the serving tiers.

        Thread-safe; any number of callers may be in flight. Raises
        :class:`ServiceOverloadedError` when admission control sheds the
        request (also for followers whose leader was shed — they were
        promised that computation), and propagates engine failures
        (e.g. :class:`QuestError` for an unusable query) unchanged.

        *deadline_ms* (or, when absent, the engine's
        ``settings.default_deadline_ms``) bounds the request end to end —
        queueing time included. On expiry the pipeline degrades to
        best-so-far answers (``response.degraded``) or, with nothing
        salvageable, raises :class:`DeadlineExceededError` (HTTP 504).
        A storage failure (:class:`ExecutionError` /
        :class:`CircuitOpenError`) falls back to the revision-stale cache
        when ``settings.serve_stale`` allows.
        """
        start = self._clock()
        self._metrics.record_request()
        try:
            if k is not None and k <= 0:
                raise QuestError(f"k must be positive, got {k}")
            deadline = Deadline.from_ms(
                deadline_ms
                if deadline_ms is not None
                else self._default_deadline_ms(),
                clock=self._clock,
            )
            keywords = self._keywords_of(query)
            k = k if k is not None else self._default_k()
            key = (keywords, k, self._engine_version())

            if self.settings.cache_results:
                hit = self._results.get(key)
                if hit is not None:
                    return self._respond(query, keywords, k, hit, "cache", start)

            def compute() -> _Computed:
                try:
                    with self._admission.admit():
                        if deadline is not None and deadline.expired():
                            # The budget died in the queue: fail before
                            # burning an execution slot on a dead request.
                            raise DeadlineExceededError(deadline.budget_ms)
                        computed = self._run_engine(query, keywords, k, deadline)
                except ServiceOverloadedError:
                    # Count the shed where admission refused it — once.
                    # Followers re-raising the leader's error must not
                    # inflate the counter (they never entered admission).
                    self._metrics.record_shed()
                    raise
                # Publish before the flight key is released (we are still
                # the leader here): a same-key request arriving between
                # flight release and a later put would find neither the
                # flight nor the cache and redundantly re-run the engine.
                # Degraded (deadline-truncated) rankings are never
                # published — a later unbounded request must not inherit
                # a partial answer.
                degraded = computed.trace is not None and computed.trace.degraded
                if not degraded:
                    if self.settings.cache_results:
                        self._results.put(key, computed)
                    if self.settings.serve_stale:
                        # Remember the engine revision alongside the
                        # ranking, so a later stale serve can stamp how
                        # far behind the answer is (satellite: stale
                        # responses are auditable in /metrics).
                        self._stale.put(  # questlint: disable=cache-revision  # deliberately version-free: the stale cache exists to answer ACROSS revisions when storage fails; the revision rides in the value and is stamped into the response
                            (keywords, k), (computed, self._engine_version())
                        )
                return computed

            try:
                if self.settings.coalesce:
                    computed, shared = self._flights.do(key, compute)
                else:
                    computed, shared = compute(), False
            except (ExecutionError, CircuitOpenError):
                entry = self._stale_lookup(keywords, k)
                if entry is None:
                    raise
                fallback, revision = entry
                if fallback.trace is not None:
                    # Stamp a *copy*: _results may share this _Computed,
                    # and a stale marker must never leak into fresh
                    # responses for the same key.
                    fallback = _Computed(
                        fallback.explanations,
                        replace(fallback.trace, stale_revision=revision),
                    )
                self._last_stale_at = self._clock()
                self._metrics.record_stale_served(revision)
                return self._respond(
                    query, keywords, k, fallback, "stale", start
                )
            source = "coalesced" if shared else "engine"
            return self._respond(query, keywords, k, computed, source, start)
        except ServiceOverloadedError:
            # Already counted at the admission point (exactly once per
            # refusal, whether one caller or a coalesced burst saw it).
            raise
        except DeadlineExceededError:
            # Counted separately from errors: the service behaved as
            # asked — the caller's budget was simply too small.
            self._metrics.record_deadline_expired()
            raise
        except BaseException:
            self._metrics.record_error()
            raise

    def metrics(self) -> MetricsSnapshot:
        """A point-in-time snapshot of the serving-tier metrics."""
        return self._metrics.snapshot(
            in_flight=self._admission.admitted,
            coalesce_waiting=self._flights.waiting(),
        )

    def degradation(self) -> dict[str, Any]:
        """The service's current degradation state, for health endpoints.

        Aggregates three signals: process-level health marks (e.g. a
        worker that fell back to the dict-layout index), the storage
        circuit breaker's state, and recent stale-cache serving. Returns
        ``{"degraded": bool, "reasons": [str, ...]}`` — an empty reason
        list means fully healthy.
        """
        reasons = [
            f"{name}: {detail}" if detail else name
            for name, detail in sorted(process_health.reasons().items())
        ]
        breaker = getattr(
            getattr(getattr(self.engine, "wrapper", None), "backend", None),
            "breaker",
            None,
        )
        if breaker is not None and breaker.state != "closed":
            reasons.append(
                f"storage circuit {breaker.name!r} {breaker.state}"
            )
        last = self._last_stale_at
        if last is not None and self._clock() - last < self.settings.stale_ttl_s:
            reasons.append("recently served revision-stale results")
        return {"degraded": bool(reasons), "reasons": reasons}

    def invalidate(self) -> None:
        """Drop every cached ranking (mutations do this implicitly via
        the engine version; this is the operator's big hammer)."""
        self._results.clear()

    # -- internals -----------------------------------------------------------

    def _default_k(self) -> int:
        if self.settings.k is not None:
            return self.settings.k
        engine_settings = getattr(self.engine, "settings", None)
        return getattr(engine_settings, "k", None) or DEFAULT_K

    def _keywords_of(self, query: str) -> tuple[str, ...]:
        """Tokenise through the engine's own helper when it has one, so
        the coalescing/cache key always matches the keywords the engine
        actually searches."""
        keywords_of = getattr(self.engine, "keywords_of", None)
        if keywords_of is not None:
            return tuple(keywords_of(query))
        keywords = tuple(tokenize_query(query))
        if not keywords:
            raise QuestError(f"query contains no usable keywords: {query!r}")
        return keywords

    def _engine_version(self) -> Any:
        return getattr(self.engine, "version", 0)

    def _default_deadline_ms(self) -> float | None:
        engine_settings = getattr(self.engine, "settings", None)
        return getattr(engine_settings, "default_deadline_ms", None)

    def _stale_lookup(
        self, keywords: tuple[str, ...], k: int
    ) -> tuple[_Computed, Any] | None:
        """The last good (non-degraded) ranking for this query, any revision.

        Returns the ranking together with the engine revision it was
        computed at, or ``None`` when stale serving is off or nothing
        was ever published for the key.
        """
        if not self.settings.serve_stale:
            return None
        return self._stale.get((keywords, k))  # questlint: disable=cache-revision  # deliberately version-free: a stale lookup *wants* the last good answer from any revision (see _stale.put)

    def _run_engine(
        self,
        query: str,
        keywords: tuple[str, ...],
        k: int,
        deadline: "Deadline | None" = None,
    ) -> _Computed:
        search_context = getattr(self.engine, "search_context", None)
        if search_context is not None:
            if deadline is not None and self._engine_takes_deadline:
                context = search_context(
                    keywords=list(keywords), k=k, deadline=deadline
                )
            else:
                context = search_context(keywords=list(keywords), k=k)
            return _Computed(tuple(context.explanations), context.trace)
        # Multi-source (or any foreign) engine: no per-run trace surface.
        return _Computed(tuple(self.engine.search(query, k)), None)

    def _respond(
        self,
        query: str,
        keywords: tuple[str, ...],
        k: int,
        computed: _Computed,
        source: str,
        start: float,
    ) -> ServiceResponse:
        latency = self._clock() - start
        self._metrics.record_completion(
            latency,
            executed=source == "engine",
            coalesced=source == "coalesced",
            # None = the result cache was never consulted for this request.
            cache_hit=(source == "cache") if self.settings.cache_results else None,
        )
        if source == "stale" or (
            computed.trace is not None and computed.trace.degraded
        ):
            self._metrics.record_degraded()
        return ServiceResponse(
            query=query,
            keywords=keywords,
            k=k,
            explanations=computed.explanations,
            trace=computed.trace,
            source=source,
            latency_s=latency,
        )

    def __repr__(self) -> str:
        return (
            f"QuestService({self.engine!r}, "
            f"max_concurrent={self.settings.max_concurrent}, "
            f"max_queue={self.settings.max_queue})"
        )
