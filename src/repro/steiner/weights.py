"""Edge weighting schemes for the schema graph.

The key idea of the backward step is that a Steiner tree over the *schema*
says nothing about whether tuples actually join — so QUEST weighs the
pk/fk edges with a mutual-information-based distance computed from the
instance (following Yang et al.'s summary graphs): joins that actually
produce informative tuple pairings become short edges and are preferred.
A uniform scheme is also provided (a) for hidden sources with no instance
access and (b) as the ablation baseline for experiment E8.
"""

from __future__ import annotations

from repro.db.catalog import Catalog
from repro.db.schema import ColumnRef, Schema
from repro.steiner.graph import EdgeKind, SchemaGraph

__all__ = [
    "INTRA_TABLE_WEIGHT",
    "UNIFORM_JOIN_WEIGHT",
    "MIN_EDGE_WEIGHT",
    "build_schema_graph",
]

#: Weight of a primary-key-to-attribute edge (cheap: no join involved).
INTRA_TABLE_WEIGHT = 0.1
#: Join-edge weight under the uniform scheme.
UNIFORM_JOIN_WEIGHT = 1.0
#: Positive floor so informative joins never become free.
MIN_EDGE_WEIGHT = 0.01


def build_schema_graph(
    schema: Schema,
    catalog: Catalog | None = None,
    mutual_information: bool = True,
) -> SchemaGraph:
    """Build the weighted schema graph.

    Args:
        schema: the database schema.
        catalog: instance statistics; required for mutual-information
            weighting (ignored otherwise).
        mutual_information: weigh join edges by the normalised information
            distance of the actual join when instance statistics are
            available; fall back to uniform weights otherwise.

    Returns:
        The :class:`SchemaGraph` with intra-table and join edges installed.
    """
    graph = SchemaGraph(schema)

    for table in schema.tables:
        for key_column in table.primary_key:
            key_ref = ColumnRef(table.name, key_column)
            for column in table.columns:
                if column.name == key_column:
                    continue
                graph.add_edge(
                    key_ref,
                    ColumnRef(table.name, column.name),
                    INTRA_TABLE_WEIGHT,
                    EdgeKind.INTRA,
                )

    use_mi = mutual_information and catalog is not None and catalog.has_instance
    for fk in schema.foreign_keys:
        weight = UNIFORM_JOIN_WEIGHT
        if use_mi:
            stats = catalog.join_stats(fk)
            if stats is not None:
                # distance in [0, 1]: 0 = fully informative join. Map onto
                # [MIN_EDGE_WEIGHT, 1 + MIN_EDGE_WEIGHT] so empty joins cost
                # the most and no edge is free.
                weight = MIN_EDGE_WEIGHT + stats.distance
        graph.add_edge(fk.source, fk.target, weight, EdgeKind.JOIN, fk)

    return graph
