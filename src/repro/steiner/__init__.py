"""Steiner-tree machinery for the backward step.

Weighted schema graph construction (mutual-information or uniform edge
weights), exact Dreyfus-Wagner trees, the KMB approximation and top-k
enumeration with sub-tree pruning in the style of Ding et al.
"""

from repro.steiner.approx import approximate_steiner_tree
from repro.steiner.exact import (
    exact_steiner_tree,
    exact_steiner_tree_reference,
    shortest_paths,
)
from repro.steiner.graph import CompactGraph, EdgeKind, SchemaEdge, SchemaGraph
from repro.steiner.topk import top_k_steiner_trees
from repro.steiner.tree import SteinerTree
from repro.steiner.weights import (
    INTRA_TABLE_WEIGHT,
    MIN_EDGE_WEIGHT,
    UNIFORM_JOIN_WEIGHT,
    build_schema_graph,
)

__all__ = [
    "CompactGraph",
    "EdgeKind",
    "INTRA_TABLE_WEIGHT",
    "MIN_EDGE_WEIGHT",
    "SchemaEdge",
    "SchemaGraph",
    "SteinerTree",
    "UNIFORM_JOIN_WEIGHT",
    "approximate_steiner_tree",
    "build_schema_graph",
    "exact_steiner_tree",
    "exact_steiner_tree_reference",
    "shortest_paths",
    "top_k_steiner_trees",
]
