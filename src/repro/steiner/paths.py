"""Bounded join-path candidate enumeration (the in-memory contract).

The backward step's candidate space is "acyclic join paths between two
schema-graph attributes, up to a hop bound". This module defines the
engine-neutral contract for enumerating them, and its in-memory
implementation; :class:`~repro.storage.sqlite.SQLiteBackend` implements
the same contract with a bounded recursive CTE plus window functions over
an edge relation, and the two are required to return **identical** lists
(``tests`` assert it pair for pair).

Determinism contract (what makes cross-engine identity possible):

- a path's cost is the *left-to-right* float sum of its edge weights —
  the same IEEE-754 fold a SQL ``p.cost + e.weight`` recursion performs;
- paths are encoded as ``/node/node/.../`` strings of ``str(node)``
  (node names are SQL-safe identifiers that never contain ``/``), and
  ties on cost order by that string — byte order and codepoint order
  agree on these names;
- per pair, the ``k`` first paths under ``(cost, path string)`` are kept.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.schema import ColumnRef
from repro.errors import SteinerError
from repro.steiner.graph import SchemaGraph

__all__ = ["JoinPath", "encode_path", "enumerate_join_paths"]

#: One candidate: (node names source..target in order, left-fold cost).
JoinPath = tuple[tuple[str, ...], float]


def encode_path(names: Sequence[str]) -> str:
    """The ``/a/b/c/`` encoding shared with the SQL recursion."""
    return "/" + "/".join(names) + "/"


def decode_path(encoded: str) -> tuple[str, ...]:
    """Inverse of :func:`encode_path`."""
    return tuple(encoded.strip("/").split("/"))


def enumerate_join_paths(
    graph: SchemaGraph,
    pairs: Sequence[tuple[ColumnRef, ColumnRef]],
    k: int,
    max_hops: int,
) -> list[list[JoinPath]]:
    """Up to *k* cheapest acyclic paths per (source, target) pair.

    Paths carry at most *max_hops* edges; a ``source == target`` pair
    yields the trivial zero-cost path. Ordering per pair is
    ``(cost, encoded path)`` — see the module contract.
    """
    if k <= 0:
        raise SteinerError(f"k must be positive, got {k}")
    if max_hops < 0:
        raise SteinerError(f"max_hops must be non-negative, got {max_hops}")
    compact = graph.compact()
    index = compact.index
    nodes = compact.nodes
    names = [str(node) for node in nodes]
    #: per node: [(neighbour, weight)] — adjacency iteration order does
    #: not matter, the final sort is total.
    adjacency = [
        [(neighbour, weight) for neighbour, weight, _edge in incident]
        for incident in compact.neighbors
    ]

    results: list[list[JoinPath]] = []
    for source, target in pairs:
        source_index = index.get(source)
        target_index = index.get(target)
        if source_index is None or target_index is None:
            missing = source if source_index is None else target
            raise SteinerError(f"unknown node: {missing}")
        found: list[tuple[float, str, tuple[str, ...]]] = []
        # Exhaustive bounded DFS over simple paths; the schema graph is
        # small and max_hops keeps the frontier bounded.
        stack: list[tuple[int, float, tuple[int, ...]]] = [
            (source_index, 0.0, (source_index,))
        ]
        while stack:
            node, cost, path = stack.pop()
            if node == target_index:
                path_names = tuple(names[i] for i in path)
                found.append((cost, encode_path(path_names), path_names))
            if len(path) - 1 >= max_hops:
                continue
            on_path = set(path)
            for neighbour, weight in adjacency[node]:
                if neighbour in on_path:
                    continue
                # Left-fold accumulation: the SQL recursion's
                # ``p.cost + e.weight``, step for step.
                stack.append((neighbour, cost + weight, path + (neighbour,)))
        found.sort(key=lambda item: (item[0], item[1]))
        results.append([(path_names, cost) for cost, _enc, path_names in found[:k]])
    return results
