"""KMB approximation for minimum Steiner trees.

Kou, Markowsky and Berman's classic 2-approximation: build the metric
closure over the terminals, take its minimum spanning tree, expand closure
edges back into shortest paths, re-span and prune. Used when configurations
carry many terminals (where Dreyfus-Wagner's 3^t blows up) and as a fast
lower-quality comparator in benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.schema import ColumnRef
from repro.errors import SteinerError
from repro.steiner.exact import _path_edges, _tree_weight, shortest_paths
from repro.steiner.graph import SchemaEdge, SchemaGraph
from repro.steiner.tree import SteinerTree

__all__ = ["approximate_steiner_tree"]

_INF = float("inf")


def _minimum_spanning_tree(
    vertices: set[ColumnRef], edges: list[SchemaEdge]
) -> set[SchemaEdge]:
    """Kruskal MST over an edge list (assumes a connected subgraph)."""
    parent: dict[ColumnRef, ColumnRef] = {v: v for v in vertices}

    def find(v: ColumnRef) -> ColumnRef:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    chosen: set[SchemaEdge] = set()
    for edge in sorted(edges, key=lambda e: (e.weight, str(e.left), str(e.right))):
        root_left, root_right = find(edge.left), find(edge.right)
        if root_left != root_right:
            parent[root_left] = root_right
            chosen.add(edge)
    return chosen


def _prune_leaves(edges: set[SchemaEdge], terminals: frozenset) -> set[SchemaEdge]:
    """Iteratively remove non-terminal leaves (they add weight, no value)."""
    edges = set(edges)
    while True:
        degree: dict[ColumnRef, int] = {}
        for edge in edges:
            degree[edge.left] = degree.get(edge.left, 0) + 1
            degree[edge.right] = degree.get(edge.right, 0) + 1
        removable = [
            edge
            for edge in edges
            if (degree[edge.left] == 1 and edge.left not in terminals)
            or (degree[edge.right] == 1 and edge.right not in terminals)
        ]
        if not removable:
            return edges
        for edge in removable:
            edges.discard(edge)


def approximate_steiner_tree(
    graph: SchemaGraph,
    terminals: Sequence[ColumnRef],
    cached: bool = True,
    batched: bool = True,
) -> SteinerTree:
    """KMB 2-approximate Steiner tree over *terminals*.

    Per-terminal shortest paths come from the graph's all-pairs cache
    (:meth:`~repro.steiner.graph.SchemaGraph.shortest_paths_from`), so
    repeated terminal sets — and terminals shared with the Dreyfus-Wagner
    DP — pay for each Dijkstra once per graph mutation; *batched* fills
    the still-missing sources with one multi-source pass
    (:meth:`~repro.steiner.graph.SchemaGraph.prefetch_shortest_paths`)
    instead of one Dijkstra each — the rows are bit-identical either way.
    ``cached=False`` recomputes them locally (identical maps, benchmark
    comparator; *batched* is then ignored).
    """
    terminal_list = sorted(set(terminals), key=str)
    if not terminal_list:
        raise SteinerError("no terminals")
    for terminal in terminal_list:
        if terminal not in graph:
            raise SteinerError(f"terminal not in graph: {terminal}")
    terminal_set = frozenset(terminal_list)
    if len(terminal_list) == 1:
        return SteinerTree(terminal_set, frozenset(), 0.0)

    # Step 1: shortest paths from every terminal.
    if cached and batched:
        graph.prefetch_shortest_paths(terminal_list)
    sp: dict[ColumnRef, tuple[dict, dict]] = {
        t: graph.shortest_paths_from(t) if cached else shortest_paths(graph, t)
        for t in terminal_list
    }

    # Step 2: MST of the metric closure (represented implicitly).
    closure: list[tuple[float, ColumnRef, ColumnRef]] = []
    for i, left in enumerate(terminal_list):
        distances = sp[left][0]
        for right in terminal_list[i + 1 :]:
            distance = distances.get(right, _INF)
            if distance == _INF:
                raise SteinerError(f"terminals are disconnected: {left} / {right}")
            closure.append((distance, left, right))
    closure.sort(key=lambda item: (item[0], str(item[1]), str(item[2])))

    parent: dict[ColumnRef, ColumnRef] = {t: t for t in terminal_list}

    def find(v: ColumnRef) -> ColumnRef:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    # Step 3: expand chosen closure edges into concrete shortest paths.
    expanded: set[SchemaEdge] = set()
    for _distance, left, right in closure:
        if find(left) == find(right):
            continue
        parent[find(left)] = find(right)
        expanded |= _path_edges(graph, sp[left][1], left, right)

    # Step 4: MST of the expanded subgraph; step 5: prune non-terminal leaves.
    vertices = {e.left for e in expanded} | {e.right for e in expanded}
    spanning = _minimum_spanning_tree(vertices, list(expanded))
    pruned = _prune_leaves(spanning, terminal_set)
    # Canonical-order sum: see _tree_weight (set iteration order must not
    # leak into the reported weight's last ulp).
    return SteinerTree(terminal_set, frozenset(pruned), _tree_weight(pruned))
