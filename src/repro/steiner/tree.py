"""Steiner tree values and their conversion to join paths.

A tree over the schema graph *is* a join-path specification: its JOIN-kind
edges name the primary/foreign key pairs to equi-join, and the set of
tables touched by its nodes is the FROM clause. The conversion to a
:class:`~repro.db.query.SelectQuery` happens later in the query builder;
here we keep the structural object plus validation helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.schema import ColumnRef, ForeignKey
from repro.errors import SteinerError
from repro.steiner.graph import EdgeKind, SchemaEdge

__all__ = ["SteinerTree"]


@dataclass(frozen=True, slots=True)
class SteinerTree:
    """An undirected tree connecting a set of terminal attributes.

    Slotted: the backward step materialises one instance per enumerated
    tree per configuration, so the per-instance ``__dict__`` is worth
    dropping on this hot path.

    Attributes:
        terminals: the attributes the tree was required to connect.
        edges: the tree edges (may be empty when all terminals coincide).
        weight: total edge weight.
    """

    terminals: frozenset
    edges: frozenset
    weight: float
    _nodes: frozenset = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        nodes: set[ColumnRef] = set(self.terminals)
        for edge in self.edges:
            nodes.add(edge.left)
            nodes.add(edge.right)
        object.__setattr__(self, "_nodes", frozenset(nodes))

    # -- structure -----------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        """All attributes touched by the tree (terminals + Steiner points)."""
        return self._nodes

    @property
    def steiner_points(self) -> frozenset:
        """Non-terminal nodes the tree passes through."""
        return self._nodes - self.terminals

    @property
    def tables(self) -> frozenset:
        """Tables the tree's nodes belong to (the FROM clause)."""
        return frozenset(node.table for node in self._nodes)

    def join_edges(self) -> tuple[SchemaEdge, ...]:
        """The pk/fk edges (deterministically ordered)."""
        joins = [e for e in self.edges if e.kind == EdgeKind.JOIN]
        return tuple(sorted(joins, key=lambda e: (str(e.left), str(e.right))))

    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        """The foreign keys realised by the tree's join edges."""
        keys = []
        for edge in self.join_edges():
            if edge.foreign_key is None:
                raise SteinerError(f"join edge without foreign key: {edge}")
            keys.append(edge.foreign_key)
        return tuple(keys)

    def signature(self) -> frozenset:
        """Order-insensitive identity: the set of edge keys."""
        return frozenset(edge.key for edge in self.edges)

    # -- validation -----------------------------------------------------------

    def is_valid_tree(self) -> bool:
        """Whether edges form a connected acyclic graph spanning terminals."""
        if not self.edges:
            return len({node.table for node in self.terminals}) <= 1
        adjacency: dict[ColumnRef, list[ColumnRef]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.left, []).append(edge.right)
            adjacency.setdefault(edge.right, []).append(edge.left)
        vertices = set(adjacency)
        if len(self.edges) != len(vertices) - 1:
            return False  # a connected graph with |V|-1 edges is a tree
        start = next(iter(vertices))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if seen != vertices:
            return False
        return all(t in vertices for t in self.terminals if self.edges)

    def contains_tree(self, other: "SteinerTree") -> bool:
        """Whether *other*'s edges are a subset of this tree's edges."""
        return other.signature() <= self.signature()

    def __lt__(self, other: "SteinerTree") -> bool:
        return (self.weight, sorted(map(str, self._nodes))) < (
            other.weight,
            sorted(map(str, other._nodes)),
        )

    def __str__(self) -> str:
        edges = ", ".join(str(e) for e in sorted(self.edges, key=str))
        return f"SteinerTree(weight={self.weight:.3f}, edges=[{edges}])"
