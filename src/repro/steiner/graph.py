"""The weighted schema graph the backward step searches.

Per the paper, the graph is built over the database *schema*, not the
instance: one node per attribute, with edges connecting (i) the node of a
table's primary key with every other attribute of the same table and
(ii) the nodes of each primary/foreign key pair. Composite primary keys
contribute one hub node per key column.

The graph is undirected with positive edge weights; nodes are
:class:`~repro.db.schema.ColumnRef` values so trees convert directly into
join paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cache import LRUCache
from repro.db.schema import ColumnRef, ForeignKey, Schema
from repro.errors import SteinerError

__all__ = ["EdgeKind", "SchemaEdge", "SchemaGraph", "STEINER_CACHE_SIZE"]

#: Capacity of the per-graph Steiner-result cache. Terminal sets are drawn
#: from configurations over one schema, so the working set is small; the
#: bound only guards against adversarial workloads.
STEINER_CACHE_SIZE = 512


@dataclass(frozen=True)
class SchemaEdge:
    """An undirected weighted edge of the schema graph."""

    left: ColumnRef
    right: ColumnRef
    weight: float
    kind: str  # "intra" (pk-to-attribute) or "join" (pk-fk pair)
    foreign_key: ForeignKey | None = None

    @property
    def key(self) -> frozenset:
        """Order-insensitive identity of the edge."""
        return frozenset((self.left, self.right))

    def other(self, node: ColumnRef) -> ColumnRef:
        """The endpoint opposite *node*."""
        if node == self.left:
            return self.right
        if node == self.right:
            return self.left
        raise SteinerError(f"{node} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.left} --{self.weight:.3f}--> {self.right} [{self.kind}]"


class EdgeKind:
    """Edge kind constants (plain strings keep edges hashable/printable)."""

    INTRA = "intra"
    JOIN = "join"


class SchemaGraph:
    """Undirected weighted graph over a schema's attributes."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._adjacency: dict[ColumnRef, dict[ColumnRef, SchemaEdge]] = {}
        self._edges: dict[frozenset, SchemaEdge] = {}
        #: Cross-query cache of top-k Steiner enumerations, keyed by
        #: (frozen terminal set, k, pruning flags); consulted by
        #: :func:`repro.steiner.topk.top_k_steiner_trees`.
        self.steiner_cache = LRUCache(STEINER_CACHE_SIZE)
        for ref in schema.column_refs():
            self._adjacency[ref] = {}

    # -- construction ------------------------------------------------------

    def add_edge(
        self,
        left: ColumnRef,
        right: ColumnRef,
        weight: float,
        kind: str,
        foreign_key: ForeignKey | None = None,
    ) -> SchemaEdge:
        """Insert an edge; re-adding an edge keeps the *lighter* weight."""
        if left == right:
            raise SteinerError(f"self-loop on {left}")
        if left not in self._adjacency or right not in self._adjacency:
            missing = left if left not in self._adjacency else right
            raise SteinerError(f"unknown node: {missing}")
        if weight <= 0:
            raise SteinerError(f"edge weight must be positive, got {weight}")
        edge = SchemaEdge(left, right, weight, kind, foreign_key)
        existing = self._edges.get(edge.key)
        if existing is not None and existing.weight <= weight:
            return existing
        # The graph changed: cached Steiner enumerations are stale.
        self.steiner_cache.clear()
        self._edges[edge.key] = edge
        self._adjacency[left][right] = edge
        self._adjacency[right][left] = edge
        return edge

    # -- access --------------------------------------------------------------

    @property
    def nodes(self) -> tuple[ColumnRef, ...]:
        """All attribute nodes (every schema column, even isolated ones)."""
        return tuple(self._adjacency)

    @property
    def edges(self) -> tuple[SchemaEdge, ...]:
        """All edges."""
        return tuple(self._edges.values())

    def __contains__(self, node: ColumnRef) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def neighbors(self, node: ColumnRef) -> Iterator[tuple[ColumnRef, SchemaEdge]]:
        """Iterate ``(neighbour, edge)`` pairs of *node*."""
        try:
            adjacency = self._adjacency[node]
        except KeyError:
            raise SteinerError(f"unknown node: {node}") from None
        return iter(adjacency.items())

    def edge_between(self, left: ColumnRef, right: ColumnRef) -> SchemaEdge | None:
        """The edge joining two nodes, if any."""
        return self._edges.get(frozenset((left, right)))

    def degree(self, node: ColumnRef) -> int:
        """Number of incident edges."""
        return len(self._adjacency[node])

    def connected(self, nodes: set[ColumnRef]) -> bool:
        """Whether all *nodes* lie in one connected component."""
        if not nodes:
            return True
        nodes = set(nodes)
        start = next(iter(nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour, _edge in self.neighbors(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return nodes <= seen

    def __repr__(self) -> str:
        return (
            f"SchemaGraph(nodes={len(self)}, edges={self.edge_count}, "
            f"schema={self.schema.name!r})"
        )
