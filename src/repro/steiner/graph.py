"""The weighted schema graph the backward step searches.

Per the paper, the graph is built over the database *schema*, not the
instance: one node per attribute, with edges connecting (i) the node of a
table's primary key with every other attribute of the same table and
(ii) the nodes of each primary/foreign key pair. Composite primary keys
contribute one hub node per key column.

The graph is undirected with positive edge weights; nodes are
:class:`~repro.db.schema.ColumnRef` values so trees convert directly into
join paths.

Two derived structures are cached on the graph and invalidated whenever
:meth:`SchemaGraph.add_edge` mutates it:

* a :class:`CompactGraph` — nodes interned to small integers with
  array-shaped adjacency, the representation every optimised Steiner
  kernel (Dreyfus-Wagner DP, top-k enumeration, Dijkstra) runs on;
* the all-pairs shortest-path cache (:meth:`SchemaGraph.shortest_paths_from`)
  feeding both the KMB approximation and the Dreyfus-Wagner base cases, so
  one graph answers every per-source Dijkstra exactly once between
  mutations.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.cache import LRUCache
from repro.db.schema import ColumnRef, ForeignKey, Schema
from repro.errors import SteinerError
from repro.forksafe import register_lock_holder
from repro.steiner.plancache import SteinerPlanCache


def _reset_graph_lock(graph: "SchemaGraph") -> None:
    graph._derived_lock = threading.Lock()

__all__ = [
    "CompactGraph",
    "EdgeKind",
    "SchemaEdge",
    "SchemaGraph",
    "STEINER_CACHE_SIZE",
]

#: Capacity of the per-graph Steiner-result cache. Terminal sets are drawn
#: from configurations over one schema, so the working set is small; the
#: bound only guards against adversarial workloads.
STEINER_CACHE_SIZE = 512


@dataclass(frozen=True)
class SchemaEdge:
    """An undirected weighted edge of the schema graph."""

    left: ColumnRef
    right: ColumnRef
    weight: float
    kind: str  # "intra" (pk-to-attribute) or "join" (pk-fk pair)
    foreign_key: ForeignKey | None = None

    @property
    def key(self) -> frozenset:
        """Order-insensitive identity of the edge."""
        return frozenset((self.left, self.right))

    def other(self, node: ColumnRef) -> ColumnRef:
        """The endpoint opposite *node*."""
        if node == self.left:
            return self.right
        if node == self.right:
            return self.left
        raise SteinerError(f"{node} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.left} --{self.weight:.3f}--> {self.right} [{self.kind}]"


class EdgeKind:
    """Edge kind constants (plain strings keep edges hashable/printable)."""

    INTRA = "intra"
    JOIN = "join"


_INF = float("inf")


class CompactGraph:
    """An immutable integer-interned snapshot of a :class:`SchemaGraph`.

    Nodes are interned to ``0..n-1`` in the graph's node order and edges to
    ``0..m-1`` in edge-insertion order, so Steiner kernels can carry node
    sets, edge sets and terminal subsets as integer bitmasks and index flat
    lists instead of hashing :class:`~repro.db.schema.ColumnRef` values.
    ``name_rank`` orders nodes by ``str(node)`` — the deterministic
    tie-break every shortest-path predecessor choice uses.

    Obtain instances through :meth:`SchemaGraph.compact`; they are rebuilt
    lazily after graph mutation.
    """

    __slots__ = (
        "nodes",
        "index",
        "name_rank",
        "neighbors",
        "edge_list",
        "edge_index",
        "edge_node_masks",
        "version",
        "_dijkstra_cache",
        "_edge_arrays",
    )

    def __init__(self, graph: "SchemaGraph") -> None:
        #: The topology revision this snapshot was built from — coherent
        #: because snapshots build under the same lock mutations hold.
        #: Consumers stamp it into shared-cache keys (the Steiner plan
        #: cache), so a row computed over a retained pre-mutation
        #: snapshot can never be read back under the new topology.
        self.version: int = graph.version
        self.nodes: tuple[ColumnRef, ...] = tuple(graph._adjacency)
        self.index: dict[ColumnRef, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        names = [str(node) for node in self.nodes]
        order = sorted(range(len(self.nodes)), key=names.__getitem__)
        self.name_rank = [0] * len(self.nodes)
        for rank, i in enumerate(order):
            self.name_rank[i] = rank
        self.edge_list: tuple[SchemaEdge, ...] = tuple(graph._edges.values())
        self.edge_index: dict[frozenset, int] = {
            edge.key: i for i, edge in enumerate(self.edge_list)
        }
        #: per node: [(neighbour index, edge weight, edge index), ...]
        #: preserving the adjacency iteration order of the backing graph;
        #: materialise edges through :attr:`edge_list` when needed.
        self.neighbors: list[list[tuple[int, float, int]]] = [
            [
                (self.index[neighbour], edge.weight, self.edge_index[edge.key])
                for neighbour, edge in adjacency.items()
            ]
            for adjacency in graph._adjacency.values()
        ]
        #: per edge: the bitmask of its two endpoint node indices.
        self.edge_node_masks: list[int] = [
            (1 << self.index[edge.left]) | (1 << self.index[edge.right])
            for edge in self.edge_list
        ]
        self._dijkstra_cache: dict[int, tuple[list[float], list[int]]] = {}
        #: Lazily-built directed edge arrays for the batched multi-source
        #: pass (see :meth:`distance_matrix`).
        self._edge_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.nodes)

    def _directed_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(source, destination, weight) arrays, one row per direction."""
        arrays = self._edge_arrays
        if arrays is None:
            src: list[int] = []
            dst: list[int] = []
            weights: list[float] = []
            for node, adjacency in enumerate(self.neighbors):
                for neighbour, weight, _edge_position in adjacency:
                    src.append(node)
                    dst.append(neighbour)
                    weights.append(weight)
            arrays = self._edge_arrays = (
                np.asarray(src, dtype=np.int64),
                np.asarray(dst, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            )
        return arrays

    def distance_matrix(
        self, sources: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """All-source shortest paths in one vectorised pass.

        Returns ``(distances, predecessors)`` arrays of shape
        ``(len(sources), n)``, row-aligned with *sources*; unreachable
        cells carry ``inf`` / ``-1``. Every row is **bit-identical** to
        :meth:`dijkstra` for the same source:

        - distances: synchronous Bellman-Ford rounds relax every directed
          edge with the same left-to-right float sums Dijkstra performs;
          positive weights make float path sums non-decreasing under
          extension, so the fixpoint is the minimum over simple paths —
          exactly Dijkstra's value.
        - predecessors: Dijkstra's tie rule resolves to "the neighbour
          with the smallest ``name_rank`` among those whose settled
          distance plus the edge weight *exactly* equals the final
          distance"; that closed form is evaluated directly here.

        Computed rows are stored in the per-source :meth:`dijkstra` cache
        (as lists), so later scalar calls are hits.
        """
        n = len(self.nodes)
        wanted = [s for s in dict.fromkeys(sources) if s not in self._dijkstra_cache]
        if wanted:
            esrc, edst, ew = self._directed_edges()
            k = len(wanted)
            # (n, k) layout: scatter-min by destination works on the rows.
            dist = np.full((n, k), _INF)
            dist[wanted, np.arange(k)] = 0.0
            if len(esrc):
                col_w = ew[:, None]
                for _ in range(n):
                    before = dist.copy()
                    np.minimum.at(dist, edst, dist[esrc] + col_w)
                    if np.array_equal(dist, before):
                        break
                # Predecessor extraction: min name_rank over edges whose
                # relaxation is exactly tight (finite sources only — an
                # inf + w == inf tie must not give unreachable nodes a
                # predecessor).
                rank = np.asarray(self.name_rank, dtype=np.int64)
                tight = (dist[esrc] + col_w == dist[edst]) & np.isfinite(dist[esrc])
                pred_rank = np.full((n, k), n, dtype=np.int64)
                np.minimum.at(
                    pred_rank, edst, np.where(tight, rank[esrc][:, None], n)
                )
                node_of_rank = np.empty(n, dtype=np.int64)
                node_of_rank[rank] = np.arange(n)
                preds = np.where(
                    pred_rank < n,
                    node_of_rank[np.minimum(pred_rank, n - 1)],
                    -1,
                )
            else:
                preds = np.full((n, k), -1, dtype=np.int64)
            for j, source in enumerate(wanted):
                self._dijkstra_cache[source] = (
                    dist[:, j].tolist(),
                    [int(p) for p in preds[:, j]],
                )
        distances = np.empty((len(sources), n))
        predecessors = np.empty((len(sources), n), dtype=np.int64)
        for row, source in enumerate(sources):
            cached_d, cached_p = self._dijkstra_cache[source]
            distances[row] = cached_d
            predecessors[row] = cached_p
        return distances, predecessors

    def dijkstra(self, source: int) -> tuple[list[float], list[int]]:
        """Single-source shortest paths from a node index (cached).

        Returns ``(distances, predecessors)`` as index-aligned lists;
        unreachable nodes carry ``inf`` / ``-1``. Predecessor ties on
        equal path weight break toward the predecessor whose ``str(node)``
        sorts first, making the maps independent of adjacency order (see
        :func:`repro.steiner.exact.shortest_paths`).
        """
        cached = self._dijkstra_cache.get(source)  # questlint: disable=cache-revision  # sealed per-snapshot cache: CompactGraph is immutable, mutation discards the whole snapshot (and this cache with it)
        if cached is not None:
            return cached
        n = len(self.nodes)
        distances = [_INF] * n
        predecessors = [-1] * n
        distances[source] = 0.0
        heap: list[tuple[float, int, int]] = [(0.0, 0, source)]
        counter = 1
        settled = [False] * n
        name_rank = self.name_rank
        neighbors = self.neighbors
        while heap:
            distance, _tie, node = heapq.heappop(heap)
            if settled[node]:
                continue
            settled[node] = True
            for neighbour, weight, _edge_position in neighbors[node]:
                candidate = distance + weight
                current = distances[neighbour]
                if candidate < current:
                    distances[neighbour] = candidate
                    predecessors[neighbour] = node
                    heapq.heappush(heap, (candidate, counter, neighbour))
                    counter += 1
                elif candidate == current and (
                    predecessors[neighbour] < 0
                    or name_rank[node] < name_rank[predecessors[neighbour]]
                ):
                    predecessors[neighbour] = node
        result = (distances, predecessors)
        self._dijkstra_cache[source] = result
        return result


class SchemaGraph:
    """Undirected weighted graph over a schema's attributes."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._adjacency: dict[ColumnRef, dict[ColumnRef, SchemaEdge]] = {}
        self._edges: dict[frozenset, SchemaEdge] = {}
        #: Cross-query cache of top-k Steiner enumerations, keyed by
        #: (frozen terminal set, k, pruning flags); consulted by
        #: :func:`repro.steiner.topk.top_k_steiner_trees`.
        self.steiner_cache = LRUCache(STEINER_CACHE_SIZE, label="steiner")
        #: Cross-query cache of Dreyfus-Wagner subset rows and singleton
        #: distance rows, keyed by frozen node-index subsets (see
        #: :mod:`repro.steiner.plancache`); superset/overlap queries reuse
        #: the shared rows. Cleared with the other derived caches.
        self.plan_cache = SteinerPlanCache()
        #: Monotonic topology revision: bumped whenever derived caches are
        #: invalidated (``add_edge`` / explicit resets). Part of
        #: ``Quest.version``, which keys the serving tier's result cache.
        self.version = 0
        #: Makes the version bump + derived-cache invalidation atomic
        #: against snapshot retention in :meth:`compact` — without it a
        #: builder could install a pre-mutation snapshot *after* the
        #: reset cleared it, pinning stale topology under the new version.
        self._derived_lock = threading.Lock()
        register_lock_holder(self, _reset_graph_lock)
        #: Lazily built integer-interned snapshot (see :meth:`compact`).
        self._compact: CompactGraph | None = None
        #: Per-source shortest-path maps keyed by (source node, topology
        #: revision) — the all-pairs cache the KMB approximation and
        #: Dreyfus-Wagner feed from. The revision in the key keeps a map
        #: computed over the old topology but stored after a concurrent
        #: mutation unreachable.
        self._sp_cache: dict[tuple[ColumnRef, int], tuple[dict, dict]] = {}
        for ref in schema.column_refs():
            self._adjacency[ref] = {}

    # -- construction ------------------------------------------------------

    def add_edge(
        self,
        left: ColumnRef,
        right: ColumnRef,
        weight: float,
        kind: str,
        foreign_key: ForeignKey | None = None,
    ) -> SchemaEdge:
        """Insert an edge; re-adding an edge keeps the *lighter* weight."""
        if left == right:
            raise SteinerError(f"self-loop on {left}")
        if left not in self._adjacency or right not in self._adjacency:
            missing = left if left not in self._adjacency else right
            raise SteinerError(f"unknown node: {missing}")
        if weight <= 0:
            raise SteinerError(f"edge weight must be positive, got {weight}")
        edge = SchemaEdge(left, right, weight, kind, foreign_key)
        # The keep-the-lighter-edge guard, the mutation, the version
        # bump and the cache invalidation form ONE critical section
        # (shared with the snapshot build in :meth:`compact`), so no
        # lock holder ever pairs a new version with the old topology —
        # and concurrent re-adds of one key cannot race past the guard
        # and keep the heavier edge. The per-node adjacency
        # dicts are replaced copy-on-write (O(degree)) because lock-free
        # readers iterate them mid-search (``neighbors()`` in the
        # reference kernels) and must keep their consistent pre-mutation
        # view; ``_edges`` is inserted in place — its only concurrent
        # read shapes (``.get``, one-shot ``tuple(values())``) are
        # GIL-atomic, and a full copy would make bulk construction
        # quadratic in the edge count.
        with self._derived_lock:
            existing = self._edges.get(edge.key)
            if existing is not None and existing.weight <= weight:
                return existing
            self._edges[edge.key] = edge
            self._adjacency[left] = {**self._adjacency[left], right: edge}
            self._adjacency[right] = {**self._adjacency[right], left: edge}
            self._invalidate_derived()
        return edge

    def reset_derived_caches(self) -> None:
        """Drop every structure derived from the current topology.

        Called by :meth:`add_edge` on mutation; also used by the perf
        harness to force cold-cache kernel measurements.
        """
        with self._derived_lock:
            self._invalidate_derived()

    def _invalidate_derived(self) -> None:
        """Bump the revision and drop derived caches (lock held)."""
        self.version += 1
        self.steiner_cache.clear()
        self.plan_cache.clear()
        self._compact = None
        self._sp_cache.clear()

    # -- access --------------------------------------------------------------

    @property
    def nodes(self) -> tuple[ColumnRef, ...]:
        """All attribute nodes (every schema column, even isolated ones)."""
        return tuple(self._adjacency)

    @property
    def edges(self) -> tuple[SchemaEdge, ...]:
        """All edges."""
        return tuple(self._edges.values())

    def __contains__(self, node: ColumnRef) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def neighbors(self, node: ColumnRef) -> Iterator[tuple[ColumnRef, SchemaEdge]]:
        """Iterate ``(neighbour, edge)`` pairs of *node*."""
        try:
            adjacency = self._adjacency[node]
        except KeyError:
            raise SteinerError(f"unknown node: {node}") from None
        return iter(adjacency.items())

    def edge_between(self, left: ColumnRef, right: ColumnRef) -> SchemaEdge | None:
        """The edge joining two nodes, if any."""
        return self._edges.get(frozenset((left, right)))

    # -- derived caches ------------------------------------------------------

    def compact(self) -> CompactGraph:
        """The integer-interned snapshot (rebuilt lazily after mutation).

        Built under the same lock :meth:`add_edge` mutates under, so a
        snapshot always reflects one coherent topology (never a
        mid-mutation state) and a stale build can never be installed
        after an invalidation cleared it.
        """
        snapshot = self._compact
        if snapshot is None:
            with self._derived_lock:
                snapshot = self._compact
                if snapshot is None:
                    snapshot = self._compact = CompactGraph(self)
        return snapshot

    def shortest_paths_from(
        self, source: ColumnRef
    ) -> tuple[dict[ColumnRef, float], dict[ColumnRef, ColumnRef]]:
        """Cached single-source shortest paths (distances, predecessors).

        Identical in content to
        :func:`repro.steiner.exact.shortest_paths` but memoised on the
        graph: the first call per source runs one interned Dijkstra, later
        calls (other terminals of the same configuration, other
        configurations, other queries) are dictionary lookups until
        :meth:`add_edge` invalidates the cache.
        """
        version = self.version
        cached = self._sp_cache.get((source, version))
        if cached is not None:
            return cached
        compact = self.compact()
        try:
            source_index = compact.index[source]
        except KeyError:
            raise SteinerError(f"unknown node: {source}") from None
        raw_distances, raw_predecessors = compact.dijkstra(source_index)
        nodes = compact.nodes
        distances: dict[ColumnRef, float] = {}
        predecessors: dict[ColumnRef, ColumnRef] = {}
        for i, distance in enumerate(raw_distances):
            if distance < float("inf"):
                distances[nodes[i]] = distance
                if raw_predecessors[i] >= 0:
                    predecessors[nodes[i]] = nodes[raw_predecessors[i]]
        result = (distances, predecessors)
        self._sp_cache[(source, version)] = result
        return result

    def prefetch_shortest_paths(self, sources: Sequence[ColumnRef]) -> None:
        """Warm the per-source shortest-path cache in one batched pass.

        One :meth:`CompactGraph.distance_matrix` call over every source at
        once, instead of one Dijkstra per later
        :meth:`shortest_paths_from` call. Rows land in the same per-source
        cache, bit-identical to the scalar path, so this only moves
        *when* the work happens.
        """
        compact = self.compact()
        indices = []
        for source in sources:
            index = compact.index.get(source)
            if index is None:
                raise SteinerError(f"unknown node: {source}")
            indices.append(index)
        if indices:
            compact.distance_matrix(indices)

    def degree(self, node: ColumnRef) -> int:
        """Number of incident edges."""
        return len(self._adjacency[node])

    def connected(self, nodes: set[ColumnRef]) -> bool:
        """Whether all *nodes* lie in one connected component."""
        if not nodes:
            return True
        nodes = set(nodes)
        start = next(iter(nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour, _edge in self.neighbors(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return nodes <= seen

    def __repr__(self) -> str:
        return (
            f"SchemaGraph(nodes={len(self)}, edges={self.edge_count}, "
            f"schema={self.schema.name!r})"
        )
