"""Top-k Steiner tree enumeration with sub-tree pruning.

QUEST's backward step needs not one but the *top-k* join paths per
configuration. We extend the dynamic-programming-on-(vertex, terminal-set)
approach of Ding et al.'s DPBF ("Finding top-k min-cost connected trees in
databases", ICDE 2007 — the paper's reference [3]) to work on the schema
graph: states ``(v, S)`` — the best trees rooted at ``v`` covering terminal
subset ``S`` — are popped from a priority queue in increasing cost and
grown by edges or merged at shared roots. Keeping up to *k* entries per
state yields the k cheapest trees.

As in QUEST, trees that duplicate or merely extend an already-emitted tree
(i.e. contain a previously computed tree as a sub-tree while connecting the
same terminals) are discarded, so the k results are structurally distinct
join paths rather than one path plus k-1 padded variants.

The default (``interned=True``) search runs entirely on integers: nodes,
edges and terminals are interned through
:meth:`~repro.steiner.graph.SchemaGraph.compact`, and every tree in flight
is a pair of bitmasks (edge set, node set). Growing a tree is a bitwise
OR, the cycle check is a bit test, merge disjointness is ``a & b == 0``
and the sub-tree redundancy filter is ``prior & sig == prior`` — no
frozenset is allocated until a finished tree is emitted. The pop/push
sequence is exactly that of the original frozenset formulation (retained
as the ``interned=False`` reference and parity oracle), so both return
identical trees in identical order.

Enumeration results are memoised on the graph itself: a
:class:`~repro.steiner.graph.SchemaGraph` carries a ``steiner_cache``
keyed by the frozen terminal set (plus k, the pruning flags and the
implementation), so the same terminal combination — which recurs both
across a query's configurations and across queries — is answered without
re-running the search. Graph mutation invalidates the cache.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Sequence

from repro import faults
from repro.bits import iter_bits
from repro.db.schema import ColumnRef
from repro.errors import SteinerError
from repro.steiner.graph import SchemaGraph
from repro.steiner.tree import SteinerTree

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.resilience import Deadline

__all__ = ["top_k_steiner_trees"]

#: Cached marker for terminal sets known to be disconnected, so repeats
#: skip the connectivity BFS too (and still raise, as the cold path does).
_DISCONNECTED = object()


def top_k_steiner_trees(
    graph: SchemaGraph,
    terminals: Sequence[ColumnRef],
    k: int,
    prune_supertrees: bool = True,
    max_pops: int = 200_000,
    interned: bool = True,
    assume_connected: bool = False,
    deadline: "Deadline | None" = None,
) -> list[SteinerTree]:
    """Enumerate up to *k* cheapest Steiner trees connecting *terminals*.

    Args:
        graph: the weighted schema graph.
        terminals: attributes to connect (duplicates collapse).
        k: number of trees wanted.
        prune_supertrees: discard candidates that contain an already
            emitted tree as a sub-tree (QUEST's redundancy filter); set to
            ``False`` to enumerate raw k-best trees.
        max_pops: safety valve on queue pops for adversarial graphs.
        interned: run the bitmask search (the default); ``False`` selects
            the frozenset reference implementation. Results are identical.
        assume_connected: skip the connectivity BFS. Only pass ``True``
            when the caller has already established that the terminals
            share a component (the backward stage's batched prefilter);
            results are then identical to the checked path.
        deadline: cooperative cancellation point. The pop loop checks
            remaining budget every 64 pops and, on expiry, stops and
            returns the trees emitted so far (possibly none) — best-effort
            partial results, which are deliberately *not* memoised in the
            graph's Steiner cache.

    Returns:
        Trees in increasing weight order (possibly fewer than *k*).
    """
    if k <= 0:
        raise SteinerError(f"k must be positive, got {k}")
    terminal_list = sorted(set(terminals), key=str)
    if not terminal_list:
        raise SteinerError("no terminals")
    for terminal in terminal_list:
        if terminal not in graph:
            raise SteinerError(f"terminal not in graph: {terminal}")
    terminal_set = frozenset(terminal_list)
    if len(terminal_list) == 1:
        return [SteinerTree(terminal_set, frozenset(), 0.0)]

    cache = getattr(graph, "steiner_cache", None)
    # The topology revision observed *before* the search is part of the
    # key: trees enumerated over the old topology but stored after a
    # concurrent add_edge (which bumps the version and clears the cache)
    # land under the old version, unreachable to post-mutation readers.
    cache_key = (
        terminal_set,
        k,
        prune_supertrees,
        max_pops,
        interned,
        getattr(graph, "version", 0),
    )
    if cache is not None:
        cached = cache.get(cache_key)
        if cached is _DISCONNECTED:
            raise SteinerError(f"terminals are disconnected: {terminal_list}")
        if cached is not None:
            return list(cached)

    if not assume_connected and not graph.connected(set(terminal_list)):
        if cache is not None:
            cache.put(cache_key, _DISCONNECTED)
        raise SteinerError(f"terminals are disconnected: {terminal_list}")

    search = _search_interned if interned else _search_reference
    results = search(
        graph, terminal_list, terminal_set, k, prune_supertrees, max_pops, deadline
    )

    # A run whose deadline died mid-enumeration may be truncated; caching
    # it would serve partial answers to later unbounded requests.
    if cache is not None and not (deadline is not None and deadline.expired()):
        # Trees are frozen; storing a tuple keeps cached results immutable.
        cache.put(cache_key, tuple(results))
    return results


def _search_interned(
    graph: SchemaGraph,
    terminal_list: list[ColumnRef],
    terminal_set: frozenset,
    k: int,
    prune_supertrees: bool,
    max_pops: int,
    deadline: "Deadline | None" = None,
) -> list[SteinerTree]:
    """The bitmask DPBF search (every in-flight tree is two integers)."""
    compact = graph.compact()
    node_index = compact.index
    neighbors = compact.neighbors
    edge_list = compact.edge_list

    full_mask = (1 << len(terminal_list)) - 1
    #: per node index: the terminal bit it carries (0 for Steiner nodes) —
    #: a flat list, indexed on the grow inner loop.
    terminal_bit = [0] * len(compact)
    for i, t in enumerate(terminal_list):
        terminal_bit[node_index[t]] = 1 << i

    counter = itertools.count()
    #: heap entries: (cost, tiebreak, root index, terminal mask, edge mask,
    #: node mask) — comparisons never pass the unique tiebreak.
    heap: list[tuple[float, int, int, int, int, int]] = []
    #: per root, per terminal mask: (cost, edge mask, node mask) accepted
    #: so far (bounded by k). Indexing by root first keeps the merge scan
    #: to the one root that can produce merges; insertion order within a
    #: root matches the flat dict's, so the push sequence is unchanged.
    accepted: dict[int, dict[int, list[tuple[float, int, int]]]] = {}

    for i, t in enumerate(terminal_list):
        node = node_index[t]
        heapq.heappush(heap, (0.0, next(counter), node, 1 << i, 0, 1 << node))

    results: list[SteinerTree] = []
    emitted_signatures: list[int] = []
    seen_results: set[int] = set()
    pops = 0

    while heap and len(results) < k and pops < max_pops:
        if pops & 63 == 0:
            faults.fire("steiner.expand")
            if deadline is not None and deadline.expired():
                break  # cooperative cancellation: emit best-so-far trees
        cost, _tie, root, mask, edges, tree_nodes = heapq.heappop(heap)
        pops += 1
        by_mask = accepted.get(root)
        if by_mask is None:
            by_mask = accepted[root] = {}
        bucket = by_mask.get(mask)
        if bucket is None:
            bucket = by_mask[mask] = []
        if len(bucket) >= k or any(edges == prior for _c, prior, _n in bucket):
            continue
        bucket.append((cost, edges, tree_nodes))

        if mask == full_mask:
            if edges in seen_results:
                continue
            # Grown/merged states are connected by construction and
            # ``tree_nodes`` is exactly the edge-endpoint set, so a cycle
            # (node-overlapping merge) is the only reachable validity
            # failure — the edge count alone decides it.
            if edges.bit_count() != tree_nodes.bit_count() - 1:
                continue
            if prune_supertrees and any(
                prior & edges == prior for prior in emitted_signatures
            ):
                continue
            seen_results.add(edges)
            emitted_signatures.append(edges)
            results.append(
                SteinerTree(
                    terminal_set,
                    frozenset(edge_list[i] for i in iter_bits(edges)),
                    cost,
                )
            )
            continue

        # Grow: extend the tree along one incident edge.
        for neighbour, weight, edge_position in neighbors[root]:
            edge_bit = 1 << edge_position
            if edges & edge_bit:
                continue
            # Re-entering an existing node would close a cycle.
            if tree_nodes & (1 << neighbour):
                continue
            heapq.heappush(
                heap,
                (
                    cost + weight,
                    next(counter),
                    neighbour,
                    mask | terminal_bit[neighbour],
                    edges | edge_bit,
                    tree_nodes | (1 << neighbour),
                ),
            )

        # Merge: combine with accepted trees sharing this root and
        # covering a disjoint terminal subset.
        for other_mask, other_bucket in by_mask.items():
            if other_mask & mask:
                continue
            for other_cost, other_edges, other_nodes in other_bucket:
                if edges & other_edges:
                    continue  # overlapping edges: cost would be wrong
                heapq.heappush(
                    heap,
                    (
                        cost + other_cost,
                        next(counter),
                        root,
                        mask | other_mask,
                        edges | other_edges,
                        tree_nodes | other_nodes,
                    ),
                )

    return results


def _search_reference(
    graph: SchemaGraph,
    terminal_list: list[ColumnRef],
    terminal_set: frozenset,
    k: int,
    prune_supertrees: bool,
    max_pops: int,
    deadline: "Deadline | None" = None,
) -> list[SteinerTree]:
    """The frozenset DPBF search (executable specification).

    Kept verbatim as the parity oracle for :func:`_search_interned`: the
    two searches generate the same pop/push sequence, so results match
    tree for tree.
    """
    full_mask = (1 << len(terminal_list)) - 1
    terminal_bit = {t: 1 << i for i, t in enumerate(terminal_list)}

    counter = itertools.count()
    #: heap entries: (cost, tiebreak, root, mask, edge frozenset)
    heap: list[tuple[float, int, ColumnRef, int, frozenset]] = []
    #: per (root, mask): edge sets already accepted (bounded by k)
    accepted: dict[tuple[ColumnRef, int], list[tuple[float, frozenset]]] = {}

    for terminal, bit in terminal_bit.items():
        heapq.heappush(heap, (0.0, next(counter), terminal, bit, frozenset()))

    results: list[SteinerTree] = []
    emitted_signatures: list[frozenset] = []
    seen_results: set[frozenset] = set()
    pops = 0

    while heap and len(results) < k and pops < max_pops:
        if pops & 63 == 0:
            faults.fire("steiner.expand")
            if deadline is not None and deadline.expired():
                break  # cooperative cancellation: emit best-so-far trees
        cost, _tie, root, mask, edges = heapq.heappop(heap)
        pops += 1
        state = (root, mask)
        bucket = accepted.setdefault(state, [])
        if len(bucket) >= k or any(edges == prior for _c, prior in bucket):
            continue
        bucket.append((cost, edges))

        if mask == full_mask:
            candidate = SteinerTree(terminal_set, edges, cost)
            signature = candidate.signature()
            if signature in seen_results:
                continue
            if not candidate.is_valid_tree():
                continue
            if prune_supertrees and any(
                prior <= signature for prior in emitted_signatures
            ):
                continue
            seen_results.add(signature)
            emitted_signatures.append(signature)
            results.append(candidate)
            continue

        # Grow: extend the tree along one incident edge.
        tree_nodes = {root}
        for edge in edges:
            tree_nodes.add(edge.left)
            tree_nodes.add(edge.right)
        for neighbour, edge in graph.neighbors(root):
            if edge in edges:
                continue
            new_edges = edges | {edge}
            new_mask = mask | terminal_bit.get(neighbour, 0)
            # Re-entering an existing node would close a cycle.
            if neighbour in tree_nodes:
                continue
            heapq.heappush(
                heap,
                (cost + edge.weight, next(counter), neighbour, new_mask, new_edges),
            )

        # Merge: combine with accepted trees sharing this root and
        # covering a disjoint terminal subset.
        for (other_root, other_mask), other_bucket in accepted.items():
            if other_root != root or other_mask & mask:
                continue
            for other_cost, other_edges in other_bucket:
                union = edges | other_edges
                if len(union) != len(edges) + len(other_edges):
                    continue  # overlapping edges: cost would be wrong
                merged_cost = cost + other_cost
                heapq.heappush(
                    heap,
                    (
                        merged_cost,
                        next(counter),
                        root,
                        mask | other_mask,
                        union,
                    ),
                )

    return results
