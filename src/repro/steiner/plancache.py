"""The subset-reusing Steiner plan cache.

The Dreyfus-Wagner DP computes one optimal-cost row per *terminal
subset* — and those rows are query-independent: with terminals
canonically ordered (sorted by ``str``), a subset's merge-split
enumeration order, its tie-breaks and its relaxation heap order depend
only on the subset itself and the topology, never on which query asked.
This cache keys the rows by ``(frozen node-index subset, topology
version)``, so a query whose terminals form a superset (or overlap) of
an earlier query's reuses the shared rows instead of recomputing them;
the steiner LRU by contrast only ever hits on *exact* terminal sets.
The version component (read off the immutable ``CompactGraph`` snapshot
the run computed over) makes the clear-on-mutation lifetime airtight
under concurrency: a row computed against a retained pre-mutation
snapshot but stored *after* ``add_edge`` cleared the cache lands under
the old version — unreachable garbage, never a wrong answer.

Two row shapes are stored:

- singleton subsets ``{t}`` — the per-source shortest-path distance row
  (the DP base case, also serving the backward stage's batched
  connectivity prefilter);
- larger subsets — the DP cost row plus the back-pointer decisions
  reconstruction walks, with child states referenced by subset (so a
  cached row means its whole derivation is cached).

Lifetime mirrors the other derived caches: the owning
:class:`~repro.steiner.graph.SchemaGraph` clears the cache on every
topology mutation, so rows never outlive the topology they were computed
over. Eviction is a whole-cache clear performed only *between* DP runs
(:meth:`SteinerPlanCache.trim`): partial LRU eviction could orphan a
back-pointer chain mid-reconstruction.

Lookups are credited to the active :class:`~repro.cache.CacheRecorder`
under the label ``"steiner-subset"``, which is how subset-hit counters
surface in :class:`~repro.pipeline.context.SearchTrace`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.cache import CacheStats, record_lookup
from repro.forksafe import register_lock_holder

__all__ = ["PlanEntry", "SteinerPlanCache", "PLAN_CACHE_MAX_ENTRIES"]

#: Whole-cache clear threshold (checked between DP runs). Subsets are
#: drawn from configurations over one schema, so real working sets stay
#: tiny; the bound only guards adversarial workloads.
PLAN_CACHE_MAX_ENTRIES = 4096

#: The recorder label subset-row lookups are credited under.
PLAN_CACHE_LABEL = "steiner-subset"


def _reset_plan_cache_lock(cache: "SteinerPlanCache") -> None:
    cache._lock = threading.Lock()


@dataclass(frozen=True)
class PlanEntry:
    """One terminal subset's cached DP row.

    Attributes:
        costs: per node index, the optimal cost of a tree spanning the
            subset's terminals plus that node (``inf`` when unreachable).
        back: per node index, the reconstruction decision that produced
            the cost — ``("merge", subset, subset, node)`` or
            ``("walk", subset, from, to)`` with child subsets as
            frozensets of node indices. ``None`` for singleton subsets,
            whose reconstruction walks the shortest-path predecessors.
    """

    costs: tuple[float, ...]
    back: dict[int, tuple] | None = None


class SteinerPlanCache:
    """Subset-keyed Dreyfus-Wagner rows shared across queries."""

    label = PLAN_CACHE_LABEL

    def __init__(self, max_entries: int = PLAN_CACHE_MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self._rows: dict[tuple[frozenset, int], PlanEntry] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()
        # Forked batch workers get a fresh lock (see repro.forksafe).
        register_lock_holder(self, _reset_plan_cache_lock)

    def get(self, key: tuple[frozenset, int]) -> PlanEntry | None:
        """The cached row for ``(subset, version)``, counting hit/miss."""
        with self._lock:
            entry = self._rows.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
        record_lookup(self.label, entry is not None)
        return entry

    def peek(self, key: tuple[frozenset, int]) -> PlanEntry | None:
        """The cached row without touching counters (diagnostics)."""
        with self._lock:
            return self._rows.get(key)

    def put(self, key: tuple[frozenset, int], entry: PlanEntry) -> None:
        """Store one subset row (rows are immutable once stored)."""
        with self._lock:
            self._rows[key] = entry

    def trim(self) -> None:
        """Clear everything if over budget — called *between* DP runs only,
        so a run's back-pointer chains are never partially evicted."""
        with self._lock:
            if len(self._rows) > self.max_entries:
                self._rows.clear()

    def clear(self) -> None:
        """Drop every row (counters are preserved)."""
        with self._lock:
            self._rows.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __contains__(self, key: tuple[frozenset, int]) -> bool:
        with self._lock:
            return key in self._rows

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._rows),
                maxsize=self.max_entries,
            )

    def __repr__(self) -> str:
        return f"SteinerPlanCache({self.stats}, max_entries={self.max_entries})"
