"""Exact minimum Steiner tree: the Dreyfus-Wagner dynamic program.

Exponential in the number of terminals but polynomial in graph size —
appropriate here because keyword queries are short (terminals = attributes
mentioned by one configuration, typically 2-6) while the schema graph is
small. Used as the reference algorithm in tests and to validate the top-k
enumerator's first result.

The default :func:`exact_steiner_tree` runs the DP over integers: nodes
interned through :meth:`~repro.steiner.graph.SchemaGraph.compact`, terminal
subsets as bitmasks indexing flat per-mask cost lists, and the base-case
shortest paths served from the graph's all-pairs cache (shared with the
KMB approximation and warm across calls until the graph mutates).
``interned=False`` selects :func:`exact_steiner_tree_reference`, the
original dict-of-``(mask, ColumnRef)`` formulation that recomputes every
Dijkstra locally — retained as the executable specification for the
``tests/perf`` parity suite. Both produce identical trees.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.db.schema import ColumnRef
from repro.errors import SteinerError
from repro.steiner.graph import SchemaGraph
from repro.steiner.plancache import PlanEntry
from repro.steiner.tree import SteinerTree

__all__ = ["shortest_paths", "exact_steiner_tree", "exact_steiner_tree_reference"]

_INF = float("inf")


def shortest_paths(
    graph: SchemaGraph, source: ColumnRef
) -> tuple[dict[ColumnRef, float], dict[ColumnRef, ColumnRef]]:
    """Dijkstra from *source*: distances and predecessor map.

    Determinism: when two shortest paths to a node tie on weight (exact
    float equality), the predecessor whose ``str(node)`` sorts first wins —
    so the predecessor map (and every tree expanded from it) depends only
    on the graph, never on neighbour iteration order. An earlier version
    compared against ``distance - 1e-15``, which silently kept whichever
    near-equal predecessor happened to be relaxed first.
    """
    distances: dict[ColumnRef, float] = {source: 0.0}
    predecessors: dict[ColumnRef, ColumnRef] = {}
    heap: list[tuple[float, int, ColumnRef]] = [(0.0, 0, source)]
    counter = 1
    settled: set[ColumnRef] = set()
    while heap:
        distance, _tie, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbour, edge in graph.neighbors(node):
            candidate = distance + edge.weight
            current = distances.get(neighbour, _INF)
            if candidate < current:
                distances[neighbour] = candidate
                predecessors[neighbour] = node
                heapq.heappush(heap, (candidate, counter, neighbour))
                counter += 1
            elif candidate == current and str(node) < str(
                predecessors[neighbour]
            ):
                predecessors[neighbour] = node
    return distances, predecessors


def _path_edges(
    graph: SchemaGraph,
    predecessors: dict[ColumnRef, ColumnRef],
    source: ColumnRef,
    target: ColumnRef,
) -> set:
    """Edges of the shortest path source -> target from a predecessor map."""
    edges = set()
    current = target
    while current != source:
        parent = predecessors.get(current)
        if parent is None:
            raise SteinerError(f"no path from {source} to {target}")
        edge = graph.edge_between(parent, current)
        if edge is None:  # pragma: no cover - predecessor map guarantees edge
            raise SteinerError(f"missing edge {parent} - {current}")
        edges.add(edge)
        current = parent
    return edges


def _checked_terminals(
    graph: SchemaGraph, terminals: Sequence[ColumnRef]
) -> list[ColumnRef]:
    terminal_list = sorted(set(terminals), key=str)
    if not terminal_list:
        raise SteinerError("no terminals")
    for terminal in terminal_list:
        if terminal not in graph:
            raise SteinerError(f"terminal not in graph: {terminal}")
    return terminal_list


def exact_steiner_tree(
    graph: SchemaGraph,
    terminals: Sequence[ColumnRef],
    interned: bool = True,
    batched: bool = True,
    plan_cache: bool = True,
) -> SteinerTree:
    """Minimum-weight Steiner tree connecting *terminals* (Dreyfus-Wagner).

    Raises :class:`SteinerError` when the terminals are not all connected.
    ``interned=False`` runs :func:`exact_steiner_tree_reference` instead;
    the results are identical. *batched* serves the base-case shortest
    paths from one multi-source :meth:`~repro.steiner.graph.CompactGraph.
    distance_matrix` pass instead of per-terminal Dijkstras, and
    *plan_cache* reuses DP subset rows cached on the graph across calls
    (so overlapping terminal sets skip the shared subproblems) — both are
    pure work-placement changes; every cost and tree is bit-identical
    either way, because subset rows are canonical: terminals sorted by
    ``str`` make a subset's split enumeration, tie-breaks and relaxation
    order independent of the enclosing query.
    """
    if not interned:
        return exact_steiner_tree_reference(graph, terminals)
    terminal_list = _checked_terminals(graph, terminals)
    if len(terminal_list) == 1:
        return SteinerTree(frozenset(terminal_list), frozenset(), 0.0)
    if not graph.connected(set(terminal_list)):
        raise SteinerError(f"terminals are disconnected: {terminal_list}")

    compact = graph.compact()
    n = len(compact)
    name_rank = compact.name_rank
    neighbors = compact.neighbors
    terminal_indices = [compact.index[t] for t in terminal_list]

    cache = getattr(graph, "plan_cache", None) if plan_cache else None
    #: Every cache key this run makes is stamped with the snapshot's
    #: topology version: rows computed over this (possibly retained)
    #: snapshot can never be read back under a mutated topology.
    cache_version = compact.version
    if cache is not None:
        # Whole-cache eviction only ever happens here, between DP runs, so
        # a run's back-pointer chains can never be partially evicted.
        cache.trim()

    t = len(terminal_list)
    full_mask = (1 << t) - 1
    #: per local mask: the query-independent identity of the terminal
    #: subset (frozen node indices) — the plan-cache key and the currency
    #: of cached back-pointers.
    subset_of: dict[int, frozenset] = {
        mask: frozenset(
            terminal_indices[i] for i in range(t) if mask >> i & 1
        )
        for mask in range(1, full_mask + 1)
    }
    #: per local mask: that subset's cost row (and back-pointers).
    rows: dict[int, PlanEntry] = {}

    if batched:
        # One multi-source pass fills the per-source cache for every
        # terminal that still needs it.
        compact.distance_matrix(terminal_indices)

    for i, terminal_index in enumerate(terminal_indices):
        bit = 1 << i
        entry = (
            cache.get((subset_of[bit], cache_version))
            if cache is not None
            else None
        )
        if entry is None:
            distances, _predecessors = compact.dijkstra(terminal_index)
            entry = PlanEntry(costs=tuple(distances))
            if cache is not None:
                cache.put((subset_of[bit], cache_version), entry)
        rows[bit] = entry

    masks_by_bits: dict[int, list[int]] = {}
    for mask in range(1, full_mask + 1):
        masks_by_bits.setdefault(mask.bit_count(), []).append(mask)

    for bits in sorted(masks_by_bits):
        if bits < 2:
            continue
        for mask in masks_by_bits[bits]:
            subset = subset_of[mask]
            entry = (
                cache.get((subset, cache_version))
                if cache is not None
                else None
            )
            if entry is not None:
                # A cached row implies its whole derivation is cached
                # (rows are stored children-first and eviction is
                # all-or-nothing), so reconstruction can follow it.
                rows[mask] = entry
                continue
            # Merge step: split the terminal set at each node.
            merged = [_INF] * n
            back_row: dict[int, tuple] = {}
            submask = (mask - 1) & mask
            while submask > 0:
                other = mask ^ submask
                if submask < other:  # consider each unordered split once
                    left_row = rows[submask].costs
                    right_row = rows[other].costs
                    for node in range(n):
                        left = left_row[node]
                        if left == _INF:
                            continue
                        right = right_row[node]
                        if right == _INF:
                            continue
                        cost = left + right
                        if cost < merged[node] - 1e-15:
                            merged[node] = cost
                            back_row[node] = (
                                "merge",
                                subset_of[submask],
                                subset_of[other],
                                node,
                            )
                submask = (submask - 1) & mask
            # Relaxation step: Dijkstra over the merged costs.
            heap = [
                (cost, name_rank[node], node)
                for node, cost in enumerate(merged)
                if cost < _INF
            ]
            heapq.heapify(heap)
            best = list(merged)
            settled = [False] * n
            while heap:
                cost, _tie, node = heapq.heappop(heap)
                if settled[node] or cost > best[node] + 1e-15:
                    continue
                settled[node] = True
                for neighbour, weight, _edge_position in neighbors[node]:
                    candidate = cost + weight
                    if candidate < best[neighbour] - 1e-15:
                        best[neighbour] = candidate
                        back_row[neighbour] = ("walk", subset, node, neighbour)
                        heapq.heappush(
                            heap, (candidate, name_rank[neighbour], neighbour)
                        )
            entry = PlanEntry(costs=tuple(best), back=back_row)
            rows[mask] = entry
            if cache is not None:
                cache.put((subset, cache_version), entry)

    root = terminal_indices[0]
    total = rows[full_mask].costs[root]
    if total == _INF:  # pragma: no cover - connectivity checked above
        raise SteinerError("no Steiner tree found despite connected terminals")

    by_subset = {subset_of[mask]: entry for mask, entry in rows.items()}
    edges = _reconstruct_interned(graph, compact, by_subset, subset_of[full_mask], root)
    return SteinerTree(frozenset(terminal_list), frozenset(edges), _tree_weight(edges))


def _reconstruct_interned(
    graph: SchemaGraph,
    compact,
    by_subset: dict[frozenset, PlanEntry],
    subset: frozenset,
    node: int,
) -> set:
    """Walk the subset-keyed backpointers, collecting concrete tree edges."""
    nodes = compact.nodes
    edges: set = set()
    stack: list[tuple[frozenset, int]] = [(subset, node)]
    while stack:
        current_subset, at = stack.pop()
        if len(current_subset) == 1:
            # Base case: walk the shortest-path predecessors back to the
            # subset's single terminal.
            (source_index,) = current_subset
            _distances, predecessors = compact.dijkstra(source_index)
            current = at
            while current != source_index:
                parent = predecessors[current]
                if parent < 0:  # pragma: no cover - base cases are reachable
                    raise SteinerError(
                        f"no path from {nodes[source_index]} to {nodes[at]}"
                    )
                edge = graph.edge_between(nodes[parent], nodes[current])
                if edge is None:  # pragma: no cover - predecessors imply edges
                    raise SteinerError(
                        f"missing edge {nodes[parent]} - {nodes[current]}"
                    )
                edges.add(edge)
                current = parent
            continue
        back = by_subset[current_subset].back
        decision = back.get(at) if back is not None else None
        if decision is None:  # pragma: no cover - finite rows carry pointers
            continue
        tag = decision[0]
        if tag == "merge":
            _t, left_subset, right_subset, join = decision
            stack.append((left_subset, join))
            stack.append((right_subset, join))
        elif tag == "walk":
            _t, walk_subset, from_node, to_node = decision
            edge = graph.edge_between(nodes[from_node], nodes[to_node])
            if edge is not None:
                edges.add(edge)
            stack.append((walk_subset, from_node))
        else:  # pragma: no cover - exhaustive tags
            raise SteinerError(f"corrupt backpointer: {decision}")
    return edges


def exact_steiner_tree_reference(
    graph: SchemaGraph, terminals: Sequence[ColumnRef]
) -> SteinerTree:
    """The dict-based Dreyfus-Wagner DP (executable specification).

    Recomputes every single-source Dijkstra locally and keys the DP by
    ``(terminal bitmask, ColumnRef)``; kept as the parity oracle for
    :func:`exact_steiner_tree`.
    """
    terminal_list = _checked_terminals(graph, terminals)
    if len(terminal_list) == 1:
        return SteinerTree(frozenset(terminal_list), frozenset(), 0.0)
    if not graph.connected(set(terminal_list)):
        raise SteinerError(f"terminals are disconnected: {terminal_list}")

    # Single-source shortest paths from every node (graphs are small).
    nodes = graph.nodes
    sp_distance: dict[ColumnRef, dict[ColumnRef, float]] = {}
    sp_predecessor: dict[ColumnRef, dict[ColumnRef, ColumnRef]] = {}
    for node in nodes:
        distances, predecessors = shortest_paths(graph, node)
        sp_distance[node] = distances
        sp_predecessor[node] = predecessors

    t = len(terminal_list)
    full_mask = (1 << t) - 1
    # dp[(mask, v)] = cost of the best tree spanning terminals(mask) + {v}.
    dp: dict[tuple[int, ColumnRef], float] = {}
    back: dict[tuple[int, ColumnRef], tuple] = {}

    for i, terminal in enumerate(terminal_list):
        for node in nodes:
            distance = sp_distance[terminal].get(node, _INF)
            if distance < _INF:
                dp[(1 << i, node)] = distance
                back[(1 << i, node)] = ("walk-base", terminal, node)

    masks_by_bits: dict[int, list[int]] = {}
    for mask in range(1, full_mask + 1):
        masks_by_bits.setdefault(bin(mask).count("1"), []).append(mask)

    for bits in sorted(masks_by_bits):
        if bits < 2:
            continue
        for mask in masks_by_bits[bits]:
            # Merge step: split the terminal set at each node.
            merged: dict[ColumnRef, float] = {}
            submask = (mask - 1) & mask
            while submask > 0:
                other = mask ^ submask
                if submask < other:  # consider each unordered split once
                    for node in nodes:
                        left = dp.get((submask, node), _INF)
                        if left == _INF:
                            continue
                        right = dp.get((other, node), _INF)
                        if right == _INF:
                            continue
                        cost = left + right
                        if cost < merged.get(node, _INF) - 1e-15:
                            merged[node] = cost
                            back[(mask, node)] = ("merge", submask, other, node)
                submask = (submask - 1) & mask
            # Relaxation step: Dijkstra over the merged costs.
            heap = [(cost, str(node), node) for node, cost in merged.items()]
            heapq.heapify(heap)
            best: dict[ColumnRef, float] = dict(merged)
            settled: set[ColumnRef] = set()
            while heap:
                cost, _tie, node = heapq.heappop(heap)
                if node in settled or cost > best.get(node, _INF) + 1e-15:
                    continue
                settled.add(node)
                for neighbour, edge in graph.neighbors(node):
                    candidate = cost + edge.weight
                    if candidate < best.get(neighbour, _INF) - 1e-15:
                        best[neighbour] = candidate
                        back[(mask, neighbour)] = ("walk", mask, node, neighbour)
                        heapq.heappush(heap, (candidate, str(neighbour), neighbour))
            for node, cost in best.items():
                dp[(mask, node)] = cost

    root = terminal_list[0]
    total = dp.get((full_mask, root), _INF)
    if total == _INF:  # pragma: no cover - connectivity checked above
        raise SteinerError("no Steiner tree found despite connected terminals")

    edges = _reconstruct(graph, back, sp_predecessor, full_mask, root)
    return SteinerTree(frozenset(terminal_list), frozenset(edges), _tree_weight(edges))


def _tree_weight(edges: set) -> float:
    # Sum in a canonical edge order: reconstruction builds the edge *set*
    # in implementation-dependent order, and float addition order would
    # otherwise leak into the reported weight's last ulp.
    return sum(
        edge.weight
        for edge in sorted(edges, key=lambda e: (str(e.left), str(e.right)))
    )


def _reconstruct(
    graph: SchemaGraph,
    back: dict[tuple[int, ColumnRef], tuple],
    sp_predecessor: dict[ColumnRef, dict[ColumnRef, ColumnRef]],
    mask: int,
    node: ColumnRef,
) -> set:
    """Walk the backpointers, collecting concrete tree edges."""
    edges: set = set()
    stack: list[tuple[int, ColumnRef]] = [(mask, node)]
    while stack:
        state = stack.pop()
        decision = back.get(state)
        if decision is None:
            continue  # base case: terminal reached at itself (zero cost)
        tag = decision[0]
        if tag == "walk-base":
            _t, terminal, target = decision
            edges |= _path_edges(graph, sp_predecessor[terminal], terminal, target)
        elif tag == "merge":
            _t, submask, other, at = decision
            stack.append((submask, at))
            stack.append((other, at))
        elif tag == "walk":
            _t, walk_mask, from_node, to_node = decision
            edge = graph.edge_between(from_node, to_node)
            if edge is not None:
                edges.add(edge)
            stack.append((walk_mask, from_node))
        else:  # pragma: no cover - exhaustive tags
            raise SteinerError(f"corrupt backpointer: {decision}")
    return edges
