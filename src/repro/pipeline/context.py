"""Per-query state threaded through the staged search pipeline.

A :class:`SearchContext` carries everything one query accumulates on its
way through ``Forward -> Backward -> Combine -> Explain``: the tokenised
keywords, the stage products (configurations, interpretations, ranked
interpretations, explanations) and a :class:`SearchTrace` diagnostic with
per-stage timings, candidate counts and cache hit/miss deltas.

Only type names are imported from ``repro.core`` here, and only for the
checker: at runtime this module must stay import-light because the core
engine and the pipeline reference each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.configuration import Configuration
    from repro.core.explanation import Explanation
    from repro.core.interpretation import Interpretation
    from repro.resilience import Deadline

__all__ = ["SearchContext", "SearchTrace", "StageReport"]


@dataclass(frozen=True)
class StageReport:
    """Timing and output size of one executed stage."""

    stage: str
    seconds: float
    candidates: int

    def __str__(self) -> str:
        return f"{self.stage}: {self.candidates} candidates in {self.seconds:.4f}s"


@dataclass
class SearchTrace:
    """Diagnostics of one pipeline run.

    Attributes:
        query: the raw query text (reconstructed from keywords when the
            run was started from pre-tokenised keywords).
        keywords: the tokenised query.
        stages: one :class:`StageReport` per executed stage, in order.
        emission_cache: emission-vector cache hits/misses during this run.
        steiner_cache: Steiner-result cache hits/misses during this run.
        steiner_subset_cache: Steiner *plan*-cache (Dreyfus-Wagner subset
            rows and singleton distance rows) hits/misses during this run.
        notes: free-form engine decisions recorded for this run (e.g. the
            batch fan-out degrading to sequential on a single-CPU host).
        degraded: the run was served on a degraded path — its deadline
            expired mid-pipeline (best-so-far results were returned
            instead of running to completion) or a fallback route was
            taken. Why is always recorded in ``notes``. Degraded results
            are never published to the serving tier's result cache.
        stale_revision: the engine revision this ranking was computed at,
            stamped by the serving tier *only* when the ranking is served
            from the revision-stale fallback cache — ``None`` on every
            fresh response. Lets operators (and the ``/metrics``
            endpoint) see exactly how far behind a stale answer is.

    The cache deltas are *exact per run*: the pipeline installs a
    context-local :class:`~repro.cache.CacheRecorder` around its stages,
    so every lookup on the shared caches is credited to the run that
    issued it. Concurrent runs sharing a wrapper or graph (threaded
    multi-source search, the serving tier) each see only their own
    counts; the ``size``/``maxsize`` fields describe the shared cache at
    the moment the run completed.
    """

    query: str
    keywords: tuple[str, ...] = ()
    stages: list[StageReport] = field(default_factory=list)
    emission_cache: CacheStats = field(default_factory=CacheStats)
    steiner_cache: CacheStats = field(default_factory=CacheStats)
    steiner_subset_cache: CacheStats = field(default_factory=CacheStats)
    notes: list[str] = field(default_factory=list)
    degraded: bool = False
    stale_revision: Any = None

    @property
    def total_seconds(self) -> float:
        """Wall time summed over the executed stages."""
        return sum(report.seconds for report in self.stages)

    def stage(self, name: str) -> StageReport:
        """The report for stage *name* (raises ``KeyError`` if absent)."""
        for report in self.stages:
            if report.stage == name:
                return report
        raise KeyError(f"no stage named {name!r} in trace")

    def summary(self) -> str:
        """A one-line human-readable digest of the run."""
        stages = " | ".join(
            f"{r.stage}={r.candidates}@{r.seconds:.4f}s" for r in self.stages
        )
        return (
            f"{self.query!r}: {stages} | "
            f"emissions[{self.emission_cache}] steiner[{self.steiner_cache}] "
            f"subsets[{self.steiner_subset_cache}]"
        )


@dataclass
class SearchContext:
    """One query's mutable state, produced stage by stage.

    Attributes:
        query: raw query text (``None`` when a stage runs standalone).
        keywords: tokenised keywords, set before the forward stage.
        k: number of explanations the search finally returns.
        pool: forward-stage candidate budget (``k * candidate_factor``).
        tree_k: Steiner trees enumerated per configuration.
        rank_k: hypotheses kept by the combine stage; ``None`` means
            "rank the full pool" (``max(pool, len(interpretations))``).
        limit: cap on emitted explanations (``None`` = no cap).
        configurations: forward-stage output.
        interpretations: backward-stage output.
        ranked: combine-stage output (re-scored interpretations).
        explanations: explain-stage output — the final answers.
        deadline: the request's time budget (``None`` = unbounded). Each
            stage checks remaining budget and degrades cooperatively —
            see :mod:`repro.resilience.deadline`.
        trace: per-stage diagnostics for this run.
        error: the failure that aborted the run, when batch callers opt
            into collecting errors instead of raising.
    """

    query: str | None = None
    keywords: list[str] = field(default_factory=list)
    k: int = 10
    pool: int = 10
    tree_k: int = 10
    rank_k: int | None = None
    limit: int | None = None
    configurations: list["Configuration"] = field(default_factory=list)
    interpretations: list["Interpretation"] = field(default_factory=list)
    ranked: list["Interpretation"] = field(default_factory=list)
    explanations: list["Explanation"] = field(default_factory=list)
    deadline: "Deadline | None" = None
    trace: SearchTrace = field(default_factory=lambda: SearchTrace(query=""))
    error: Exception | None = None

    @classmethod
    def for_query(
        cls,
        query: str | None,
        keywords: list[str],
        k: int,
        pool: int,
        tree_k: int,
        deadline: "Deadline | None" = None,
    ) -> "SearchContext":
        """A context primed for a full pipeline run."""
        text = query if query is not None else " ".join(keywords)
        return cls(
            query=query,
            keywords=list(keywords),
            k=k,
            pool=pool,
            tree_k=tree_k,
            limit=k,
            deadline=deadline,
            trace=SearchTrace(query=text, keywords=tuple(keywords)),
        )

    def mark_degraded(self, note: str) -> None:
        """Flag this run as degraded, recording *note* once in the trace."""
        self.trace.degraded = True
        if note not in self.trace.notes:
            self.trace.notes.append(note)
