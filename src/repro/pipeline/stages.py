"""The four composable stages of Algorithm 1.

Each stage reads its inputs from a :class:`~repro.pipeline.context.
SearchContext`, performs one step of the paper's process and writes its
products back::

    Forward   keywords            -> configurations   (HMM + DST)
    Backward  configurations      -> interpretations  (top-k Steiner)
    Combine   configs + interps   -> ranked           (DST over join paths)
    Explain   ranked              -> explanations     (SQL + execution)

The stage bodies are the engine logic that used to live inline in
``Quest.forward`` / ``backward`` / ``combine`` / ``explain``; those methods
are now thin wrappers that run a single stage, so the public API and its
semantics are unchanged.

Stages hold no per-query state — one instance can serve concurrent runs —
and receive the :class:`~repro.core.engine.Quest` engine explicitly, which
supplies the models, settings, schema graph and wrapper.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.core.configuration import Configuration
from repro.core.explanation import Explanation
from repro.core.interpretation import Interpretation, tree_score
from repro.core.query_builder import build_query
from repro.dst.belief import rank_hypotheses
from repro.dst.combine import dempster_combine
from repro.dst.mass import FrameInterning, MassFunction
from repro.errors import AccessDeniedError, CombinationError, QuestError, SteinerError
from repro.pipeline.context import SearchContext
from repro.steiner.topk import top_k_steiner_trees

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.engine import Quest

__all__ = [
    "BackwardStage",
    "CombineStage",
    "ExplainStage",
    "ForwardStage",
    "PipelineStage",
]


def _pushdown_allowed(context: SearchContext, backend: object) -> bool:
    """Whether the backend's optional SQL pushdown surfaces may be used.

    When the backend carries a circuit breaker and it refuses the call,
    the stage transparently takes the in-process route instead — the
    bit-identical fallback the parity flags guarantee — and records the
    decision in the trace. The run is *not* marked degraded: answers are
    unaffected, only the route changed.
    """
    breaker = getattr(backend, "breaker", None)
    if breaker is None or breaker.allow():
        return True
    note = f"sql pushdown bypassed: circuit {breaker.name!r} {breaker.state}"
    if note not in context.trace.notes:
        context.trace.notes.append(note)
    return False


class PipelineStage(abc.ABC):
    """One step of the search pipeline."""

    #: Stage identifier used in traces and for lookup on the pipeline.
    name: str = "stage"

    @abc.abstractmethod
    def run(self, engine: "Quest", context: SearchContext) -> None:
        """Execute the stage, mutating *context* in place."""

    @abc.abstractmethod
    def candidates(self, context: SearchContext) -> int:
        """Size of this stage's output on *context* (for the trace)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ForwardStage(PipelineStage):
    """``C <- CombinerDST(Cap, Cf, O_Cap, O_Cf)`` — keywords to configurations."""

    name = "forward"

    def run(self, engine: "Quest", context: SearchContext) -> None:
        settings = engine.settings
        k = context.pool
        apriori: list[Configuration] = []
        feedback: list[Configuration] = []
        # Snapshot the feedback model ONCE: a concurrent
        # set_feedback_model (a mutation the serving tier supports and
        # versions) must not swap it to None between our checks and the
        # decode — this whole run uses the model it first observed.
        feedback_model = engine.feedback_model
        run_apriori = settings.use_apriori
        run_feedback = settings.use_feedback and feedback_model is not None
        # The emission matrix depends on the provider and the state space
        # only — when both operating modes decode over the same state
        # tuple, they share one (batched, deduplicated) matrix instead of
        # scoring the query twice. A foreign feedback model with its own
        # state ordering keeps its own matrix.
        shared = None
        if (
            run_apriori
            and run_feedback
            and feedback_model.states.states
            == engine.apriori_model.states.states
        ):
            shared = engine.apriori_model.emission_matrix(
                context.keywords,
                engine.wrapper,
                batched=settings.columnar_index,
            )
        if run_apriori:
            apriori = engine.decode(
                context.keywords, engine.apriori_model, k, emissions=shared
            )
        if run_feedback:
            feedback = engine.decode(
                context.keywords, feedback_model, k, emissions=shared
            )

        if apriori and feedback:
            combined = self._combine_modes(engine, apriori, feedback, k)
        else:
            combined = apriori or feedback
        if not combined:
            raise QuestError("forward step produced no configurations")
        context.configurations = combined

    def candidates(self, context: SearchContext) -> int:
        return len(context.configurations)

    @staticmethod
    def _combine_modes(
        engine: "Quest",
        apriori: list[Configuration],
        feedback: list[Configuration],
        k: int,
    ) -> list[Configuration]:
        """DST combination of the a-priori and feedback decoders."""
        frame = frozenset(c.with_score(0.0) for c in apriori + feedback)
        apriori_scores = {c.with_score(0.0): c.score for c in apriori}
        feedback_scores = {c.with_score(0.0): c.score for c in feedback}
        # One shared interning: both bodies and their combination encode
        # focal bitmasks against the same hypothesis->bit mapping, so the
        # combine never re-interns a frame mid-flight.
        interning = FrameInterning(frame)
        apriori_mass = MassFunction.from_scores(
            apriori_scores,
            engine.settings.uncertainty_apriori,
            frame,
            interning=interning,
        )
        feedback_mass = MassFunction.from_scores(
            feedback_scores,
            engine.settings.uncertainty_feedback,
            frame,
            interning=interning,
        )
        combined = dempster_combine(
            apriori_mass, feedback_mass, bitmask=engine.settings.bitmask_dst
        )
        ranked = rank_hypotheses(combined, k)
        return [
            configuration.with_score(probability)
            for configuration, probability in ranked
        ]


class BackwardStage(PipelineStage):
    """``I <- ST(q, C, k)`` — configurations to join-path interpretations.

    Configurations whose terminals are disconnected in the schema graph
    yield no interpretation and drop out — exactly the instance-consistency
    filtering the backward step exists for. Steiner enumeration goes
    through the schema graph's result cache, so repeated terminal sets
    (across configurations and across queries) are answered without
    re-running the tree search.

    The connectivity prefilter is answered once per run for *all*
    configurations, through whichever capability the settings enable:

    - ``batched_shortest_paths`` / ``steiner_plan_cache``: per-terminal
      distance rows come from one vectorised multi-source pass (reusing
      rows already in the plan cache), and connectivity is a finite-ness
      check on them;
    - else ``sql_pushdown`` (and a backend with graph pushdown):
      reachable component sets come from recursive CTEs over the
      backend's mirrored edge relation, one per distinct component
      touched;
    - neither: each ``top_k_steiner_trees`` call checks for itself, as
      the reference kernels always did.

    Whichever mode answers, the surviving configurations — and the trees
    enumerated for them — are identical: connectivity has one answer, and
    the Steiner call is told ``assume_connected`` only when the prefilter
    has already established it.
    """

    name = "backward"

    def run(self, engine: "Quest", context: SearchContext) -> None:
        k = context.tree_k
        settings = engine.settings
        configs = [
            (configuration, sorted(configuration.terminals(engine.schema), key=str))
            for configuration in context.configurations
        ]
        terminal_sets = [terminals for _configuration, terminals in configs]
        backend = getattr(engine.wrapper, "backend", None)
        if settings.batched_shortest_paths or settings.steiner_plan_cache:
            connected = self._prefilter_batched(engine, terminal_sets)
        elif (
            settings.sql_pushdown
            and backend is not None
            and getattr(backend, "supports_graph_pushdown", False)
            and _pushdown_allowed(context, backend)
        ):
            connected = self._prefilter_pushdown(engine, backend, terminal_sets)
        else:
            connected = [None] * len(configs)

        deadline = context.deadline
        interpretations: list[Interpretation] = []
        for (configuration, terminals), is_connected in zip(configs, connected):
            if is_connected is False:
                continue
            if (
                deadline is not None
                and deadline.expired()
                and interpretations
            ):
                # Budget died with join paths already in hand: stop
                # enumerating further configurations and let the cheap
                # combine/explain stages turn them into answers.
                context.mark_degraded(
                    f"deadline: backward stage stopped after "
                    f"{len(interpretations)} interpretations"
                )
                break
            try:
                trees = top_k_steiner_trees(
                    engine.schema_graph,
                    terminals,
                    k,
                    prune_supertrees=settings.prune_supertrees,
                    interned=settings.fast_steiner,
                    assume_connected=bool(is_connected),
                    deadline=deadline,
                )
            except SteinerError:
                continue
            if deadline is not None and deadline.expired() and trees:
                # The enumeration itself was cut short: the trees are
                # best-so-far, not the provably cheapest k.
                context.mark_degraded(
                    "deadline: steiner enumeration truncated mid-search"
                )
            for tree in trees:
                interpretations.append(
                    Interpretation(configuration, tree, tree_score(tree.weight))
                )
        context.interpretations = interpretations

    @staticmethod
    def _prefilter_pushdown(
        engine: "Quest", backend, terminal_sets: list[list]
    ) -> list[bool | None]:
        """Per-configuration connectivity via backend reachability CTEs.

        Component sets are fetched once per distinct component touched
        this run (every member indexes the same set afterwards), so the
        number of round-trips is bounded by the number of components, not
        configurations. ``None`` marks sets the Steiner call must judge
        itself (empty, or containing unknown terminals).
        """
        graph = engine.schema_graph
        component_of: dict = {}
        verdicts: list[bool | None] = []
        for terminals in terminal_sets:
            if not terminals or any(t not in graph for t in terminals):
                verdicts.append(None)
                continue
            if len(terminals) == 1:
                verdicts.append(True)
                continue
            first = terminals[0]
            component = component_of.get(first)
            if component is None:
                component = backend.connected_nodes(graph, first)
                for node in component:
                    component_of[node] = component
            verdicts.append(all(t in component for t in terminals))
        return verdicts

    @staticmethod
    def _prefilter_batched(
        engine: "Quest", terminal_sets: list[list]
    ) -> list[bool | None]:
        """Per-configuration connectivity from batched distance rows.

        All of the run's terminals get their single-source distance rows
        in one :meth:`~repro.steiner.graph.CompactGraph.distance_matrix`
        pass (``batched_shortest_paths``), stored as singleton rows in
        the plan cache when ``steiner_plan_cache`` is on — so the rows
        the prefilter reads are the very rows Dreyfus-Wagner base cases
        reuse later. A set is connected iff every member's distance from
        the first member is finite.
        """
        from repro.steiner.plancache import PlanEntry

        graph = engine.schema_graph
        settings = engine.settings
        compact = graph.compact()
        index = compact.index
        known = sorted(
            {t for terminals in terminal_sets for t in terminals if t in index},
            key=str,
        )
        row_of: dict = {}
        if known:
            cache = graph.plan_cache if settings.steiner_plan_cache else None
            # Rows are shared with the DP base cases, so they carry the
            # same (subset, snapshot topology version) keys.
            cache_version = compact.version
            if cache is not None:
                cache.trim()
                missing = []
                for terminal in known:
                    entry = cache.get(
                        (frozenset((index[terminal],)), cache_version)
                    )
                    if entry is None:
                        missing.append(terminal)
                    else:
                        row_of[terminal] = entry.costs
            else:
                missing = list(known)
            if missing:
                indices = [index[t] for t in missing]
                if settings.batched_shortest_paths:
                    distances, _predecessors = compact.distance_matrix(indices)
                    rows = [distances[i].tolist() for i in range(len(missing))]
                else:
                    rows = [compact.dijkstra(i)[0] for i in indices]
                for terminal, row in zip(missing, rows):
                    row_of[terminal] = row
                    if cache is not None:
                        cache.put(
                            (frozenset((index[terminal],)), cache_version),
                            PlanEntry(costs=tuple(row)),
                        )

        verdicts: list[bool | None] = []
        infinity = float("inf")
        for terminals in terminal_sets:
            if not terminals or any(t not in index for t in terminals):
                verdicts.append(None)
                continue
            row = row_of[terminals[0]]
            verdicts.append(
                all(row[index[t]] < infinity for t in terminals[1:])
            )
        return verdicts

    def candidates(self, context: SearchContext) -> int:
        return len(context.interpretations)


class CombineStage(PipelineStage):
    """``E <- CombinerDST(C, I, O_C, O_I)`` — the final evidence combination.

    Forward evidence commits mass to *sets* of interpretations sharing a
    configuration (the forward step knows nothing about join paths);
    backward evidence commits mass to individual interpretations. The
    Dempster intersection concentrates belief on join paths that both a
    likely configuration and a short informative tree support.
    """

    name = "combine"

    def run(self, engine: "Quest", context: SearchContext) -> None:
        interpretations = context.interpretations
        if not interpretations:
            context.ranked = []
            return
        # Rank the complete interpretation pool by default: explanations
        # that execute to empty results are dropped by the explain stage,
        # so truncating here would let filtered-out junk displace
        # executable answers further down.
        k = context.rank_k
        if k is None:
            k = max(context.pool, len(interpretations))
        frame = frozenset(interpretations)
        # Shared hypothesis interning for both evidence bodies (see
        # ForwardStage._combine_modes).
        interning = FrameInterning(frame)

        forward_mass = MassFunction(frame=frame, interning=interning)
        by_configuration: dict[Configuration, set[Interpretation]] = {}
        for interpretation in interpretations:
            by_configuration.setdefault(
                interpretation.configuration, set()
            ).add(interpretation)
        supported = [
            c
            for c in context.configurations
            if c in by_configuration and c.score > 0.0
        ]
        total_score = sum(c.score for c in supported)
        if total_score > 0.0:
            budget = 1.0 - engine.settings.uncertainty_forward
            for configuration in supported:
                forward_mass.assign(
                    frozenset(by_configuration[configuration]),
                    budget * configuration.score / total_score,
                )
            if engine.settings.uncertainty_forward > 0.0:
                forward_mass.assign(frame, engine.settings.uncertainty_forward)
        else:
            forward_mass = MassFunction.vacuous(frame, interning=interning)

        backward_scores = {i: i.score for i in interpretations}
        backward_mass = MassFunction.from_scores(
            backward_scores,
            engine.settings.uncertainty_backward,
            frame,
            interning=interning,
        )

        try:
            combined = dempster_combine(
                forward_mass, backward_mass, bitmask=engine.settings.bitmask_dst
            )
        except CombinationError:
            # Total conflict cannot happen over a shared frame, but guard:
            # fall back to the backward ranking.
            combined = backward_mass
        ranked = rank_hypotheses(combined, k)
        context.ranked = [
            interpretation.with_score(probability)
            for interpretation, probability in ranked
        ]

    def candidates(self, context: SearchContext) -> int:
        return len(context.ranked)


class ExplainStage(PipelineStage):
    """``E <- QueryBuilder(E)`` — ranked interpretations to SQL answers.

    Distinct interpretations can denote the same SQL (e.g. two
    configurations differing only in schema-term kinds); only the
    best-ranked explanation per structural query survives. When the
    wrapper can execute, empty-result explanations are dropped per
    ``settings.min_explanation_results``; the count runs backend-side
    through ``wrapper.result_count`` (a ``COUNT(*)`` pushdown on SQL
    backends — no result rows cross the storage boundary here).

    With ``settings.sql_pushdown`` and a count-pushdown backend, the
    drop decision runs as a *bounded* probe first — "are there at least
    ``min_explanation_results`` rows?" stops scanning at that many —
    and only surviving explanations pay for the exact count. The probe
    is decision-equivalent (``bounded < limit`` iff ``exact < limit``),
    and the user-visible ``result_count`` is always the exact value.
    """

    name = "explain"

    def run(self, engine: "Quest", context: SearchContext) -> None:
        settings = engine.settings
        backend = getattr(engine.wrapper, "backend", None)
        probe_limit = settings.min_explanation_results
        use_probe = (
            settings.sql_pushdown
            and probe_limit > 0
            and backend is not None
            and getattr(backend, "supports_count_pushdown", False)
            and _pushdown_allowed(context, backend)
        )
        deadline = context.deadline
        explanations: list[Explanation] = []
        seen_queries: set[tuple] = set()
        for interpretation in context.ranked:
            if (
                deadline is not None
                and deadline.expired()
                and explanations
            ):
                # Budget died with answers in hand: stop executing SQL
                # for the remaining candidates and serve what exists.
                context.mark_degraded(
                    f"deadline: explain stage stopped after "
                    f"{len(explanations)} explanations"
                )
                break
            query = build_query(engine.schema, interpretation)
            identity = query.signature()
            if identity in seen_queries:
                continue
            seen_queries.add(identity)
            result_count: int | None = None
            if settings.execute_explanations:
                try:
                    if use_probe:
                        probe = engine.wrapper.result_count(query, probe_limit)
                        if probe < probe_limit:
                            continue
                        result_count = engine.wrapper.result_count(query)
                    else:
                        result_count = engine.wrapper.result_count(query)
                except AccessDeniedError:
                    result_count = None
                else:
                    if result_count < settings.min_explanation_results:
                        continue
            explanations.append(
                Explanation(
                    interpretation=interpretation,
                    query=query,
                    probability=interpretation.score,
                    result_count=result_count,
                )
            )
            if context.limit is not None and len(explanations) >= context.limit:
                break
        context.explanations = explanations

    def candidates(self, context: SearchContext) -> int:
        return len(context.explanations)
