"""The staged search pipeline and its cross-query caches.

One query's state threads through composable ``Forward -> Backward ->
Combine -> Explain`` stages as a :class:`SearchContext`; repeated work is
amortised across queries by two :class:`LRUCache` instances (emission
vectors on the source wrapper, Steiner results on the schema graph), with
per-query hit/miss deltas surfaced in the :class:`SearchTrace` diagnostic.
The cache itself lives in the leaf module :mod:`repro.cache` (re-exported
here) so low-level consumers never depend on this package.
"""

from repro.cache import CacheStats, LRUCache
from repro.pipeline.context import SearchContext, SearchTrace, StageReport
from repro.pipeline.runner import SearchPipeline
from repro.pipeline.stages import (
    BackwardStage,
    CombineStage,
    ExplainStage,
    ForwardStage,
    PipelineStage,
)

__all__ = [
    "BackwardStage",
    "CacheStats",
    "CombineStage",
    "ExplainStage",
    "ForwardStage",
    "LRUCache",
    "PipelineStage",
    "SearchContext",
    "SearchPipeline",
    "SearchTrace",
    "StageReport",
]
