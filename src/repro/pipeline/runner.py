"""The pipeline runner: stage composition, tracing and the batch tier.

``SearchPipeline`` owns an ordered tuple of stages (by default the
canonical ``Forward -> Backward -> Combine -> Explain``) and drives one
query's :class:`~repro.pipeline.context.SearchContext` through them,
recording per-stage wall time and candidate counts plus the emission- and
Steiner-cache hit/miss deltas into the context's
:class:`~repro.pipeline.context.SearchTrace`. The deltas come from a
context-local :class:`~repro.cache.CacheRecorder` installed around the
stages — every cache lookup is credited to the run that issued it, so the
per-query counts stay exact even when concurrent runs share one wrapper
or schema graph (global before/after snapshots would interleave).

``run_many`` is the batch entry point behind ``Quest.search_many``: it
replays the pipeline per query while the wrapper- and graph-level caches
accumulate state, so repeated keywords and terminal sets across a workload
are answered from cache.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.cache import CacheRecorder, CacheStats, recording
from repro.errors import DeadlineExceededError, QuestError
from repro.pipeline.context import SearchContext, SearchTrace, StageReport
from repro.pipeline.stages import (
    BackwardStage,
    CombineStage,
    ExplainStage,
    ForwardStage,
    PipelineStage,
)

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.configuration import Configuration
    from repro.core.engine import Quest
    from repro.core.explanation import Explanation
    from repro.core.interpretation import Interpretation
    from repro.resilience import Deadline

__all__ = ["SearchPipeline"]


def _cache_stats(cache: object) -> CacheStats:
    """Stats snapshot of an ``LRUCache``-like object (empty when absent)."""
    stats = getattr(cache, "stats", None)
    return stats if isinstance(stats, CacheStats) else CacheStats()


class SearchPipeline:
    """Composable staged execution of Algorithm 1 over one engine."""

    def __init__(self, stages: Sequence[PipelineStage] | None = None) -> None:
        self.stages: tuple[PipelineStage, ...] = (
            tuple(stages)
            if stages is not None
            else (ForwardStage(), BackwardStage(), CombineStage(), ExplainStage())
        )
        if not self.stages:
            raise QuestError("a search pipeline needs at least one stage")
        self._by_name = {stage.name: stage for stage in self.stages}

    def stage(self, name: str) -> PipelineStage:
        """The stage registered under *name*."""
        try:
            return self._by_name[name]
        except KeyError:
            raise QuestError(f"pipeline has no stage named {name!r}") from None

    # -- full runs -----------------------------------------------------------

    def run(
        self,
        engine: "Quest",
        query: str | None = None,
        keywords: Sequence[str] | None = None,
        k: int | None = None,
        deadline: "Deadline | None" = None,
    ) -> SearchContext:
        """Drive one query through every stage and return its context.

        Either *query* (tokenised here) or pre-tokenised *keywords* must be
        given; passing keywords lets batch callers (multi-source search)
        tokenise once and fan out. *deadline* bounds the run: stages
        degrade cooperatively and the trace comes back with
        ``degraded=True``, or :class:`DeadlineExceededError` is raised
        when the budget dies before anything salvageable exists.
        """
        settings = engine.settings
        k = k or settings.k
        if keywords is None:
            if query is None:
                raise QuestError("run() needs a query or keywords")
            keywords = engine.keywords_of(query)
        elif not keywords:
            raise QuestError("run() got an empty keyword list")
        context = SearchContext.for_query(
            query=query,
            keywords=list(keywords),
            k=k,
            pool=k * settings.candidate_factor,
            tree_k=settings.k,
            deadline=deadline,
        )
        self.execute(engine, context)
        return context

    def execute(self, engine: "Quest", context: SearchContext) -> SearchContext:
        """Run every stage over an already-primed context, tracing as we go.

        Cache attribution is exact per run: a context-local
        :class:`~repro.cache.CacheRecorder` is installed around the
        stages, so each lookup on the shared emission/Steiner caches is
        credited to the run that issued it — concurrent runs on one
        engine (or one wrapper shared by several engines) cannot leak
        counts into each other's traces.
        """
        emission_cache = getattr(engine.wrapper, "emission_cache", None)
        steiner_cache = getattr(engine.schema_graph, "steiner_cache", None)
        plan_cache = getattr(engine.schema_graph, "plan_cache", None)
        recorder = CacheRecorder()
        with recording(recorder):
            for stage in self.stages:
                self._check_deadline(context)
                start = time.perf_counter()
                stage.run(engine, context)
                context.trace.stages.append(
                    StageReport(
                        stage=stage.name,
                        seconds=time.perf_counter() - start,
                        candidates=stage.candidates(context),
                    )
                )
        # Hits/misses are the recorder's exact per-run counts; size and
        # maxsize describe the shared cache at completion time.
        emission_now = _cache_stats(emission_cache)
        steiner_now = _cache_stats(steiner_cache)
        emission_delta = recorder.stats(getattr(emission_cache, "label", "emission"))
        steiner_delta = recorder.stats(getattr(steiner_cache, "label", "steiner"))
        context.trace.emission_cache = CacheStats(
            hits=emission_delta.hits,
            misses=emission_delta.misses,
            size=emission_now.size,
            maxsize=emission_now.maxsize,
        )
        context.trace.steiner_cache = CacheStats(
            hits=steiner_delta.hits,
            misses=steiner_delta.misses,
            size=steiner_now.size,
            maxsize=steiner_now.maxsize,
        )
        subset_now = _cache_stats(plan_cache)
        subset_delta = recorder.stats(getattr(plan_cache, "label", "steiner-subset"))
        context.trace.steiner_subset_cache = CacheStats(
            hits=subset_delta.hits,
            misses=subset_delta.misses,
            size=subset_now.size,
            maxsize=subset_now.maxsize,
        )
        return context

    @staticmethod
    def _check_deadline(context: SearchContext) -> None:
        """The between-stages deadline backstop.

        Stages also check cooperatively *inside* their loops; this catch
        guards the seams. An expired budget with nothing salvageable yet
        (no interpretations and no explanations — the combine/explain
        stages could not produce an answer from what exists) aborts with
        :class:`DeadlineExceededError`; with salvageable products the run
        continues degraded so the remaining cheap stages can turn them
        into best-effort answers.
        """
        deadline = context.deadline
        if deadline is None or not deadline.expired():
            return
        if not (context.interpretations or context.explanations):
            raise DeadlineExceededError(deadline.budget_ms)
        context.mark_degraded(
            f"deadline: budget {deadline.budget_ms:.0f}ms exhausted "
            "mid-pipeline; serving best-so-far results"
        )

    def run_many(
        self,
        engine: "Quest",
        queries: Sequence[str],
        k: int | None = None,
        strict: bool = True,
    ) -> list[SearchContext]:
        """Run a workload of queries back to back, reusing cached state.

        With ``strict=False`` a query that raises — :class:`QuestError`
        (no usable keywords, no configurations, ...) or anything a broken
        wrapper throws — yields a context with empty results and
        ``context.error`` set, instead of aborting the batch: evaluation
        harnesses score such queries as misses, exactly like the
        per-query :func:`~repro.eval.harness.evaluate` loop.
        """
        contexts: list[SearchContext] = []
        for query in queries:
            start = time.perf_counter()
            try:
                contexts.append(self.run(engine, query=query, k=k))
            except Exception as error:
                if strict:
                    raise
                failed = SearchContext.for_query(
                    query=query,
                    keywords=[],
                    k=k or engine.settings.k,
                    pool=(k or engine.settings.k) * engine.settings.candidate_factor,
                    tree_k=engine.settings.k,
                )
                failed.error = error
                # The work burned before the failure still counts: keep
                # the trace's total_seconds honest (evaluate() parity).
                failed.trace.stages.append(
                    StageReport(
                        stage="error",
                        seconds=time.perf_counter() - start,
                        candidates=0,
                    )
                )
                contexts.append(failed)
        return contexts

    # -- single-stage conveniences -------------------------------------------
    #
    # These back the engine's thin public wrappers (`Quest.forward` etc.):
    # each primes a minimal context, runs exactly one stage and returns that
    # stage's product.

    def forward(
        self, engine: "Quest", keywords: Sequence[str], k: int
    ) -> list["Configuration"]:
        context = SearchContext(keywords=list(keywords), pool=k)
        self.stage("forward").run(engine, context)
        return context.configurations

    def backward(
        self, engine: "Quest", configurations: Sequence["Configuration"], k: int
    ) -> list["Interpretation"]:
        context = SearchContext(configurations=list(configurations), tree_k=k)
        self.stage("backward").run(engine, context)
        return context.interpretations

    def combine(
        self,
        engine: "Quest",
        configurations: Sequence["Configuration"],
        interpretations: Sequence["Interpretation"],
        k: int,
    ) -> list["Interpretation"]:
        context = SearchContext(
            configurations=list(configurations),
            interpretations=list(interpretations),
            rank_k=k,
        )
        self.stage("combine").run(engine, context)
        return context.ranked

    def explain(
        self,
        engine: "Quest",
        interpretations: Sequence["Interpretation"],
        limit: int | None,
    ) -> list["Explanation"]:
        context = SearchContext(ranked=list(interpretations), limit=limit)
        self.stage("explain").run(engine, context)
        return context.explanations

    def __repr__(self) -> str:
        names = " -> ".join(stage.name for stage in self.stages)
        return f"SearchPipeline({names})"
