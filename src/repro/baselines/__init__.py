"""Comparison baselines: the keyword-search lineage QUEST improves on.

DISCOVER-style candidate networks (schema-based), BANKS-style instance-
graph Steiner search (graph-based) and a universal-relation IR retriever.
"""

from repro.baselines.banks import AnswerTree, BanksBaseline, TupleNode
from repro.baselines.discover import CandidateNetwork, DiscoverBaseline
from repro.baselines.ir import IRBaseline, TupleHit

__all__ = [
    "AnswerTree",
    "BanksBaseline",
    "CandidateNetwork",
    "DiscoverBaseline",
    "IRBaseline",
    "TupleHit",
    "TupleNode",
]
