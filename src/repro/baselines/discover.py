"""DISCOVER-style schema-based baseline: candidate network enumeration.

The classic schema-based pipeline (Hristidis & Papakonstantinou, VLDB'02):
find the tables whose tuples contain each keyword, then enumerate *candidate
networks* — minimal join trees over the schema connecting one keyword-
holding table per keyword — breadth-first up to a size budget, ranking
smaller networks first. No probabilistic reasoning, no schema-term
matching, no instance-informed weighting: exactly the comparison point that
isolates QUEST's contributions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.db.database import Database
from repro.db.fulltext import FullTextIndex
from repro.db.query import Comparison, JoinCondition, Predicate, SelectQuery, TableRef
from repro.db.schema import ColumnRef, Schema

__all__ = ["CandidateNetwork", "DiscoverBaseline"]


@dataclass(frozen=True)
class CandidateNetwork:
    """A join tree over tables with keyword assignments."""

    tables: frozenset[str]
    joins: tuple[JoinCondition, ...]
    keyword_columns: tuple[tuple[str, ColumnRef], ...]  # keyword -> column

    @property
    def size(self) -> int:
        """Number of tables (the DISCOVER ranking criterion)."""
        return len(self.tables)


class DiscoverBaseline:
    """Keyword search by candidate-network enumeration."""

    def __init__(self, db: Database, max_network_size: int = 5) -> None:
        self.db = db
        self.schema: Schema = db.schema
        self.fulltext = FullTextIndex(db)
        self.max_network_size = max_network_size

    # -- keyword -> table sets -------------------------------------------------

    def keyword_columns(self, keyword: str) -> list[ColumnRef]:
        """Attributes whose extension contains *keyword*."""
        return sorted(self.fulltext.attribute_scores(keyword), key=str)

    # -- candidate network enumeration -----------------------------------------

    def _connect(self, tables: frozenset[str]) -> tuple[JoinCondition, ...] | None:
        """A minimal join tree connecting *tables*, or ``None``.

        Breadth-first growth over foreign keys starting from one member;
        may pull in intermediate (non-keyword) tables up to the size budget.
        """
        if len(tables) == 1:
            return ()
        start = sorted(tables)[0]
        # BFS over table-level adjacency, tracking the FK used to reach each.
        frontier = [start]
        reached: dict[str, tuple] = {start: ()}
        while frontier:
            current = frontier.pop(0)
            for fk in self.schema.foreign_keys:
                for source, target in ((fk.table, fk.ref_table), (fk.ref_table, fk.table)):
                    if source != current or target in reached:
                        continue
                    reached[target] = reached[current] + (fk,)
                    frontier.append(target)
        if not tables <= set(reached):
            return None
        used: dict[tuple, JoinCondition] = {}
        involved: set[str] = set()
        for table in tables:
            involved.add(table)
            for fk in reached[table]:
                key = (fk.table, fk.column, fk.ref_table, fk.ref_column)
                used[key] = JoinCondition(fk.table, fk.column, fk.ref_table, fk.ref_column)
                involved.add(fk.table)
                involved.add(fk.ref_table)
        if len(involved) > self.max_network_size:
            return None
        return tuple(used.values())

    def candidate_networks(self, keywords: list[str]) -> list[CandidateNetwork]:
        """All candidate networks for *keywords*, smallest first."""
        per_keyword = [self.keyword_columns(keyword) for keyword in keywords]
        if any(not columns for columns in per_keyword):
            return []
        networks: list[CandidateNetwork] = []
        seen: set[tuple] = set()
        for assignment in itertools.product(*per_keyword):
            tables = frozenset(ref.table for ref in assignment)
            if len(tables) > self.max_network_size:
                continue
            joins = self._connect(tables)
            if joins is None:
                continue
            key = (tables, tuple(sorted(zip(keywords, map(str, assignment)))))
            if key in seen:
                continue
            seen.add(key)
            networks.append(
                CandidateNetwork(
                    tables=tables,
                    joins=joins,
                    keyword_columns=tuple(zip(keywords, assignment)),
                )
            )
        networks.sort(
            key=lambda n: (n.size, sorted(n.tables), str(n.keyword_columns))
        )
        return networks

    # -- SQL generation -----------------------------------------------------------

    def to_query(self, network: CandidateNetwork) -> SelectQuery:
        """Render a candidate network as a select-project-join query."""
        involved: set[str] = set(network.tables)
        for join in network.joins:
            involved.add(join.left_alias)
            involved.add(join.right_alias)
        predicates = tuple(
            Predicate(ref.table, ref.column, Comparison.CONTAINS, keyword)
            for keyword, ref in network.keyword_columns
        )
        projection = tuple(
            (ref.table, ref.column) for _kw, ref in network.keyword_columns
        )
        return SelectQuery(
            tables=tuple(TableRef.of(name) for name in sorted(involved)),
            joins=network.joins,
            predicates=predicates,
            projection=projection,
        )

    def search(self, keywords: list[str], k: int = 10) -> list[SelectQuery]:
        """Top-k queries by network size (the DISCOVER ranking)."""
        return [self.to_query(n) for n in self.candidate_networks(keywords)[:k]]
