"""BANKS-style graph-based baseline: Steiner search over the *instance*.

Graph-based systems (BANKS, BLINKS, ...) model the database as a graph
whose nodes are tuples and whose edges are foreign-key links between
tuples, then search for small trees connecting keyword-matching tuples.
This is the approach the paper contrasts with: the instance graph has one
node per tuple, so it grows with the data, whereas QUEST's schema graph
does not (demo message three / experiment E3).

The search is BANKS' backward expanding heuristic: Dijkstra waves grow
backwards from each keyword's tuple set; a node reached by every wave roots
a connection tree.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.db.database import Database
from repro.db.fulltext import FullTextIndex
from repro.db.schema import ColumnRef

__all__ = ["TupleNode", "AnswerTree", "BanksBaseline"]


@dataclass(frozen=True)
class TupleNode:
    """One tuple of the instance graph, identified by table + primary key."""

    table: str
    key: tuple

    def __str__(self) -> str:
        return f"{self.table}{self.key!r}"


@dataclass(frozen=True)
class AnswerTree:
    """A connection tree: root tuple, leaf tuples per keyword, total weight."""

    root: TupleNode
    leaves: tuple[TupleNode, ...]
    edges: frozenset
    weight: float

    @property
    def size(self) -> int:
        """Number of edges in the tree."""
        return len(self.edges)


class BanksBaseline:
    """Keyword search over the tuple-level data graph."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.fulltext = FullTextIndex(db)
        self._adjacency: dict[TupleNode, set[TupleNode]] = {}
        self._build_graph()

    # -- graph construction ------------------------------------------------------

    def _build_graph(self) -> None:
        """Materialise the instance graph (node per tuple, edge per FK link)."""
        for fk in self.db.schema.foreign_keys:
            source = self.db.table(fk.table)
            target = self.db.table(fk.ref_table)
            source_position = source.column_position(fk.column)
            source_key_positions = [
                source.column_position(c) for c in source.schema.primary_key
            ]
            target.ensure_index(fk.ref_column)
            target_key_positions = [
                target.column_position(c) for c in target.schema.primary_key
            ]
            for row in source:
                value = row[source_position]
                if value is None:
                    continue
                source_node = TupleNode(
                    fk.table, tuple(row[p] for p in source_key_positions)
                )
                for matched in target.lookup(fk.ref_column, value):
                    target_node = TupleNode(
                        fk.ref_table,
                        tuple(matched[p] for p in target_key_positions),
                    )
                    self._adjacency.setdefault(source_node, set()).add(target_node)
                    self._adjacency.setdefault(target_node, set()).add(source_node)

    @property
    def node_count(self) -> int:
        """Tuples participating in at least one FK link."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Undirected tuple-level edges."""
        return sum(len(n) for n in self._adjacency.values()) // 2

    # -- keyword matching ----------------------------------------------------------

    def matching_nodes(self, keyword: str) -> set[TupleNode]:
        """Tuples containing *keyword* in any attribute."""
        nodes: set[TupleNode] = set()
        for ref, _score in self.fulltext.attribute_scores(keyword).items():
            table = self.db.table(ref.table)
            key_positions = [
                table.column_position(c) for c in table.schema.primary_key
            ]
            for position in self.fulltext.matching_row_positions(keyword, ref):
                # Posting positions are physical (tombstones never
                # renumber them), so index the physical list.
                row = table.storage_rows[position]
                nodes.add(
                    TupleNode(ref.table, tuple(row[p] for p in key_positions))
                )
        return nodes

    # -- backward expanding search ----------------------------------------------------

    def search(self, keywords: list[str], k: int = 10) -> list[AnswerTree]:
        """Top-k connection trees for *keywords* (unit edge weights)."""
        keyword_sets = [self.matching_nodes(keyword) for keyword in keywords]
        if any(not nodes for nodes in keyword_sets):
            return []

        counter = itertools.count()
        # Per keyword-set Dijkstra state: distance and parent maps.
        distances: list[dict[TupleNode, float]] = []
        parents: list[dict[TupleNode, TupleNode]] = []
        heap: list[tuple[float, int, int, TupleNode]] = []
        for i, nodes in enumerate(keyword_sets):
            distance_map = {node: 0.0 for node in nodes}
            distances.append(distance_map)
            parents.append({})
            for node in nodes:
                heapq.heappush(heap, (0.0, next(counter), i, node))

        answers: list[AnswerTree] = []
        emitted: set[tuple] = set()
        while heap and len(answers) < k:
            distance, _tie, wave, node = heapq.heappop(heap)
            if distance > distances[wave].get(node, float("inf")):
                continue
            if all(node in d for d in distances):
                answer = self._assemble(node, distances, parents)
                identity = (answer.root, answer.edges)
                if identity not in emitted:
                    emitted.add(identity)
                    answers.append(answer)
            for neighbour in self._adjacency.get(node, ()):
                candidate = distance + 1.0
                if candidate < distances[wave].get(neighbour, float("inf")):
                    distances[wave][neighbour] = candidate
                    parents[wave][neighbour] = node
                    heapq.heappush(heap, (candidate, next(counter), wave, neighbour))
        answers.sort(key=lambda a: (a.weight, str(a.root)))
        return answers[:k]

    def _assemble(
        self,
        root: TupleNode,
        distances: list[dict[TupleNode, float]],
        parents: list[dict[TupleNode, TupleNode]],
    ) -> AnswerTree:
        """Stitch per-wave shortest paths into one answer tree."""
        edges: set[frozenset] = set()
        leaves: list[TupleNode] = []
        for wave_parents in parents:
            current = root
            while current in wave_parents:
                parent = wave_parents[current]
                edges.add(frozenset((current, parent)))
                current = parent
            leaves.append(current)
        return AnswerTree(
            root=root,
            leaves=tuple(leaves),
            edges=frozenset(edges),
            weight=float(len(edges)),
        )
