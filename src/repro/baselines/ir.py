"""IR universal-relation baseline: per-tuple full-text retrieval.

The introduction's straw man: treat every tuple as a document (the
"universal relation" flattened view), rank tuples by TF-IDF against the
whole keyword query, and answer with single-table selections. It retrieves
tuples containing keywords but, by construction, can never produce the
join paths that multi-table queries need — which is why naive IR fails on
relational data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.fulltext import FullTextIndex
from repro.db.query import Comparison, Predicate, SelectQuery, TableRef

__all__ = ["TupleHit", "IRBaseline"]


@dataclass(frozen=True)
class TupleHit:
    """One retrieved tuple with its aggregate score."""

    table: str
    key: tuple
    score: float
    matched_keywords: frozenset[str]


class IRBaseline:
    """Universal-relation retrieval over tuples."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.fulltext = FullTextIndex(db)

    def search_tuples(self, keywords: list[str], k: int = 10) -> list[TupleHit]:
        """Top-k tuples by summed per-keyword TF-IDF."""
        scores: dict[tuple[str, tuple], float] = {}
        matched: dict[tuple[str, tuple], set[str]] = {}
        for keyword in keywords:
            for ref, attribute_score in self.fulltext.attribute_scores(keyword).items():
                table = self.db.table(ref.table)
                key_positions = [
                    table.column_position(c) for c in table.schema.primary_key
                ]
                for position in self.fulltext.matching_row_positions(keyword, ref):
                    # Posting positions are physical — see Table.storage_rows.
                    row = table.storage_rows[position]
                    identity = (ref.table, tuple(row[p] for p in key_positions))
                    scores[identity] = scores.get(identity, 0.0) + attribute_score
                    matched.setdefault(identity, set()).add(keyword)
        hits = [
            TupleHit(table, key, score, frozenset(matched[(table, key)]))
            for (table, key), score in scores.items()
        ]
        # Prefer tuples covering more keywords, then higher scores.
        hits.sort(key=lambda h: (-len(h.matched_keywords), -h.score, h.table, str(h.key)))
        return hits[:k]

    def search(self, keywords: list[str], k: int = 10) -> list[SelectQuery]:
        """Top-k *single-table* queries implied by the best tuples.

        One query per distinct (table, matched keyword set): every keyword
        the table's tuples matched becomes a containment predicate over the
        attribute where it scored highest. Joins are never produced.
        """
        queries: list[SelectQuery] = []
        seen: set[tuple[str, frozenset[str]]] = set()
        for hit in self.search_tuples(keywords, k * 4):
            identity = (hit.table, hit.matched_keywords)
            if identity in seen:
                continue
            seen.add(identity)
            predicates = []
            for keyword in sorted(hit.matched_keywords):
                candidates = {
                    ref: score
                    for ref, score in self.fulltext.attribute_scores(keyword).items()
                    if ref.table == hit.table
                }
                if not candidates:
                    continue
                best = max(candidates, key=lambda ref: (candidates[ref], str(ref)))
                predicates.append(
                    Predicate(hit.table, best.column, Comparison.CONTAINS, keyword)
                )
            if not predicates:
                continue
            queries.append(
                SelectQuery(
                    tables=(TableRef.of(hit.table),),
                    predicates=tuple(predicates),
                )
            )
            if len(queries) >= k:
                break
        return queries
