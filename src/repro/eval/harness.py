"""The evaluation harness: run any engine over a workload, tabulate quality.

Engines are adapted to a single callable signature ``(query_text, k) ->
ranked SelectQuery list`` so QUEST, its module ablations and the baselines
are measured identically. Per-query hit lists reduce to the aggregate
metrics reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.engine import Quest
from repro.core.settings import QuestSettings
from repro.datasets.workload import Workload, WorkloadQuery
from repro.db.database import Database
from repro.db.query import SelectQuery
from repro.eval.metrics import (
    hit_list,
    mean,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
    success_at_k,
)
from repro.storage import create_backend

__all__ = [
    "SearchEngine",
    "QueryOutcome",
    "EvaluationResult",
    "evaluate",
    "evaluate_batch",
    "evaluate_backends",
    "quest_engine",
    "forward_only_engine",
    "backward_only_engine",
]

#: Anything that maps a keyword query to a ranked list of SQL queries.
SearchEngine = Callable[[str, int], list[SelectQuery]]


@dataclass(frozen=True)
class QueryOutcome:
    """Evaluation of one workload query."""

    query: WorkloadQuery
    hits: tuple[bool, ...]
    seconds: float

    @property
    def rank(self) -> int | None:
        """1-based rank of the first correct result, ``None`` if absent."""
        for position, hit in enumerate(self.hits, start=1):
            if hit:
                return position
        return None


@dataclass
class EvaluationResult:
    """Aggregate metrics over one workload run."""

    engine_name: str
    workload_name: str
    outcomes: list[QueryOutcome] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.outcomes)

    def success_at(self, k: int) -> float:
        return mean([success_at_k(o.hits, k) for o in self.outcomes])

    @property
    def mrr(self) -> float:
        return mean([reciprocal_rank(o.hits) for o in self.outcomes])

    def precision_at(self, k: int) -> float:
        return mean([precision_at_k(o.hits, k) for o in self.outcomes])

    def ndcg_at(self, k: int) -> float:
        return mean([ndcg_at_k(o.hits, k) for o in self.outcomes])

    @property
    def mean_seconds(self) -> float:
        return mean([o.seconds for o in self.outcomes])

    def summary(self) -> dict[str, float]:
        """The metric row reported by every benchmark."""
        return {
            "queries": float(self.query_count),
            "success@1": self.success_at(1),
            "success@3": self.success_at(3),
            "success@10": self.success_at(10),
            "mrr": self.mrr,
            "ndcg@10": self.ndcg_at(10),
            "mean_seconds": self.mean_seconds,
        }


def evaluate(
    engine: SearchEngine,
    workload: Workload | Sequence[WorkloadQuery],
    k: int = 10,
    engine_name: str = "engine",
) -> EvaluationResult:
    """Run *engine* over every workload query and collect metrics.

    Engine failures on individual queries count as misses (empty hit list)
    rather than aborting the run — a search engine that errors out on a
    query has, for evaluation purposes, simply not answered it.
    """
    workload_name = workload.name if isinstance(workload, Workload) else "ad-hoc"
    result = EvaluationResult(engine_name=engine_name, workload_name=workload_name)
    for query in workload:
        start = time.perf_counter()
        try:
            ranked = engine(query.text, k)
        except Exception:
            ranked = []
        elapsed = time.perf_counter() - start
        result.outcomes.append(
            QueryOutcome(
                query=query,
                hits=tuple(hit_list(ranked, query.gold_query)),
                seconds=elapsed,
            )
        )
    return result


def evaluate_batch(
    quest: Quest,
    workload: Workload | Sequence[WorkloadQuery],
    k: int = 10,
    engine_name: str = "quest-batch",
) -> EvaluationResult:
    """Evaluate a QUEST engine through its batch tier.

    The whole workload goes through ``Quest.search_many`` in one go, so
    the emission and Steiner caches warm across queries exactly as they
    would under production traffic; per-query timings come from each run's
    :class:`~repro.pipeline.context.SearchTrace` rather than an outer
    stopwatch. Queries that fail (``context.error`` set) score as misses,
    matching :func:`evaluate`.
    """
    workload_name = workload.name if isinstance(workload, Workload) else "ad-hoc"
    queries = list(workload)
    batches = quest.search_many(
        [query.text for query in queries], k=k, strict=False
    )
    result = EvaluationResult(engine_name=engine_name, workload_name=workload_name)
    for query, explanations, trace in zip(queries, batches, quest.batch_traces):
        ranked = [explanation.query for explanation in explanations]
        result.outcomes.append(
            QueryOutcome(
                query=query,
                hits=tuple(hit_list(ranked, query.gold_query)),
                seconds=trace.total_seconds,
            )
        )
    return result


def evaluate_backends(
    database: Database,
    workload: Workload | Sequence[WorkloadQuery],
    backends: Sequence[str] = ("memory", "sqlite"),
    k: int = 10,
    settings: QuestSettings | None = None,
) -> dict[str, EvaluationResult]:
    """Run the same workload against one QUEST engine per storage backend.

    Each backend gets a fresh engine over a fresh copy of *database*'s
    contents, and the whole workload runs through the batch tier. Because
    backends guarantee score parity, per-backend results differ only in
    timing — the quality rows are a built-in cross-engine consistency
    check, and the timings are the honest backend comparison.
    """
    from repro.wrapper.full import FullAccessWrapper

    results: dict[str, EvaluationResult] = {}
    for name in backends:
        quest = Quest(FullAccessWrapper(create_backend(name, database)), settings)
        results[name] = evaluate_batch(
            quest, workload, k=k, engine_name=f"quest-{name}"
        )
    return results


# -- engine adapters ---------------------------------------------------------


def quest_engine(quest: Quest) -> SearchEngine:
    """Adapt a :class:`Quest` instance to the harness signature."""

    def run(text: str, k: int) -> list[SelectQuery]:
        return [explanation.query for explanation in quest.search(text, k)]

    return run


def forward_only_engine(quest: Quest, mode: str = "combined") -> SearchEngine:
    """QUEST with the backward step neutralised (forward ranking only).

    Each configuration is materialised with its single best join path, but
    the ranking is the forward confidence alone — this is the "forward
    module in isolation" partial result of demo message two.

    Args:
        quest: the engine to ablate.
        mode: ``"combined"``, ``"apriori"`` or ``"feedback"``.
    """

    def run(text: str, k: int) -> list[SelectQuery]:
        keywords = quest.keywords_of(text)
        if mode == "apriori":
            configurations = quest.decode(keywords, quest.apriori_model, k)
        elif mode == "feedback":
            if quest.feedback_model is None:
                return []
            configurations = quest.decode(keywords, quest.feedback_model, k)
        else:
            configurations = quest.forward(keywords, k)
        queries: list[SelectQuery] = []
        seen: set[tuple] = set()
        for configuration in configurations:
            interpretations = quest.backward([configuration], 1)
            if not interpretations:
                continue
            query = quest.build_sql(interpretations[0])
            identity = query.signature()
            if identity not in seen:
                seen.add(identity)
                queries.append(query)
        return queries[:k]

    return run


def backward_only_engine(quest: Quest) -> SearchEngine:
    """QUEST ranked by backward (join-path) evidence alone.

    Configurations still come from the forward decoder (something must map
    keywords to terminals) but their confidences are discarded: the ranking
    is purely the Steiner-tree score — the "backward module in isolation"
    partial result of demo message two.
    """

    def run(text: str, k: int) -> list[SelectQuery]:
        keywords = quest.keywords_of(text)
        configurations = quest.forward(keywords, k)
        flattened = [c.with_score(1.0) for c in configurations]
        interpretations = quest.backward(flattened, k)
        interpretations.sort(key=lambda i: -i.score)
        queries: list[SelectQuery] = []
        seen: set[tuple] = set()
        for interpretation in interpretations:
            query = quest.build_sql(interpretation)
            identity = query.signature()
            if identity not in seen:
                seen.add(identity)
                queries.append(query)
            if len(queries) >= k:
                break
        return queries

    return run
