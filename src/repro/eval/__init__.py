"""Evaluation: metrics, the workload harness and result tabulation."""

from repro.eval.harness import (
    EvaluationResult,
    QueryOutcome,
    SearchEngine,
    backward_only_engine,
    evaluate,
    evaluate_backends,
    evaluate_batch,
    forward_only_engine,
    quest_engine,
)
from repro.eval.metrics import (
    hit_list,
    mean,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
    success_at_k,
)
from repro.eval.report import format_results, format_table

__all__ = [
    "EvaluationResult",
    "QueryOutcome",
    "SearchEngine",
    "backward_only_engine",
    "evaluate",
    "evaluate_backends",
    "evaluate_batch",
    "format_results",
    "format_table",
    "forward_only_engine",
    "hit_list",
    "mean",
    "ndcg_at_k",
    "precision_at_k",
    "quest_engine",
    "reciprocal_rank",
    "success_at_k",
]
