"""Ranking-quality metrics for keyword-search evaluation.

All metrics operate on a ranked list of booleans (``hits[i]`` — whether the
i-th returned explanation structurally matches the gold query) so they are
engine-agnostic: QUEST, module ablations and baselines all reduce to hit
lists via :func:`hit_list`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.db.query import SelectQuery

__all__ = [
    "hit_list",
    "success_at_k",
    "reciprocal_rank",
    "precision_at_k",
    "ndcg_at_k",
    "mean",
]


def hit_list(ranked: Sequence[SelectQuery], gold: SelectQuery) -> list[bool]:
    """Structural-match indicator for each ranked query against the gold."""
    return [query.matches(gold) for query in ranked]


def success_at_k(hits: Sequence[bool], k: int) -> float:
    """1.0 if any of the first *k* results is correct, else 0.0."""
    return 1.0 if any(hits[:k]) else 0.0


def reciprocal_rank(hits: Sequence[bool]) -> float:
    """1 / rank of the first correct result (0.0 when absent)."""
    for position, hit in enumerate(hits, start=1):
        if hit:
            return 1.0 / position
    return 0.0


def precision_at_k(hits: Sequence[bool], k: int) -> float:
    """Fraction of the first *k* results that are correct."""
    if k <= 0:
        return 0.0
    window = list(hits[:k])
    if not window:
        return 0.0
    return sum(window) / k


def ndcg_at_k(hits: Sequence[bool], k: int) -> float:
    """Binary nDCG at *k* (one relevant item: the gold query)."""
    dcg = 0.0
    for position, hit in enumerate(hits[:k], start=1):
        if hit:
            dcg += 1.0 / math.log2(position + 1)
    # Ideal: the single relevant result at rank 1.
    return dcg / 1.0 if dcg <= 1.0 else 1.0


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)
