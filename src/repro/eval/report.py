"""Plain-text tabulation of evaluation results.

Benchmarks print their tables through these helpers so EXPERIMENTS.md rows
can be pasted verbatim from benchmark output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_results"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule; floats render to 3 decimals."""
    rendered_rows = [
        [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_results(
    results: Sequence[Mapping[str, float]],
    labels: Sequence[str],
    title: str | None = None,
) -> str:
    """Tabulate several ``EvaluationResult.summary()`` dicts side by side."""
    if not results:
        return title or ""
    metric_names = list(results[0].keys())
    headers = ["engine", *metric_names]
    rows = [
        [label, *[summary[name] for name in metric_names]]
        for label, summary in zip(labels, results)
    ]
    return format_table(headers, rows, title=title)
