"""Deterministic name pools for the synthetic dataset generators.

All three demo databases are generated offline from these pools with
seeded RNGs, so every run of the benchmarks sees byte-identical data. The
pools are intentionally diverse in length and token shape to exercise the
tokeniser, the full-text index and the similarity measures.
"""

from __future__ import annotations

import random

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "TITLE_ADJECTIVES",
    "TITLE_NOUNS",
    "GENRES",
    "COMPANY_WORDS",
    "VENUE_NAMES",
    "PAPER_TOPICS",
    "PAPER_QUALIFIERS",
    "COUNTRY_NAMES",
    "CITY_PREFIXES",
    "CITY_SUFFIXES",
    "RIVER_NAMES",
    "MOUNTAIN_NAMES",
    "LAKE_NAMES",
    "LANGUAGES",
    "RELIGIONS",
    "ETHNIC_GROUPS",
    "CONTINENTS",
    "ORGANIZATIONS",
    "PROVINCE_WORDS",
    "ROLE_NAMES",
    "full_name",
    "pick",
]

FIRST_NAMES = (
    "Stanley", "Ridley", "Sofia", "Akira", "Ingmar", "Agnes", "Orson",
    "Greta", "Martin", "Kathryn", "Federico", "Jane", "Alfred", "Chantal",
    "Billy", "Ida", "Sergio", "Lina", "Andrei", "Maya", "Robert", "Elaine",
    "Sidney", "Dorothy", "Werner", "Claire", "Victor", "Lucia", "Hayao",
    "Wong", "Pedro", "Céline", "Spike", "Mira", "John", "Barbara", "Fritz",
    "Leni", "Carl", "Marta", "Elem", "Vera", "Ousmane", "Safi", "Satyajit",
    "Aparna", "Glauber", "Anna", "Miklos", "Judit",
)

LAST_NAMES = (
    "Kubrick", "Scott", "Coppola", "Kurosawa", "Bergman", "Varda", "Welles",
    "Gerwig", "Scorsese", "Bigelow", "Fellini", "Campion", "Hitchcock",
    "Akerman", "Wilder", "Lupino", "Leone", "Wertmuller", "Tarkovsky",
    "Deren", "Altman", "May", "Lumet", "Arzner", "Herzog", "Denis",
    "Fleming", "Bunuel", "Miyazaki", "Karwai", "Almodovar", "Sciamma",
    "Jonze", "Nair", "Cassavetes", "Loden", "Lang", "Riefenstahl",
    "Dreyer", "Meszaros", "Klimov", "Chytilova", "Sembene", "Faye",
    "Ray", "Sen", "Rocha", "Muylaert", "Jancso", "Elek",
)

TITLE_ADJECTIVES = (
    "Silent", "Crimson", "Endless", "Broken", "Hidden", "Burning",
    "Frozen", "Golden", "Hollow", "Savage", "Electric", "Midnight",
    "Distant", "Forgotten", "Restless", "Velvet", "Wandering", "Shattered",
    "Luminous", "Feral",
)

TITLE_NOUNS = (
    "Odyssey", "Shining", "Alien", "Runner", "Horizon", "Labyrinth",
    "Mirage", "Empire", "Garden", "Voyage", "Whisper", "Harvest",
    "Tempest", "Monolith", "Paradox", "Lantern", "Orchard", "Citadel",
    "Pilgrim", "Sonata",
)

GENRES = (
    "scifi", "horror", "drama", "comedy", "thriller", "western",
    "documentary", "noir", "musical", "animation", "romance", "war",
)

COMPANY_WORDS = (
    "Meridian", "Northlight", "Paragon", "Silverline", "Vanguard",
    "Bluebird", "Stonebridge", "Helios", "Crescent", "Atlas",
)

VENUE_NAMES = (
    "VLDB", "SIGMOD", "ICDE", "CIKM", "EDBT", "KDD", "WWW", "TODS",
    "PVLDB", "TKDE", "Information Systems", "Data Engineering Bulletin",
)

PAPER_TOPICS = (
    "keyword search", "query optimization", "schema matching",
    "data integration", "entity resolution", "stream processing",
    "graph databases", "provenance tracking", "index structures",
    "transaction processing", "view maintenance", "data cleaning",
    "skyline queries", "crowdsourcing", "uncertain data",
)

PAPER_QUALIFIERS = (
    "efficient", "scalable", "adaptive", "probabilistic", "incremental",
    "distributed", "robust", "approximate", "semantic", "interactive",
)

COUNTRY_NAMES = (
    "Atlantis", "Borduria", "Cassadia", "Drevonia", "Elbonia", "Freedonia",
    "Glubbdubdrib", "Hyrkania", "Illyria", "Jotunheim", "Kyrat", "Latveria",
    "Molvania", "Novistrana", "Opar", "Pandoria", "Qumar", "Ruritania",
    "Sylvania", "Tomainia", "Urkesh", "Vespugia", "Wadiya", "Xanadu",
    "Yerba", "Zubrowka", "Arendelle", "Brobdingnag", "Carpathia",
    "Dinotopia", "Estovakia", "Florin", "Genosha", "Hav", "Islandia",
    "Krakozhia", "Laurania", "Markovia", "Norland", "Osterlich",
)

CITY_PREFIXES = (
    "Port", "New", "East", "West", "North", "South", "Upper", "Lower",
    "Fort", "Saint", "Lake", "Mount",
)

CITY_SUFFIXES = (
    "haven", "burg", "ford", "mouth", "stead", "field", "bridge", "gate",
    "holm", "wick", "dale", "crest",
)

RIVER_NAMES = (
    "Veleka", "Ostrana", "Mirova", "Taldris", "Ghemura", "Soliana",
    "Ketrin", "Ulvatha", "Brennic", "Davrosh", "Ilmena", "Querra",
)

MOUNTAIN_NAMES = (
    "Karthane", "Velmor", "Drachfell", "Osmira", "Thornspire", "Gelvaren",
    "Ulmback", "Cindral", "Morvayne", "Askarad",
)

LAKE_NAMES = (
    "Nerevar", "Ithilmere", "Oskara", "Veldrin", "Calmara", "Tysmere",
    "Ghalen", "Ruvola",
)

LANGUAGES = (
    "Atlantean", "Bordurian", "Cassadian", "Drevonic", "Elbonian",
    "Hyrkanian", "Illyrian", "Kyrati", "Latverian", "Molvanian",
    "Ruritanian", "Sylvanian", "Zubrowkan", "Florinese",
)

RELIGIONS = (
    "Solarism", "Lunarism", "Tideism", "Emberfaith", "Skyward",
    "Rootway", "Stonecreed",
)

ETHNIC_GROUPS = (
    "Ashvari", "Belemi", "Corvan", "Dulmeri", "Ersko", "Farsani",
    "Ghedim", "Hollar", "Istveni", "Jurmak",
)

CONTINENTS = ("Boreania", "Meridia", "Occidia", "Oriensia", "Australix")

ORGANIZATIONS = (
    ("World Trade Assembly", "WTA"),
    ("Continental Defense Pact", "CDP"),
    ("Open Seas Union", "OSU"),
    ("Mountain States League", "MSL"),
    ("River Basin Commission", "RBC"),
    ("Northern Energy Council", "NEC"),
    ("Alliance of Island Nations", "AIN"),
    ("Customs Cooperation Zone", "CCZ"),
)

PROVINCE_WORDS = (
    "Highlands", "Lowlands", "Marches", "Coast", "Heartland", "Reaches",
    "Steppe", "Basin", "Plateau", "Frontier",
)

ROLE_NAMES = (
    "Captain", "Doctor", "Engineer", "Navigator", "Stranger", "Detective",
    "Professor", "Pilot", "Archivist", "Messenger",
)


def pick(rng: random.Random, pool: tuple, *, exclude: set | None = None):
    """Pick one element, optionally excluding already-used values."""
    if exclude:
        candidates = [item for item in pool if item not in exclude]
        if candidates:
            return rng.choice(candidates)
    return rng.choice(pool)


def full_name(rng: random.Random) -> str:
    """A random ``First Last`` person name."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
