"""Synthetic Mondial-like database: very complex schema, few instances.

Mondial is the paper's "complex schema where tables are connected through
many paths" scenario. The generator builds a 16-table geographic schema —
countries, provinces, cities, geographic features with m:n location tables,
languages/religions, a self-referencing ``borders`` relation and
international organizations with memberships — over a deliberately small
instance, so backward-step path ambiguity (not data volume) is the
challenge.
"""

from __future__ import annotations

import random
from typing import Any

from repro.datasets import names
from repro.datasets.workload import (
    InstanceView,
    Workload,
    WorkloadQuery,
    gold_configuration,
    materialise,
)
from repro.db.database import Database
from repro.db.query import Comparison, JoinCondition, Predicate, SelectQuery, TableRef
from repro.db.schema import Column, ForeignKey, Schema, TableSchema
from repro.db.types import DataType
from repro.hmm.states import State, StateKind

__all__ = ["schema", "generate", "workload"]


def schema() -> Schema:
    """The Mondial-like geographic schema (16 tables, 17 foreign keys)."""
    tables = [
        TableSchema(
            "continent",
            (
                Column("name", DataType.TEXT, nullable=False),
                Column("area", DataType.FLOAT),
            ),
            ("name",),
            synonyms=("landmass",),
        ),
        TableSchema(
            "country",
            (
                Column("code", DataType.TEXT, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("capital", DataType.TEXT, synonyms=("seat",)),
                Column("population", DataType.INTEGER),
                Column("area", DataType.FLOAT),
            ),
            ("code",),
            synonyms=("nation", "state"),
        ),
        TableSchema(
            "province",
            (
                Column("id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("country_code", DataType.TEXT, nullable=False),
                Column("population", DataType.INTEGER),
            ),
            ("id",),
            synonyms=("region", "district"),
        ),
        TableSchema(
            "city",
            (
                Column("id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("country_code", DataType.TEXT, nullable=False),
                Column("province_id", DataType.INTEGER),
                Column("population", DataType.INTEGER),
            ),
            ("id",),
            synonyms=("town", "municipality"),
        ),
        TableSchema(
            "river",
            (
                Column("id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("length", DataType.FLOAT),
            ),
            ("id",),
            synonyms=("stream", "waterway"),
        ),
        TableSchema(
            "geo_river",
            (
                Column("river_id", DataType.INTEGER, nullable=False),
                Column("country_code", DataType.TEXT, nullable=False),
            ),
            ("river_id", "country_code"),
            description="Which rivers flow through which countries.",
        ),
        TableSchema(
            "mountain",
            (
                Column("id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("height", DataType.FLOAT),
            ),
            ("id",),
            synonyms=("peak", "summit"),
        ),
        TableSchema(
            "geo_mountain",
            (
                Column("mountain_id", DataType.INTEGER, nullable=False),
                Column("country_code", DataType.TEXT, nullable=False),
            ),
            ("mountain_id", "country_code"),
        ),
        TableSchema(
            "lake",
            (
                Column("id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("area", DataType.FLOAT),
            ),
            ("id",),
        ),
        TableSchema(
            "geo_lake",
            (
                Column("lake_id", DataType.INTEGER, nullable=False),
                Column("country_code", DataType.TEXT, nullable=False),
            ),
            ("lake_id", "country_code"),
        ),
        TableSchema(
            "encompasses",
            (
                Column("country_code", DataType.TEXT, nullable=False),
                Column("continent_name", DataType.TEXT, nullable=False),
                Column("percentage", DataType.FLOAT),
            ),
            ("country_code", "continent_name"),
            description="Which continents each country lies on.",
        ),
        TableSchema(
            "language",
            (
                Column("country_code", DataType.TEXT, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("percentage", DataType.FLOAT),
            ),
            ("country_code", "name"),
            synonyms=("tongue",),
        ),
        TableSchema(
            "religion",
            (
                Column("country_code", DataType.TEXT, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("percentage", DataType.FLOAT),
            ),
            ("country_code", "name"),
            synonyms=("faith",),
        ),
        TableSchema(
            "borders",
            (
                Column("country1", DataType.TEXT, nullable=False),
                Column("country2", DataType.TEXT, nullable=False),
                Column("length", DataType.FLOAT),
            ),
            ("country1", "country2"),
            synonyms=("neighbor", "frontier"),
        ),
        TableSchema(
            "organization",
            (
                Column("id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT, nullable=False),
                Column("abbreviation", DataType.TEXT),
                Column("city_id", DataType.INTEGER),
            ),
            ("id",),
            synonyms=("body", "institution"),
        ),
        TableSchema(
            "member",
            (
                Column("country_code", DataType.TEXT, nullable=False),
                Column("organization_id", DataType.INTEGER, nullable=False),
                Column("kind", DataType.TEXT),
            ),
            ("country_code", "organization_id"),
            synonyms=("membership", "affiliate"),
        ),
    ]
    foreign_keys = [
        ForeignKey("province", "country_code", "country", "code"),
        ForeignKey("city", "country_code", "country", "code"),
        ForeignKey("city", "province_id", "province", "id"),
        ForeignKey("geo_river", "river_id", "river", "id"),
        ForeignKey("geo_river", "country_code", "country", "code"),
        ForeignKey("geo_mountain", "mountain_id", "mountain", "id"),
        ForeignKey("geo_mountain", "country_code", "country", "code"),
        ForeignKey("geo_lake", "lake_id", "lake", "id"),
        ForeignKey("geo_lake", "country_code", "country", "code"),
        ForeignKey("encompasses", "country_code", "country", "code"),
        ForeignKey("encompasses", "continent_name", "continent", "name"),
        ForeignKey("language", "country_code", "country", "code"),
        ForeignKey("religion", "country_code", "country", "code"),
        ForeignKey("borders", "country1", "country", "code"),
        ForeignKey("borders", "country2", "country", "code"),
        ForeignKey("organization", "city_id", "city", "id"),
        ForeignKey("member", "country_code", "country", "code"),
        ForeignKey("member", "organization_id", "organization", "id"),
    ]
    return Schema(tables, foreign_keys, name="mondial")


def generate(
    countries: int = 30,
    seed: int = 23,
    backend: str | None = None,
    **backend_options: Any,
):
    """Generate a deterministic geographic instance.

    With ``backend=None`` (default) returns the in-memory ``Database``;
    with a :data:`repro.storage.BACKENDS` name ("memory", "sqlite") the
    instance is loaded into that storage backend and the backend is
    returned (``backend_options`` are forwarded, e.g. ``path=`` for
    SQLite persistence).
    """
    rng = random.Random(seed)
    db = Database(schema())
    countries = min(countries, len(names.COUNTRY_NAMES))

    for continent in names.CONTINENTS:
        db.insert(
            "continent",
            {"name": continent, "area": round(rng.uniform(8e6, 4e7), 0)},
        )

    country_codes: list[str] = []
    city_id = 0
    province_id = 0
    for i in range(countries):
        name = names.COUNTRY_NAMES[i]
        code = name[:3].upper()
        if code in country_codes:
            code = name[:2].upper() + str(i)
        country_codes.append(code)
        capital_name = (
            f"{rng.choice(names.CITY_PREFIXES)} "
            f"{rng.choice(names.LAST_NAMES)}{rng.choice(names.CITY_SUFFIXES)}"
        )
        db.insert(
            "country",
            {
                "code": code,
                "name": name,
                "capital": capital_name,
                "population": rng.randint(100_000, 90_000_000),
                "area": round(rng.uniform(1e4, 2e6), 0),
            },
        )
        for continent in rng.sample(names.CONTINENTS, rng.randint(1, 2)):
            db.insert(
                "encompasses",
                {
                    "country_code": code,
                    "continent_name": continent,
                    "percentage": round(rng.uniform(10, 100), 1),
                },
            )
        for _ in range(rng.randint(1, 3)):
            province_id += 1
            db.insert(
                "province",
                {
                    "id": province_id,
                    # Province names avoid the country name on purpose:
                    # embedding it would make country keywords match
                    # province.name in full text, an artificial ambiguity.
                    "name": (
                        f"{rng.choice(names.LAST_NAMES)} "
                        f"{rng.choice(names.PROVINCE_WORDS)}"
                    ),
                    "country_code": code,
                    "population": rng.randint(50_000, 9_000_000),
                },
            )
        city_count = rng.randint(2, 4)
        for c in range(city_count):
            city_id += 1
            city_name = (
                capital_name
                if c == 0
                else (
                    f"{rng.choice(names.CITY_PREFIXES)} "
                    f"{rng.choice(names.LAST_NAMES)}{rng.choice(names.CITY_SUFFIXES)}"
                )
            )
            db.insert(
                "city",
                {
                    "id": city_id,
                    "name": city_name,
                    "country_code": code,
                    "province_id": province_id if rng.random() < 0.7 else None,
                    "population": rng.randint(10_000, 15_000_000),
                },
            )
        for language in rng.sample(names.LANGUAGES, rng.randint(1, 3)):
            db.insert(
                "language",
                {
                    "country_code": code,
                    "name": language,
                    "percentage": round(rng.uniform(5, 100), 1),
                },
            )
        for religion in rng.sample(names.RELIGIONS, rng.randint(1, 2)):
            db.insert(
                "religion",
                {
                    "country_code": code,
                    "name": religion,
                    "percentage": round(rng.uniform(5, 95), 1),
                },
            )

    for river_id, river in enumerate(names.RIVER_NAMES, start=1):
        db.insert(
            "river",
            {"id": river_id, "name": river, "length": round(rng.uniform(80, 6400), 0)},
        )
        for code in rng.sample(country_codes, rng.randint(1, 3)):
            db.insert("geo_river", {"river_id": river_id, "country_code": code})

    for mountain_id, mountain in enumerate(names.MOUNTAIN_NAMES, start=1):
        db.insert(
            "mountain",
            {
                "id": mountain_id,
                "name": mountain,
                "height": round(rng.uniform(800, 8500), 0),
            },
        )
        for code in rng.sample(country_codes, rng.randint(1, 2)):
            db.insert(
                "geo_mountain", {"mountain_id": mountain_id, "country_code": code}
            )

    for lake_id, lake in enumerate(names.LAKE_NAMES, start=1):
        db.insert(
            "lake",
            {"id": lake_id, "name": lake, "area": round(rng.uniform(10, 30000), 0)},
        )
        for code in rng.sample(country_codes, rng.randint(1, 2)):
            db.insert("geo_lake", {"lake_id": lake_id, "country_code": code})

    border_pairs: set[tuple[str, str]] = set()
    for code in country_codes:
        for other in rng.sample(country_codes, rng.randint(1, 3)):
            pair = tuple(sorted((code, other)))
            if code == other or pair in border_pairs:
                continue
            border_pairs.add(pair)  # store each border once, c1 < c2
            db.insert(
                "borders",
                {
                    "country1": pair[0],
                    "country2": pair[1],
                    "length": round(rng.uniform(20, 4000), 0),
                },
            )

    total_cities = city_id
    for org_id, (org_name, abbreviation) in enumerate(names.ORGANIZATIONS, start=1):
        db.insert(
            "organization",
            {
                "id": org_id,
                "name": org_name,
                "abbreviation": abbreviation,
                "city_id": rng.randint(1, total_cities),
            },
        )
        for code in rng.sample(country_codes, rng.randint(3, min(10, countries))):
            db.insert(
                "member",
                {
                    "country_code": code,
                    "organization_id": org_id,
                    "kind": rng.choice(("member", "observer", "founder")),
                },
            )

    db.check_integrity()
    return materialise(db, backend, **backend_options)


# -- workload -----------------------------------------------------------------


def _dom(table: str, column: str) -> State:
    return State(StateKind.DOMAIN, table, column)


def _attr(table: str, column: str) -> State:
    return State(StateKind.ATTRIBUTE, table, column)


def _table_state(table: str) -> State:
    return State(StateKind.TABLE, table)


def workload(db: Any, queries_per_kind: int = 5, seed: int = 29) -> Workload:
    """A gold-annotated workload over the geographic instance.

    *db* may be the in-memory database or any storage backend holding the
    generated instance; rows are read through :class:`InstanceView`.
    """
    view = InstanceView(db)
    rng = random.Random(seed)
    queries: list[WorkloadQuery] = []
    used: set[tuple[str, ...]] = set()
    country_rows = view.rows("country")

    def add(kind: str, index: int, text: str, gold: SelectQuery, config, desc: str) -> None:
        if config.keywords in used:
            return
        used.add(config.keywords)
        queries.append(
            WorkloadQuery(
                qid=f"mondial-{kind}-{index}",
                text=text,
                gold_query=gold,
                gold_configuration=config,
                description=desc,
            )
        )

    # Countries that actually have rivers: "rivers of X" must have answers.
    river_country_codes = {row[1] for row in view.rows("geo_river")}
    encompasses_rows = view.rows("encompasses")

    for index in range(queries_per_kind):
        rivered = [row for row in country_rows if row[0] in river_country_codes]
        country = rng.choice(rivered if rivered else country_rows)
        code, country_name, _capital, _population, _area = country
        country_word = str(country_name).lower()

        # Kind 1: "<country> cities" — city -> country join.
        add(
            "cities",
            index,
            f"{country_word} cities",
            SelectQuery(
                tables=(TableRef.of("city"), TableRef.of("country")),
                joins=(JoinCondition("city", "country_code", "country", "code"),),
                predicates=(
                    Predicate("country", "name", Comparison.CONTAINS, country_word),
                ),
                projection=(("city", "name"),),
            ),
            gold_configuration(
                [country_word, "cities"],
                [_dom("country", "name"), _table_state("city")],
            ),
            "cities of a country",
        )

        # Kind 2: "capital <country>" — single-table attribute + value.
        add(
            "capital",
            index,
            f"capital {country_word}",
            SelectQuery(
                tables=(TableRef.of("country"),),
                predicates=(
                    Predicate("country", "name", Comparison.CONTAINS, country_word),
                ),
                projection=(("country", "capital"),),
            ),
            gold_configuration(
                ["capital", country_word],
                [_attr("country", "capital"), _dom("country", "name")],
            ),
            "attribute keyword + country value, single table",
        )

        # Kind 3: "language <country>" — language -> country join.
        add(
            "language",
            index,
            f"language {country_word}",
            SelectQuery(
                tables=(TableRef.of("country"), TableRef.of("language")),
                joins=(
                    JoinCondition("language", "country_code", "country", "code"),
                ),
                predicates=(
                    Predicate("country", "name", Comparison.CONTAINS, country_word),
                ),
                projection=(("language", "name"),),
            ),
            gold_configuration(
                ["language", country_word],
                [_table_state("language"), _dom("country", "name")],
            ),
            "languages spoken in a country",
        )

        # Kind 4: "rivers <country>" — m:n geographic feature path.
        add(
            "rivers",
            index,
            f"rivers {country_word}",
            SelectQuery(
                tables=(
                    TableRef.of("country"),
                    TableRef.of("geo_river"),
                    TableRef.of("river"),
                ),
                joins=(
                    JoinCondition("geo_river", "river_id", "river", "id"),
                    JoinCondition("geo_river", "country_code", "country", "code"),
                ),
                predicates=(
                    Predicate("country", "name", Comparison.CONTAINS, country_word),
                ),
                projection=(("river", "name"),),
            ),
            gold_configuration(
                ["rivers", country_word],
                [_table_state("river"), _dom("country", "name")],
            ),
            "rivers flowing through a country (m:n path)",
        )

        # Kind 5: "<continent> countries" — encompasses path. Sample from
        # the encompasses relation so the continent is guaranteed inhabited.
        continent_word = str(rng.choice(encompasses_rows)[1]).lower()
        add(
            "continent",
            index,
            f"{continent_word} countries",
            SelectQuery(
                tables=(
                    TableRef.of("continent"),
                    TableRef.of("country"),
                    TableRef.of("encompasses"),
                ),
                joins=(
                    JoinCondition(
                        "encompasses", "country_code", "country", "code"
                    ),
                    JoinCondition(
                        "encompasses", "continent_name", "continent", "name"
                    ),
                ),
                predicates=(
                    Predicate(
                        "continent", "name", Comparison.CONTAINS, continent_word
                    ),
                ),
                projection=(("country", "name"),),
            ),
            gold_configuration(
                [continent_word, "countries"],
                [_dom("continent", "name"), _table_state("country")],
            ),
            "countries on a continent",
        )

    return Workload("mondial", tuple(queries))
