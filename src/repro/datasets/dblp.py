"""Synthetic DBLP-like database: many instances, non-trivial schema.

Mirrors the paper's DBLP scenario (people, papers and a large m:n
authorship relation): ``person``, ``venue``, ``paper`` and ``author``
tables, with row counts that keep the m:n relation dominant — as in the
real collection, where "is author" holds more tuples than people and
papers combined.
"""

from __future__ import annotations

import random
from typing import Any

from repro.datasets import names
from repro.datasets.workload import (
    InstanceView,
    Workload,
    WorkloadQuery,
    gold_configuration,
    materialise,
)
from repro.db.database import Database
from repro.db.query import Comparison, JoinCondition, Predicate, SelectQuery, TableRef
from repro.db.schema import Column, ForeignKey, Schema, TableSchema
from repro.db.types import DataType
from repro.hmm.states import State, StateKind

__all__ = ["schema", "generate", "workload"]


def schema() -> Schema:
    """The DBLP-like bibliography schema."""
    person = TableSchema(
        name="person",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("name", DataType.TEXT, nullable=False),
        ),
        primary_key=("id",),
        synonyms=("people", "researcher"),
    )
    venue = TableSchema(
        name="venue",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("name", DataType.TEXT, nullable=False),
            Column("kind", DataType.TEXT, pattern=r"conference|journal"),
        ),
        primary_key=("id",),
        synonyms=("conference", "journal", "proceedings"),
    )
    paper = TableSchema(
        name="paper",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("title", DataType.TEXT, nullable=False),
            Column("year", DataType.INTEGER, pattern=r"(19|20)\d\d"),
            Column("venue_id", DataType.INTEGER, nullable=False),
        ),
        primary_key=("id",),
        synonyms=("article", "publication"),
    )
    author = TableSchema(
        name="author",
        columns=(
            Column("person_id", DataType.INTEGER, nullable=False),
            Column("paper_id", DataType.INTEGER, nullable=False),
            Column("position", DataType.INTEGER),
        ),
        primary_key=("person_id", "paper_id"),
        synonyms=("authorship", "writes"),
        description="The is-author m:n relation.",
    )
    return Schema(
        tables=[person, venue, paper, author],
        foreign_keys=[
            ForeignKey("paper", "venue_id", "venue", "id"),
            ForeignKey("author", "person_id", "person", "id"),
            ForeignKey("author", "paper_id", "paper", "id"),
        ],
        name="dblp",
    )


def generate(
    papers: int = 400,
    seed: int = 13,
    backend: str | None = None,
    **backend_options: Any,
):
    """Generate a deterministic instance with *papers* publications.

    With ``backend=None`` (default) returns the in-memory ``Database``;
    with a :data:`repro.storage.BACKENDS` name ("memory", "sqlite") the
    instance is loaded into that storage backend and the backend is
    returned (``backend_options`` are forwarded, e.g. ``path=``).
    """
    rng = random.Random(seed)
    db = Database(schema())

    person_count = max(30, (papers * 5) // 4)
    used_names: set[str] = set()
    for person_id in range(1, person_count + 1):
        name = names.full_name(rng)
        while name in used_names:
            name = names.full_name(rng)
        used_names.add(name)
        db.insert("person", {"id": person_id, "name": name})

    for venue_id, venue_name in enumerate(names.VENUE_NAMES, start=1):
        kind = "journal" if venue_name in ("TODS", "TKDE", "PVLDB") else "conference"
        db.insert("venue", {"id": venue_id, "name": venue_name, "kind": kind})

    for paper_id in range(1, papers + 1):
        qualifier = rng.choice(names.PAPER_QUALIFIERS)
        topic = rng.choice(names.PAPER_TOPICS)
        title = f"Towards {qualifier} {topic}"
        db.insert(
            "paper",
            {
                "id": paper_id,
                "title": title,
                "year": rng.randint(1995, 2023),
                "venue_id": rng.randint(1, len(names.VENUE_NAMES)),
            },
        )
        author_count = rng.randint(1, 5)
        for position, person_id in enumerate(
            rng.sample(range(1, person_count + 1), author_count), start=1
        ):
            db.insert(
                "author",
                {
                    "person_id": person_id,
                    "paper_id": paper_id,
                    "position": position,
                },
            )

    db.check_integrity()
    return materialise(db, backend, **backend_options)


# -- workload -----------------------------------------------------------------


def _dom(table: str, column: str) -> State:
    return State(StateKind.DOMAIN, table, column)


def _table_state(table: str) -> State:
    return State(StateKind.TABLE, table)


def workload(db: Any, queries_per_kind: int = 5, seed: int = 17) -> Workload:
    """A gold-annotated workload over the bibliography instance.

    *db* may be the in-memory database or any storage backend holding the
    generated instance; rows are read through :class:`InstanceView`.
    """
    view = InstanceView(db)
    rng = random.Random(seed)
    queries: list[WorkloadQuery] = []
    used: set[tuple[str, ...]] = set()
    paper_rows = view.rows("paper")

    def add(kind: str, index: int, text: str, gold: SelectQuery, config, desc: str) -> None:
        if config.keywords in used:
            return
        used.add(config.keywords)
        queries.append(
            WorkloadQuery(
                qid=f"dblp-{kind}-{index}",
                text=text,
                gold_query=gold,
                gold_configuration=config,
                description=desc,
            )
        )

    for index in range(queries_per_kind):
        paper = rng.choice(paper_rows)
        paper_id, title, year, venue_id = paper
        title_word = str(title).split()[-1].lower()

        authors = view.lookup("author", "paper_id", paper_id)
        person_row = view.get("person", authors[0][0])
        assert person_row is not None
        surname = str(person_row[1]).split()[-1].lower()

        venue_row = view.get("venue", venue_id)
        assert venue_row is not None
        venue_word = str(venue_row[1]).split()[0].lower()

        # Kind 1: "<surname> papers" — person -> author -> paper.
        add(
            "author",
            index,
            f"{surname} papers",
            SelectQuery(
                tables=(
                    TableRef.of("author"),
                    TableRef.of("paper"),
                    TableRef.of("person"),
                ),
                joins=(
                    JoinCondition("author", "person_id", "person", "id"),
                    JoinCondition("author", "paper_id", "paper", "id"),
                ),
                predicates=(
                    Predicate("person", "name", Comparison.CONTAINS, surname),
                ),
                projection=(("paper", "title"), ("person", "name")),
            ),
            gold_configuration(
                [surname, "papers"],
                [_dom("person", "name"), _table_state("paper")],
            ),
            "publications of an author (m:n path)",
        )

        # Kind 2: "<title word> <year>" — single-table paper lookup.
        add(
            "title-year",
            index,
            f"{title_word} {year}",
            SelectQuery(
                tables=(TableRef.of("paper"),),
                predicates=(
                    Predicate("paper", "title", Comparison.CONTAINS, title_word),
                    Predicate("paper", "year", Comparison.CONTAINS, str(year)),
                ),
                projection=(("paper", "title"), ("paper", "year")),
            ),
            gold_configuration(
                [title_word, str(year)],
                [_dom("paper", "title"), _dom("paper", "year")],
            ),
            "paper by topic word and year",
        )

        # Kind 3: "<venue> papers <year>" — paper -> venue join.
        add(
            "venue-year",
            index,
            f"{venue_word} papers {year}",
            SelectQuery(
                tables=(TableRef.of("paper"), TableRef.of("venue")),
                joins=(JoinCondition("paper", "venue_id", "venue", "id"),),
                predicates=(
                    Predicate("venue", "name", Comparison.CONTAINS, venue_word),
                    Predicate("paper", "year", Comparison.CONTAINS, str(year)),
                ),
                projection=(("paper", "title"), ("venue", "name")),
            ),
            gold_configuration(
                [venue_word, "papers", str(year)],
                [_dom("venue", "name"), _table_state("paper"), _dom("paper", "year")],
            ),
            "papers at a venue in a given year",
        )

        # Kind 4: "<surname> <venue>" — the four-table chain.
        add(
            "author-venue",
            index,
            f"{surname} {venue_word}",
            SelectQuery(
                tables=(
                    TableRef.of("author"),
                    TableRef.of("paper"),
                    TableRef.of("person"),
                    TableRef.of("venue"),
                ),
                joins=(
                    JoinCondition("author", "person_id", "person", "id"),
                    JoinCondition("author", "paper_id", "paper", "id"),
                    JoinCondition("paper", "venue_id", "venue", "id"),
                ),
                predicates=(
                    Predicate("person", "name", Comparison.CONTAINS, surname),
                    Predicate("venue", "name", Comparison.CONTAINS, venue_word),
                ),
                projection=(("paper", "title"),),
            ),
            gold_configuration(
                [surname, venue_word],
                [_dom("person", "name"), _dom("venue", "name")],
            ),
            "author's papers at a venue: person-author-paper-venue chain",
        )

    return Workload("dblp", tuple(queries))
