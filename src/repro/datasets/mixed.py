"""Seeded mixed read/write workloads for the live-mutation tier.

The durability work (journal, delta postings, atomic republish) is only
worth its complexity if search latency holds up *while writers churn* —
so the chaos suite and ``benchmarks/regression.py``'s ``mixed_workload``
section replay deterministic interleavings of searches, batched inserts
and batched deletes against one backend.

Three profiles, named for the workloads they caricature:

========== ============= ==============================================
profile    reads/writes  shape
========== ============= ==============================================
ecommerce  85 / 15       browse-heavy storefront: mostly searches, a
                         steady trickle of catalogue updates.
oltp       40 / 60       write-dominated transactional system; the
                         delta buffer and merge cadence carry the load.
analytics  99 / 1        near-read-only reporting; writes are rare
                         corrections.
========== ============= ==============================================

Every ``add`` op carries a *probe* keyword that exists nowhere in the
seed data and lands in a text column of every inserted row. Searching
for the probe immediately after applying the op is therefore a **fresh
read** — it can only be answered by the delta layer, never by the sealed
snapshot — which is exactly the latency the benchmark wants to watch.
Deletes only target rows a previous ``add`` op in the same workload
inserted, so seed data survives and replaying any prefix of the op list
is always valid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable

from repro.db.types import DataType
from repro.errors import QuestError

__all__ = [
    "MixedOp",
    "MixedProfile",
    "PROFILES",
    "apply_op",
    "generate_ops",
    "write_ops",
]


@dataclass(frozen=True)
class MixedOp:
    """One step of a mixed workload.

    Attributes:
        kind: ``"search"``, ``"add"`` or ``"delete"``.
        query: the keyword query text (search ops only).
        table: the mutated table (write ops only).
        rows: full row tuples to insert (add ops only).
        keys: primary keys to delete (delete ops only).
        probe: a keyword unique to this op's inserted rows (add ops
            only) — search it after applying to measure a fresh read.
    """

    kind: str
    query: str = ""
    table: str = ""
    rows: tuple[tuple, ...] = ()
    keys: tuple[tuple, ...] = ()
    probe: str = ""


@dataclass(frozen=True)
class MixedProfile:
    """A read/write mix.

    Attributes:
        name: profile key in :data:`PROFILES`.
        read_fraction: probability an op is a search.
        delete_fraction: probability a *write* op is a delete (adds get
            the rest); deletes are silently turned into adds while
            nothing this workload inserted is left to delete.
    """

    name: str
    read_fraction: float
    delete_fraction: float


PROFILES: dict[str, MixedProfile] = {
    "ecommerce": MixedProfile("ecommerce", read_fraction=0.85, delete_fraction=0.3),
    "oltp": MixedProfile("oltp", read_fraction=0.40, delete_fraction=0.3),
    "analytics": MixedProfile("analytics", read_fraction=0.99, delete_fraction=0.2),
}


def _keyword_pool(db: Any, limit: int = 200) -> list[str]:
    """Deterministic sample of single tokens present in *db* text columns."""
    from repro.db.fulltext import tokenize_value

    pool: list[str] = []
    seen: set[str] = set()
    for table in db.tables:
        text_positions = [
            i
            for i, column in enumerate(table.schema.columns)
            if column.dtype is DataType.TEXT
        ]
        for row in table.rows:
            for position in text_positions:
                for token in tokenize_value(row[position]):
                    if token not in seen and len(token) >= 3:
                        seen.add(token)
                        pool.append(token)
            if len(pool) >= limit:
                break
        if len(pool) >= limit:
            break
    if not pool:
        raise QuestError("database has no text tokens to build queries from")
    return pool


def _fresh_row(
    table: Any, pk_counter: int, probe: str, words: list[str], rng: random.Random
) -> tuple:
    """A new valid row for *table* whose text fields contain *probe*."""
    values: list[Any] = []
    primary = set(table.schema.primary_key)
    probe_planted = False
    for column in table.schema.columns:
        if column.name in primary:
            if column.dtype is DataType.TEXT:
                values.append(f"{probe}-{pk_counter}")
                probe_planted = True
            else:
                values.append(pk_counter)
            continue
        if column.dtype is DataType.TEXT:
            values.append(f"{rng.choice(words)} {probe}")
            probe_planted = True
        elif column.dtype is DataType.INTEGER:
            values.append(rng.randrange(1, 1_000_000))
        elif column.dtype is DataType.FLOAT:
            values.append(round(rng.uniform(1.0, 10_000.0), 2))
        elif column.dtype is DataType.BOOLEAN:
            values.append(bool(rng.getrandbits(1)))
        else:  # DATE — deterministic, schema-agnostic
            values.append(None if column.nullable else "2001-01-01")
    if not probe_planted:
        raise QuestError(
            f"table {table.name!r} has no text column to carry a probe keyword"
        )
    return tuple(values)


def generate_ops(
    db: Any,
    count: int,
    profile: str = "ecommerce",
    seed: int = 11,
    table: str | None = None,
    batch: int = 4,
) -> list[MixedOp]:
    """A deterministic *count*-op mixed workload against *db*.

    Args:
        db: the seed :class:`~repro.db.database.Database` (only read —
            generation never mutates it).
        count: ops to generate.
        profile: a :data:`PROFILES` key.
        seed: RNG seed; same (db, args) → identical op list.
        table: the table write ops target; defaults to the first table
            with a non-text primary key and at least one text column.
        batch: rows per add op (deletes use up to the same batch size).
    """
    try:
        mix = PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise QuestError(
            f"unknown mixed-workload profile {profile!r} (known: {known})"
        ) from None
    rng = random.Random(seed)
    pool = _keyword_pool(db)
    target = db.table(table) if table is not None else _default_target(db)
    key_positions = [
        target.column_position(name) for name in target.schema.primary_key
    ]

    # PK allocation starts past everything the seed holds, so generated
    # adds can never collide with seed rows (or each other).
    pk_counter = _max_int_pk(target, key_positions) + 1

    ops: list[MixedOp] = []
    live_keys: list[tuple] = []  # keys inserted by this workload, not yet deleted
    probe_counter = 0
    for _ in range(count):
        roll = rng.random()
        if roll < mix.read_fraction:
            k = rng.randint(1, 3)
            ops.append(MixedOp(kind="search", query=" ".join(rng.sample(pool, k))))
            continue
        if live_keys and rng.random() < mix.delete_fraction:
            take = min(len(live_keys), rng.randint(1, batch))
            keys = tuple(live_keys.pop(rng.randrange(len(live_keys))) for _ in range(take))
            ops.append(MixedOp(kind="delete", table=target.name, keys=keys))
            continue
        probe_counter += 1
        probe = f"probe{seed}x{probe_counter}"
        rows = []
        for _ in range(batch):
            row = _fresh_row(target, pk_counter, probe, pool, rng)
            pk_counter += 1
            rows.append(row)
            live_keys.append(tuple(row[p] for p in key_positions))
        ops.append(
            MixedOp(kind="add", table=target.name, rows=tuple(rows), probe=probe)
        )
    return ops


def _default_target(db: Any) -> Any:
    for table in db.tables:
        has_text = any(
            column.dtype is DataType.TEXT
            and column.name not in table.schema.primary_key
            for column in table.schema.columns
        )
        if has_text:
            return table
    raise QuestError("no table with a non-key text column to mutate")


def _max_int_pk(table: Any, key_positions: list[int]) -> int:
    top = 0
    for row in table.rows:
        for position in key_positions:
            value = row[position]
            if isinstance(value, int) and value > top:
                top = value
    return top


def apply_op(backend: Any, op: MixedOp) -> None:
    """Apply one *write* op to *backend* (searches are the caller's job:
    the interesting part — which engine, what to time — is theirs)."""
    if op.kind == "add":
        backend.add_rows(op.table, [list(row) for row in op.rows])
    elif op.kind == "delete":
        backend.delete_rows(op.table, [list(key) for key in op.keys])
    else:
        raise QuestError(f"apply_op only applies writes, got {op.kind!r}")


def write_ops(ops: Iterable[MixedOp]) -> list[MixedOp]:
    """Just the mutation ops of a workload, in order."""
    return [op for op in ops if op.kind != "search"]
