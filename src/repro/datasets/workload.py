"""Workload model: keyword queries with gold-standard answers.

A workload query couples the raw keyword text with (a) the gold SQL query —
what a domain expert would have written — and (b) the gold *configuration* —
the keyword-to-term mapping the user "had in mind", which doubles as
supervised training data for the feedback mode.

Workload *generators* sample gold queries from a loaded instance. They
read rows through :class:`InstanceView`, which serves any storage — a
plain :class:`~repro.db.database.Database` or a backend from
:mod:`repro.storage` — so the same gold workload can be derived from
whichever engine holds the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.configuration import Configuration, KeywordMapping
from repro.db.query import SelectQuery
from repro.db.table import Row
from repro.errors import WorkloadError
from repro.hmm.states import State
from repro.semantics.tokenize import tokenize_query

__all__ = [
    "InstanceView",
    "WorkloadQuery",
    "Workload",
    "gold_configuration",
    "materialise",
]


class InstanceView:
    """Read-only row access for workload generators, storage-agnostic.

    Wraps anything exposing ``schema`` and ``table_rows(name)`` (both
    ``Database`` and every ``StorageBackend`` do) and adds primary-key
    point lookups through a locally built index, so generators need no
    backend-specific lookup surface.
    """

    def __init__(self, source: Any) -> None:
        self.schema = source.schema
        self._source = source
        self._pk_indexes: dict[str, dict[tuple, Row]] = {}
        self._value_indexes: dict[tuple[str, str], dict[Any, list[Row]]] = {}

    def rows(self, table: str) -> list[Row]:
        """All rows of *table*, in insertion order."""
        return self._source.table_rows(table)

    def get(self, table: str, key: tuple | Any) -> Row | None:
        """Point lookup by primary key; scalar keys may be passed bare."""
        if not isinstance(key, tuple):
            key = (key,)
        index = self._pk_indexes.get(table)
        if index is None:
            table_schema = self.schema.table(table)
            positions = [
                table_schema.column_names.index(name)
                for name in table_schema.primary_key
            ]
            index = {
                tuple(row[p] for p in positions): row for row in self.rows(table)
            }
            self._pk_indexes[table] = index
        return index.get(key)

    def lookup(self, table: str, column: str, value: Any) -> list[Row]:
        """All rows of *table* whose *column* equals *value*."""
        index = self._value_indexes.get((table, column))
        if index is None:
            position = self.schema.table(table).column_names.index(column)
            index = {}
            for row in self.rows(table):
                index.setdefault(row[position], []).append(row)
            self._value_indexes[(table, column)] = index
        return index.get(value, [])


def materialise(db: Any, backend: str | None, **backend_options: Any) -> Any:
    """Return *db* as-is, or loaded into the named storage backend.

    Dataset generators funnel their ``backend=`` parameter through here:
    ``None`` keeps the historical ``Database`` return type, a backend
    name ("memory", "sqlite") returns the instance behind that engine.
    """
    if backend is None:
        return db
    from repro.storage import create_backend

    return create_backend(backend, db, **backend_options)


def gold_configuration(
    keywords: list[str] | tuple[str, ...], states: list[State] | tuple[State, ...]
) -> Configuration:
    """Build a gold configuration from parallel keyword/state lists."""
    if len(keywords) != len(states):
        raise WorkloadError("keyword and state lists differ in length")
    mappings = tuple(
        KeywordMapping(keyword, state) for keyword, state in zip(keywords, states)
    )
    return Configuration(mappings, score=1.0)


@dataclass(frozen=True)
class WorkloadQuery:
    """One benchmark query with its gold answers."""

    qid: str
    text: str
    gold_query: SelectQuery
    gold_configuration: Configuration
    description: str = ""

    def __post_init__(self) -> None:
        keywords = tuple(tokenize_query(self.text))
        if keywords != self.gold_configuration.keywords:
            raise WorkloadError(
                f"{self.qid}: tokenised text {keywords} does not match gold "
                f"configuration keywords {self.gold_configuration.keywords}"
            )

    @property
    def keywords(self) -> tuple[str, ...]:
        """The tokenised keywords (identical to the gold configuration's)."""
        return self.gold_configuration.keywords


@dataclass(frozen=True)
class Workload:
    """A named collection of workload queries over one dataset."""

    name: str
    queries: tuple[WorkloadQuery, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for query in self.queries:
            if query.qid in seen:
                raise WorkloadError(f"duplicate query id: {query.qid}")
            seen.add(query.qid)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def subset(self, count: int) -> "Workload":
        """The first *count* queries (for quick benchmark variants)."""
        return Workload(self.name, self.queries[:count])

    def gold_training_pairs(
        self,
    ) -> dict[tuple[str, ...], Configuration]:
        """Keyword tuple -> gold configuration (for the simulated user)."""
        return {q.keywords: q.gold_configuration for q in self.queries}
