"""Workload model: keyword queries with gold-standard answers.

A workload query couples the raw keyword text with (a) the gold SQL query —
what a domain expert would have written — and (b) the gold *configuration* —
the keyword-to-term mapping the user "had in mind", which doubles as
supervised training data for the feedback mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration, KeywordMapping
from repro.db.query import SelectQuery
from repro.errors import WorkloadError
from repro.hmm.states import State
from repro.semantics.tokenize import tokenize_query

__all__ = ["WorkloadQuery", "Workload", "gold_configuration"]


def gold_configuration(
    keywords: list[str] | tuple[str, ...], states: list[State] | tuple[State, ...]
) -> Configuration:
    """Build a gold configuration from parallel keyword/state lists."""
    if len(keywords) != len(states):
        raise WorkloadError("keyword and state lists differ in length")
    mappings = tuple(
        KeywordMapping(keyword, state) for keyword, state in zip(keywords, states)
    )
    return Configuration(mappings, score=1.0)


@dataclass(frozen=True)
class WorkloadQuery:
    """One benchmark query with its gold answers."""

    qid: str
    text: str
    gold_query: SelectQuery
    gold_configuration: Configuration
    description: str = ""

    def __post_init__(self) -> None:
        keywords = tuple(tokenize_query(self.text))
        if keywords != self.gold_configuration.keywords:
            raise WorkloadError(
                f"{self.qid}: tokenised text {keywords} does not match gold "
                f"configuration keywords {self.gold_configuration.keywords}"
            )

    @property
    def keywords(self) -> tuple[str, ...]:
        """The tokenised keywords (identical to the gold configuration's)."""
        return self.gold_configuration.keywords


@dataclass(frozen=True)
class Workload:
    """A named collection of workload queries over one dataset."""

    name: str
    queries: tuple[WorkloadQuery, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for query in self.queries:
            if query.qid in seen:
                raise WorkloadError(f"duplicate query id: {query.qid}")
            seen.add(query.qid)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def subset(self, count: int) -> "Workload":
        """The first *count* queries (for quick benchmark variants)."""
        return Workload(self.name, self.queries[:count])

    def gold_training_pairs(
        self,
    ) -> dict[tuple[str, ...], Configuration]:
        """Keyword tuple -> gold configuration (for the simulated user)."""
        return {q.keywords: q.gold_configuration for q in self.queries}
