"""Synthetic IMDB-like database: simple star schema, many instances.

The paper demonstrates QUEST on IMDB as the "simple schema / millions of
instances" scenario. The generator reproduces that regime at configurable
scale: a ``movie`` fact table with foreign keys into ``person`` (director),
``genre`` and ``company`` dimensions, plus a ``casting`` m:n relation that
introduces the classic director-vs-actor join-path ambiguity.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.configuration import Configuration
from repro.datasets import names
from repro.datasets.workload import (
    InstanceView,
    Workload,
    WorkloadQuery,
    gold_configuration,
    materialise,
)
from repro.db.database import Database
from repro.db.query import Comparison, JoinCondition, Predicate, SelectQuery, TableRef
from repro.db.schema import Column, ForeignKey, Schema, TableSchema
from repro.db.types import DataType
from repro.hmm.states import State, StateKind

__all__ = ["schema", "generate", "workload"]


def schema() -> Schema:
    """The IMDB-like star schema (with search-friendly synonyms)."""
    person = TableSchema(
        name="person",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("name", DataType.TEXT, nullable=False),
            Column("birth_year", DataType.INTEGER, pattern=r"(18|19|20)\d\d"),
        ),
        primary_key=("id",),
        synonyms=("people", "director", "filmmaker"),
        description="Directors and cast members.",
    )
    genre = TableSchema(
        name="genre",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("label", DataType.TEXT, nullable=False, synonyms=("category",)),
        ),
        primary_key=("id",),
        synonyms=("category",),
    )
    company = TableSchema(
        name="company",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("name", DataType.TEXT, nullable=False),
            Column("country", DataType.TEXT),
        ),
        primary_key=("id",),
        synonyms=("studio", "producer"),
    )
    movie = TableSchema(
        name="movie",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("title", DataType.TEXT, nullable=False),
            Column("year", DataType.INTEGER, pattern=r"(19|20)\d\d"),
            Column("rating", DataType.FLOAT),
            Column("director_id", DataType.INTEGER, nullable=False),
            Column("genre_id", DataType.INTEGER, nullable=False),
            Column("company_id", DataType.INTEGER, nullable=False),
        ),
        primary_key=("id",),
        synonyms=("film", "picture"),
    )
    casting = TableSchema(
        name="casting",
        columns=(
            Column("movie_id", DataType.INTEGER, nullable=False),
            Column("person_id", DataType.INTEGER, nullable=False),
            Column("character", DataType.TEXT),
            Column("position", DataType.INTEGER),
        ),
        primary_key=("movie_id", "person_id"),
        synonyms=("cast", "actor", "actress", "starring"),
        description="Who acted in what, with billing position.",
    )
    return Schema(
        tables=[person, genre, company, movie, casting],
        foreign_keys=[
            ForeignKey("movie", "director_id", "person", "id"),
            ForeignKey("movie", "genre_id", "genre", "id"),
            ForeignKey("movie", "company_id", "company", "id"),
            ForeignKey("casting", "movie_id", "movie", "id"),
            ForeignKey("casting", "person_id", "person", "id"),
        ],
        name="imdb",
    )


#: Anchor rows present in every generated instance, so examples and docs
#: can query "kubrick movies" regardless of scale and seed. Person 1
#: directed movie 1; person 2 appears in its cast — the canonical
#: director-vs-actor join-path ambiguity.
_ANCHOR_PEOPLE = ("Stanley Kubrick", "Ridley Scott")
_ANCHOR_MOVIE_TITLE = "The Silent Odyssey"
_ANCHOR_MOVIE_YEAR = 1968


def generate(
    movies: int = 300,
    seed: int = 7,
    backend: str | None = None,
    **backend_options: Any,
):
    """Generate a deterministic instance with *movies* fact rows.

    With ``backend=None`` (default) returns the in-memory ``Database``;
    with a :data:`repro.storage.BACKENDS` name ("memory", "sqlite") the
    instance is loaded into that storage backend and the backend is
    returned (``backend_options`` are forwarded, e.g. ``path=``).
    """
    if movies < 1:
        raise ValueError("need at least one movie")
    rng = random.Random(seed)
    db = Database(schema())

    person_count = max(20, movies // 2)
    used_names: set[str] = set(_ANCHOR_PEOPLE)
    for person_id, name in enumerate(_ANCHOR_PEOPLE, start=1):
        db.insert(
            "person",
            {"id": person_id, "name": name, "birth_year": 1928 + person_id},
        )
    for person_id in range(len(_ANCHOR_PEOPLE) + 1, person_count + 1):
        name = names.full_name(rng)
        while name in used_names:
            name = names.full_name(rng)
        used_names.add(name)
        db.insert(
            "person",
            {
                "id": person_id,
                "name": name,
                "birth_year": rng.randint(1920, 1999),
            },
        )

    for genre_id, label in enumerate(names.GENRES, start=1):
        db.insert("genre", {"id": genre_id, "label": label})

    company_count = min(len(names.COMPANY_WORDS), max(3, movies // 50))
    for company_id in range(1, company_count + 1):
        db.insert(
            "company",
            {
                "id": company_id,
                "name": f"{names.COMPANY_WORDS[company_id - 1]} Pictures",
                "country": rng.choice(names.COUNTRY_NAMES),
            },
        )

    used_titles: set[str] = {_ANCHOR_MOVIE_TITLE}
    for movie_id in range(1, movies + 1):
        if movie_id == 1:
            title = _ANCHOR_MOVIE_TITLE
            year = _ANCHOR_MOVIE_YEAR
            director_id = 1  # Kubrick
            genre_id = 1  # scifi
        else:
            title = (
                f"The {rng.choice(names.TITLE_ADJECTIVES)} "
                f"{rng.choice(names.TITLE_NOUNS)}"
            )
            if title in used_titles:
                title = f"{title} {rng.randint(2, 9)}"
            used_titles.add(title)
            year = rng.randint(1950, 2023)
            director_id = rng.randint(1, person_count)
            genre_id = rng.randint(1, len(names.GENRES))
        db.insert(
            "movie",
            {
                "id": movie_id,
                "title": title,
                "year": year,
                "rating": round(rng.uniform(3.0, 9.5), 1),
                "director_id": director_id,
                "genre_id": genre_id,
                "company_id": rng.randint(1, company_count),
            },
        )
        cast_size = rng.randint(1, 4)
        cast = rng.sample(range(1, person_count + 1), cast_size)
        if movie_id == 1 and 2 not in cast:
            cast[0] = 2  # Scott stars in the anchor movie
        for position, person_id in enumerate(cast, start=1):
            db.insert(
                "casting",
                {
                    "movie_id": movie_id,
                    "person_id": person_id,
                    "character": rng.choice(names.ROLE_NAMES),
                    "position": position,
                },
            )

    db.check_integrity()
    return materialise(db, backend, **backend_options)


# -- workload -----------------------------------------------------------------


def _table_state(table: str) -> State:
    return State(StateKind.TABLE, table)


def _attr(table: str, column: str) -> State:
    return State(StateKind.ATTRIBUTE, table, column)


def _dom(table: str, column: str) -> State:
    return State(StateKind.DOMAIN, table, column)


def _surname_of(view: InstanceView, person_id: int) -> str:
    row = view.get("person", person_id)
    assert row is not None
    return str(row[1]).split()[-1].lower()


def _director_query(surname: str) -> SelectQuery:
    return SelectQuery(
        tables=(TableRef.of("movie"), TableRef.of("person")),
        joins=(JoinCondition("movie", "director_id", "person", "id"),),
        predicates=(Predicate("person", "name", Comparison.CONTAINS, surname),),
        projection=(("movie", "title"), ("person", "name")),
    )


def workload(db: Any, queries_per_kind: int = 5, seed: int = 11) -> Workload:
    """A gold-annotated keyword workload sampled from the instance.

    Five query kinds cover the demo's talking points: director joins,
    single-table selections, genre+director three-table joins, actor joins
    through the m:n relation, and company joins. *db* may be the
    in-memory database or any storage backend holding the instance.
    """
    view = InstanceView(db)
    rng = random.Random(seed)
    queries: list[WorkloadQuery] = []
    used_keywords: set[tuple[str, ...]] = set()

    def add(
        kind: str,
        index: int,
        text: str,
        gold_query: SelectQuery,
        configuration: Configuration,
        description: str,
    ) -> None:
        key = configuration.keywords
        if key in used_keywords:
            return
        used_keywords.add(key)
        queries.append(
            WorkloadQuery(
                qid=f"imdb-{kind}-{index}",
                text=text,
                gold_query=gold_query,
                gold_configuration=configuration,
                description=description,
            )
        )

    movie_rows = view.rows("movie")

    for index in range(queries_per_kind):
        movie = rng.choice(movie_rows)
        movie_id, title, year, _rating, director_id, genre_id, _company_id = movie

        # Kind 1: "<director surname> movies" — the canonical join query.
        surname = _surname_of(view, director_id)
        add(
            "director",
            index,
            f"{surname} movies",
            _director_query(surname),
            gold_configuration(
                [surname, "movies"],
                [_dom("person", "name"), _table_state("movie")],
            ),
            "movies directed by a person, matched by surname",
        )

        # Kind 2: "<title word> <year>" — single-table, two predicates.
        # Use the last *alphabetic* word: title de-duplication may append a
        # digit, which would collide with years and ratings in full text.
        title_words = [w for w in str(title).split() if w.isalpha()]
        title_word = title_words[-1].lower()
        year_word = str(year)
        add(
            "title-year",
            index,
            f"{title_word} {year_word}",
            SelectQuery(
                tables=(TableRef.of("movie"),),
                predicates=(
                    Predicate("movie", "title", Comparison.CONTAINS, title_word),
                    Predicate("movie", "year", Comparison.CONTAINS, year_word),
                ),
                projection=(("movie", "title"), ("movie", "year")),
            ),
            gold_configuration(
                [title_word, year_word],
                [_dom("movie", "title"), _dom("movie", "year")],
            ),
            "a movie pinned down by a title word and its release year",
        )

        # Kind 3: "<genre> films <director surname>" — three tables.
        genre_row = view.get("genre", genre_id)
        assert genre_row is not None
        genre_label = str(genre_row[1]).lower()
        add(
            "genre-director",
            index,
            f"{genre_label} films {surname}",
            SelectQuery(
                tables=(
                    TableRef.of("genre"),
                    TableRef.of("movie"),
                    TableRef.of("person"),
                ),
                joins=(
                    JoinCondition("movie", "genre_id", "genre", "id"),
                    JoinCondition("movie", "director_id", "person", "id"),
                ),
                predicates=(
                    Predicate("genre", "label", Comparison.CONTAINS, genre_label),
                    Predicate("person", "name", Comparison.CONTAINS, surname),
                ),
                projection=(("movie", "title"),),
            ),
            gold_configuration(
                [genre_label, "films", surname],
                [
                    _dom("genre", "label"),
                    _table_state("movie"),
                    _dom("person", "name"),
                ],
            ),
            "genre + director three-table join",
        )

        # Kind 4: "cast <title word>" — the m:n path through casting.
        add(
            "cast",
            index,
            f"cast {title_word}",
            SelectQuery(
                tables=(
                    TableRef.of("casting"),
                    TableRef.of("movie"),
                ),
                joins=(JoinCondition("casting", "movie_id", "movie", "id"),),
                predicates=(
                    Predicate("movie", "title", Comparison.CONTAINS, title_word),
                ),
                projection=(("casting", "character"), ("movie", "title")),
            ),
            gold_configuration(
                ["cast", title_word],
                [_table_state("casting"), _dom("movie", "title")],
            ),
            "cast list of a movie: forces the join through the m:n table",
        )

        # Kind 5: "movies <company word>" — movie-to-company join.
        company_row = view.get("company", movie[6])
        assert company_row is not None
        company_word = str(company_row[1]).split()[0].lower()
        add(
            "company",
            index,
            f"movies {company_word}",
            SelectQuery(
                tables=(TableRef.of("company"), TableRef.of("movie")),
                joins=(JoinCondition("movie", "company_id", "company", "id"),),
                predicates=(
                    Predicate("company", "name", Comparison.CONTAINS, company_word),
                ),
                projection=(("movie", "title"), ("company", "name")),
            ),
            gold_configuration(
                ["movies", company_word],
                [_table_state("movie"), _dom("company", "name")],
            ),
            "movies produced by a studio",
        )

    return Workload("imdb", tuple(queries))
