"""Synthetic datasets reproducing the paper's three demo scenarios.

IMDB (simple star schema, many instances), DBLP (large m:n authorship,
non-trivial schema) and Mondial (complex geographic schema, few instances),
each with deterministic generators and gold-annotated keyword workloads.
"""

from repro.datasets import dblp, imdb, mondial
from repro.datasets.workload import (
    InstanceView,
    Workload,
    WorkloadQuery,
    gold_configuration,
    materialise,
)

__all__ = [
    "InstanceView",
    "Workload",
    "WorkloadQuery",
    "dblp",
    "gold_configuration",
    "imdb",
    "materialise",
    "mondial",
]
