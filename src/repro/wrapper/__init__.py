"""Source wrappers: the engine's only gateway to data sources.

Full-access wrappers use full-text indexes and the executor directly;
hidden-source wrappers (Deep Web) rely on regular expressions, schema
annotations, metadata and an ontology, optionally executing final SQL
through a simulated endpoint.
"""

from repro.wrapper.annotations import (
    AnnotationSet,
    ColumnAnnotation,
    annotate_schema,
)
from repro.wrapper.base import SourceWrapper
from repro.wrapper.full import FullAccessWrapper
from repro.wrapper.hidden import HiddenSourceWrapper
from repro.wrapper.ontology import SchemaOntology

__all__ = [
    "AnnotationSet",
    "ColumnAnnotation",
    "FullAccessWrapper",
    "HiddenSourceWrapper",
    "SchemaOntology",
    "SourceWrapper",
    "annotate_schema",
]
