"""Schema enrichment: attaching annotations to an existing schema.

When full-text indexes cannot be instantiated, "the user is supported in
the definition of a schema enriched with the specification, for each
attribute, of metadata such as data-type, and regular expression of
admissible values". This module applies such annotation overlays, producing
a new enriched :class:`~repro.db.schema.Schema` (schemas are immutable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.schema import Column, ForeignKey, Schema, TableSchema

__all__ = ["ColumnAnnotation", "AnnotationSet", "annotate_schema"]


@dataclass(frozen=True)
class ColumnAnnotation:
    """Extra metadata for one column.

    Attributes:
        synonyms: alternative human names, merged with existing ones.
        pattern: regular expression of admissible values (replaces any
            declared pattern when given).
        description: free-text documentation (replaces when given).
    """

    synonyms: tuple[str, ...] = ()
    pattern: str | None = None
    description: str | None = None


@dataclass(frozen=True)
class AnnotationSet:
    """A bundle of annotations keyed by table and column name."""

    table_synonyms: dict[str, tuple[str, ...]] = field(default_factory=dict)
    columns: dict[tuple[str, str], ColumnAnnotation] = field(default_factory=dict)

    def for_column(self, table: str, column: str) -> ColumnAnnotation | None:
        """The annotation for ``table.column``, if any."""
        return self.columns.get((table, column))


def annotate_schema(schema: Schema, annotations: AnnotationSet) -> Schema:
    """Return a new schema with *annotations* merged in."""
    tables: list[TableSchema] = []
    for table in schema.tables:
        columns: list[Column] = []
        for column in table.columns:
            annotation = annotations.for_column(table.name, column.name)
            if annotation is None:
                columns.append(column)
                continue
            merged_synonyms = tuple(
                dict.fromkeys(column.synonyms + annotation.synonyms)
            )
            columns.append(
                Column(
                    name=column.name,
                    dtype=column.dtype,
                    nullable=column.nullable,
                    synonyms=merged_synonyms,
                    pattern=(
                        annotation.pattern
                        if annotation.pattern is not None
                        else column.pattern
                    ),
                    description=(
                        annotation.description
                        if annotation.description is not None
                        else column.description
                    ),
                )
            )
        extra_table_synonyms = annotations.table_synonyms.get(table.name, ())
        merged_table_synonyms = tuple(
            dict.fromkeys(table.synonyms + tuple(extra_table_synonyms))
        )
        tables.append(
            TableSchema(
                name=table.name,
                columns=tuple(columns),
                primary_key=table.primary_key,
                synonyms=merged_table_synonyms,
                description=table.description,
            )
        )
    foreign_keys = tuple(
        ForeignKey(fk.table, fk.column, fk.ref_table, fk.ref_column)
        for fk in schema.foreign_keys
    )
    return Schema(tables, foreign_keys, name=schema.name)
