"""The source-wrapper contract.

QUEST is "conceived as a tool working on top of a traditional DBMS" but
does not rely on a specific implementation of the keyword-ranking function:
a wrapper mediates every interaction with the data source. Two concrete
wrappers exist — full access (owned databases) and hidden access (Deep Web
endpoints) — and the whole engine is written against this interface, which
is what makes the hidden-source mode possible at all.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.db.catalog import Catalog
from repro.db.executor import ResultSet
from repro.db.query import SelectQuery
from repro.db.schema import Schema
from repro.hmm.states import StateSpace

__all__ = ["SourceWrapper"]


class SourceWrapper(abc.ABC):
    """Mediates every engine interaction with one data source.

    Concrete wrappers must provide keyword-vs-state emission scores (the
    paper's attribute-ranking function), query execution (running the
    generated SQL) and a catalog. Instance-dependent capabilities are
    discoverable through :attr:`has_instance_access` so the engine can
    degrade gracefully on hidden sources.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    # -- capabilities --------------------------------------------------------

    @property
    @abc.abstractmethod
    def has_instance_access(self) -> bool:
        """Whether setup-phase instance reads (indexes, statistics) exist."""

    @property
    @abc.abstractmethod
    def catalog(self) -> Catalog:
        """The source catalog (schema-only for hidden sources)."""

    # -- the attribute-ranking function ---------------------------------------

    @abc.abstractmethod
    def emission_scores(self, keyword: str, states: StateSpace) -> np.ndarray:
        """Relevance of *keyword* for every HMM state (non-negative).

        This is QUEST's "function that, given a keyword and the database
        attributes, ranks the attribute values on the basis of their
        importance", lifted to the full state space: DOMAIN states are
        scored against attribute *contents* (full-text or shape evidence),
        TABLE/ATTRIBUTE states against schema *names* (semantic evidence).
        """

    # -- query execution --------------------------------------------------------

    @abc.abstractmethod
    def execute(self, query: SelectQuery) -> ResultSet:
        """Run a generated SQL query and return its results.

        Hidden sources answer through their endpoint; wrappers with no
        endpoint at all raise :class:`~repro.errors.AccessDeniedError`.
        """

    def result_count(self, query: SelectQuery) -> int:
        """Number of rows *query* yields (default: execute and count)."""
        return len(self.execute(query))

    def __repr__(self) -> str:
        access = "full" if self.has_instance_access else "hidden"
        return f"{type(self).__name__}({self.schema.name!r}, access={access})"
