"""The source-wrapper contract.

QUEST is "conceived as a tool working on top of a traditional DBMS" but
does not rely on a specific implementation of the keyword-ranking function:
a wrapper mediates every interaction with the data source. Two concrete
wrappers exist — full access (owned databases) and hidden access (Deep Web
sources) — and the whole engine is written against this interface, which
is what makes the hidden-source mode possible at all.

Emission scoring is the per-keyword hot path of the forward step, and the
score vector for a keyword depends only on the keyword and the (static)
source — so the base class caches it: ``emission_scores`` is a concrete
method that serves repeated keywords from a thread-safe LRU cache shared
by every engine bound to the wrapper, and concrete wrappers implement the
``compute_emission_scores`` hook instead. Cache hit/miss counters surface
per query in the pipeline's ``SearchTrace``.
"""

from __future__ import annotations

import abc
import threading
from typing import Sequence

import numpy as np

from repro.db.catalog import Catalog
from repro.db.executor import ResultSet
from repro.db.query import SelectQuery
from repro.db.schema import Schema
from repro.cache import CacheStats, LRUCache
from repro.forksafe import register_lock_holder
from repro.hmm.states import StateSpace

__all__ = ["SourceWrapper"]


def _reset_wrapper_lock(wrapper: "SourceWrapper") -> None:
    wrapper._emission_sync_lock = threading.Lock()

#: Default emission-cache capacity: comfortably above the distinct-keyword
#: count of any benchmark workload while bounding memory on open vocabularies.
DEFAULT_EMISSION_CACHE_SIZE = 2048


class SourceWrapper(abc.ABC):
    """Mediates every engine interaction with one data source.

    Concrete wrappers must provide keyword-vs-state emission scores (the
    paper's attribute-ranking function), query execution (running the
    generated SQL) and a catalog. Instance-dependent capabilities are
    discoverable through :attr:`has_instance_access` so the engine can
    degrade gracefully on hidden sources.
    """

    def __init__(
        self,
        schema: Schema,
        emission_cache_size: int = DEFAULT_EMISSION_CACHE_SIZE,
    ) -> None:
        self.schema = schema
        self._emission_cache = LRUCache(emission_cache_size, label="emission")
        self._emission_version = self._source_version()
        self._emission_sync_lock = threading.Lock()
        register_lock_holder(self, _reset_wrapper_lock)

    def _source_version(self) -> int:
        """Mutation counter of the underlying source (0 when static).

        Wrappers over mutable backends override this; the emission cache
        is dropped whenever the counter moves, so cached vectors never
        outlive the data they were scored against.
        """
        return 0

    # -- capabilities --------------------------------------------------------

    @property
    @abc.abstractmethod
    def has_instance_access(self) -> bool:
        """Whether setup-phase instance reads (indexes, statistics) exist."""

    @property
    @abc.abstractmethod
    def catalog(self) -> Catalog:
        """The source catalog (schema-only for hidden sources)."""

    # -- the attribute-ranking function ---------------------------------------

    @abc.abstractmethod
    def compute_emission_scores(
        self, keyword: str, states: StateSpace
    ) -> np.ndarray:
        """Relevance of *keyword* for every HMM state (non-negative).

        This is QUEST's "function that, given a keyword and the database
        attributes, ranks the attribute values on the basis of their
        importance", lifted to the full state space: DOMAIN states are
        scored against attribute *contents* (full-text or shape evidence),
        TABLE/ATTRIBUTE states against schema *names* (semantic evidence).
        """

    def compute_emission_matrix(
        self, keywords: Sequence[str], states: StateSpace
    ) -> np.ndarray:
        """Scores of several keywords against the state space, ``(K, n)``.

        The batched form of :meth:`compute_emission_scores`. Wrappers able
        to amortise work across a query's keywords (the full-access
        wrapper scores all of them against the columnar index in one
        pass) override this; the default loops the scalar hook. Rows are
        bit-identical to the per-keyword calls in either case.
        """
        return np.array(
            [self.compute_emission_scores(keyword, states) for keyword in keywords]
        )

    def _cache_sync(self) -> int:
        """The observed source version, dropping cached vectors on mutation.

        The returned version is folded into the cache keys of the read
        that observed it: a vector computed from pre-mutation data but
        *stored* after a concurrent mutation (and after another thread's
        sync cleared the cache) lands under the old version's key, where
        no post-mutation reader can find it — the clear-then-stale-put
        race cannot poison the cache.
        """
        version = self._source_version()
        with self._emission_sync_lock:
            # Adopt only *forward* moves (mutation counters are
            # monotonic): a thread resuming with a stale read must not
            # write the version backwards and trigger clear ping-pong.
            if version > self._emission_version:
                self._emission_cache.clear()
                self._emission_version = version
        return version

    def emission_scores(self, keyword: str, states: StateSpace) -> np.ndarray:
        """Cached emission vector for *keyword* over *states*.

        The returned array is shared across callers and marked read-only;
        consumers that need to modify it must copy first. The key carries
        the full state tuple, not just its length: a vector is only ever
        reused for a state space with identical content *and order* (a
        foreign feedback model may legally carry a same-length space with
        different ordering — see ``Quest.set_feedback_model``) — plus the
        source version observed at lookup time (see :meth:`_cache_sync`).
        """
        version = self._cache_sync()
        key = (keyword, states.states, version)
        cached = self._emission_cache.get(key)
        if cached is not None:
            return cached
        scores = np.asarray(self.compute_emission_scores(keyword, states))
        scores.setflags(write=False)
        self._emission_cache.put(key, scores)
        return scores

    def emission_matrix(
        self, keywords: Sequence[str], states: StateSpace
    ) -> np.ndarray:
        """Raw emission scores for a whole observation sequence, ``(T, n)``.

        The batched forward-stage entry point. Keywords are deduplicated
        first — a repeated keyword in one query pays a single cache probe
        and a single scoring pass, while its per-position rows in the
        returned matrix are preserved — and every distinct keyword missing
        from the cache is scored in one :meth:`compute_emission_matrix`
        call instead of K independent walks. Rows are the exact vectors
        :meth:`emission_scores` returns (and are cached as such), so the
        batched and per-keyword paths are bit-identical.
        """
        version = self._cache_sync()
        key_states = states.states
        vectors: dict[str, np.ndarray] = {}
        misses: list[str] = []
        for keyword in dict.fromkeys(keywords):
            cached = self._emission_cache.get((keyword, key_states, version))
            if cached is None:
                misses.append(keyword)
            else:
                vectors[keyword] = cached
        if misses:
            block = np.asarray(self.compute_emission_matrix(misses, states))
            for keyword, row in zip(misses, block):
                scores = np.ascontiguousarray(row)
                scores.setflags(write=False)
                self._emission_cache.put((keyword, key_states, version), scores)
                vectors[keyword] = scores
        return np.stack([vectors[keyword] for keyword in keywords])

    @property
    def source_version(self) -> int:
        """Public mutation counter of the underlying source.

        The serving tier folds this into ``Quest.version`` so a cached
        service result can never outlive the data it was computed from.
        """
        return self._source_version()

    @property
    def emission_cache(self) -> LRUCache:
        """The shared keyword -> emission-vector cache."""
        return self._emission_cache

    @property
    def emission_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the emission cache."""
        return self._emission_cache.stats

    # -- query execution --------------------------------------------------------

    @abc.abstractmethod
    def execute(self, query: SelectQuery) -> ResultSet:
        """Run a generated SQL query and return its results.

        Hidden sources answer through their endpoint; wrappers with no
        endpoint at all raise :class:`~repro.errors.AccessDeniedError`.
        """

    def result_count(self, query: SelectQuery, limit: int | None = None) -> int:
        """Number of rows *query* yields (default: execute and count).

        With *limit*, the answer is ``min(exact count, limit)`` — the
        bounded probe behind "at least N results?" checks, which backends
        with count pushdown stop early on.
        """
        count = len(self.execute(query))
        return count if limit is None else min(count, limit)

    def __repr__(self) -> str:
        access = "full" if self.has_instance_access else "hidden"
        return f"{type(self).__name__}({self.schema.name!r}, access={access})"
