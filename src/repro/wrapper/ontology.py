"""Schema-aware ontology: lexicon knowledge fused with schema annotations.

The hidden-source wrapper "exploits ... external ontologies to guess the
attributes that can be associated with each keyword". Here the external
ontology is the built-in lexicon extended with the synonyms declared on the
schema itself, giving a single relatedness oracle between user keywords and
schema terms.
"""

from __future__ import annotations

from repro.cache import LRUCache
from repro.db.schema import Schema
from repro.semantics.lexicon import Lexicon, default_lexicon
from repro.semantics.similarity import term_similarity
from repro.semantics.tokenize import split_identifier

__all__ = ["SchemaOntology"]

#: Capacity of the per-ontology term-score memo: schema vocabularies are
#: small (tens of identifiers), so this comfortably holds every
#: (keyword, identifier) pair of a large keyword workload.
_SCORE_CACHE_SIZE = 16384


class SchemaOntology:
    """Relatedness between keywords and the terms of one schema.

    Scores are memoised per ``(keyword, term, partial_scale, lexicon
    version)``: the same identifier ("name", "id") recurs across many
    tables, so one keyword's emission pass asks for far fewer distinct
    scores than it has states. The lexicon version in the key makes
    post-mutation lookups miss instead of returning scores computed
    against the old vocabulary — mutate the lexicon whenever you like.
    """

    def __init__(self, schema: Schema, lexicon: Lexicon | None = None) -> None:
        self.schema = schema
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        # Fold schema-declared synonyms into the lexicon as synonym rings.
        for table in schema.tables:
            if table.synonyms:
                self.lexicon.add_synonym_ring(table.name, *table.synonyms)
            for column in table.columns:
                if column.synonyms:
                    self.lexicon.add_synonym_ring(column.name, *column.synonyms)
        self._score_cache = LRUCache(_SCORE_CACHE_SIZE)

    def clear_score_cache(self) -> None:
        """Drop memoised scores (reclaims memory; correctness never
        needs this — the lexicon version in the key already retires
        entries from older vocabularies)."""
        self._score_cache.clear()

    def term_score(
        self, keyword: str, term: str, partial_scale: float = 0.9
    ) -> float:
        """Similarity of *keyword* to one schema identifier in ``[0, 1]``.

        The maximum of string similarity and lexicon relatedness, where
        multi-word identifiers are compared part-wise: ``release_year``
        matches the keyword ``date`` through the lexicon entry for
        ``year``, discounted by *partial_scale* for being a partial hit.
        """
        key = (keyword, term, partial_scale, self.lexicon.version)
        cached = self._score_cache.get(key)
        if cached is not None:
            return cached
        direct = term_similarity(keyword, term)
        semantic = self.lexicon.relatedness(keyword, term)
        part_scores = [
            self.lexicon.relatedness(keyword, part)
            for part in split_identifier(term)
        ]
        partial = partial_scale * max(part_scores, default=0.0)
        score = max(direct, semantic, partial)
        self._score_cache.put(key, score)
        return score

    def table_score(self, keyword: str, table: str) -> float:
        """Relatedness of *keyword* to a table (name + synonyms).

        Partial hits are discounted harder than for attributes: a keyword
        naming one fragment of a compound *table* name usually means the
        entity (``rivers`` means the ``river`` table, not the ``geo_river``
        junction), whereas attribute fragments (``year`` in
        ``release_year``) are genuine evidence.
        """
        table_schema = self.schema.table(table)
        candidates = [table_schema.name, *table_schema.synonyms]
        return max(
            self.term_score(keyword, c, partial_scale=0.7) for c in candidates
        )

    def attribute_score(self, keyword: str, table: str, column: str) -> float:
        """Relatedness of *keyword* to a column (name + synonyms)."""
        column_schema = self.schema.table(table).column(column)
        candidates = [column_schema.name, *column_schema.synonyms]
        return max(self.term_score(keyword, c) for c in candidates)
