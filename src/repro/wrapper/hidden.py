"""Hidden-source wrapper: Deep Web databases without instance access.

Simulates the scenario the paper highlights as unique to QUEST: the source
sits behind an endpoint (web form / web service), so no full-text indexes
can be built and no statistics collected. Keyword-to-attribute evidence
comes exclusively from regular expressions of admissible values, schema
annotations, database metadata (datatypes) and the ontology.

The wrapper may still *execute* final SQL through the endpoint — the paper's
wrapper runs the generated queries and computes results even for Deep Web
sources — but nothing else: any setup-phase instance read raises
:class:`~repro.errors.AccessDeniedError`. An endpoint-less wrapper (pure
query generator) is obtained by omitting ``remote_db``.
"""

from __future__ import annotations

import numpy as np

from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.executor import ResultSet
from repro.db.query import SelectQuery
from repro.db.schema import Schema
from repro.errors import AccessDeniedError
from repro.hmm.states import StateKind, StateSpace
from repro.semantics.recognizers import shape_score
from repro.storage import StorageBackend, as_backend
from repro.wrapper.base import DEFAULT_EMISSION_CACHE_SIZE, SourceWrapper
from repro.wrapper.ontology import SchemaOntology

__all__ = ["HiddenSourceWrapper"]

#: Below this, a name-similarity score is noise (same cutoff as full access).
_SIMILARITY_CUTOFF = 0.78
#: DOMAIN evidence from shape matching is weaker than full-text evidence;
#: scaled down so schema-name hits still dominate when both are plausible.
_SHAPE_SCALE = 0.6


class HiddenSourceWrapper(SourceWrapper):
    """Wrapper for a source reachable only through a query endpoint."""

    def __init__(
        self,
        schema: Schema,
        remote_db: Database | StorageBackend | None = None,
        ontology: SchemaOntology | None = None,
        emission_cache_size: int = DEFAULT_EMISSION_CACHE_SIZE,
    ) -> None:
        super().__init__(schema, emission_cache_size=emission_cache_size)
        # The endpoint may be any storage backend — the Deep Web source's
        # engine is as much a deployment choice as the owned sources' —
        # but setup-phase reads stay forbidden either way.
        self._remote = as_backend(remote_db) if remote_db is not None else None
        self._catalog = Catalog.schema_only(schema)
        self._ontology = ontology if ontology is not None else SchemaOntology(schema)

    # -- capabilities --------------------------------------------------------

    @property
    def has_instance_access(self) -> bool:
        return False

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    # -- emission scores ---------------------------------------------------------

    def compute_emission_scores(self, keyword: str, states: StateSpace) -> np.ndarray:
        """Regex / datatype / ontology evidence only — no instance reads.

        DOMAIN states combine the column's value-shape compatibility with a
        semantic prior: a keyword related to the *column name* is also more
        likely to be one of its values (e.g. keyword ``thriller`` vs column
        ``genre.label`` on a source whose ``genre`` table name matches).
        """
        scores = np.zeros(len(states))
        for position, state in enumerate(states):
            if state.kind is StateKind.DOMAIN:
                column = self.schema.table(state.table).column(state.column)
                shape = shape_score(keyword, column)
                if shape <= 0.0:
                    continue
                table_prior = self._ontology.table_score(keyword, state.table)
                column_prior = self._ontology.attribute_score(
                    keyword, state.table, state.column
                )
                prior = max(table_prior, column_prior, 0.25)
                scores[position] = _SHAPE_SCALE * shape * prior
            elif state.kind is StateKind.TABLE:
                similarity = self._ontology.table_score(keyword, state.table)
                if similarity >= _SIMILARITY_CUTOFF:
                    scores[position] = similarity
            else:  # ATTRIBUTE
                similarity = self._ontology.attribute_score(
                    keyword, state.table, state.column
                )
                if similarity >= _SIMILARITY_CUTOFF:
                    scores[position] = similarity
        return scores

    # -- execution -----------------------------------------------------------------

    def execute(self, query: SelectQuery) -> ResultSet:
        """Run *query* through the endpoint, if one is configured."""
        if self._remote is None:
            raise AccessDeniedError(
                f"source {self.schema.name!r} has no query endpoint"
            )
        return self._remote.execute(query)

    def result_count(self, query: SelectQuery, limit: int | None = None) -> int:
        """Count through the endpoint (backend-side when it can)."""
        if self._remote is None:
            raise AccessDeniedError(
                f"source {self.schema.name!r} has no query endpoint"
            )
        return self._remote.result_count(query, limit)
