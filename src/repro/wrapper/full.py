"""Full-access wrapper: owned databases with full-text indexes.

The setup phase instantiates a full-text index over every attribute and
warms the catalog; at run time DOMAIN states are scored with the index's
search function (the paper's preferred evidence), schema states with the
ontology, and generated SQL runs directly on the engine's executor.
"""

from __future__ import annotations

import numpy as np

from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.executor import ResultSet, execute
from repro.db.fulltext import FullTextIndex
from repro.db.query import SelectQuery
from repro.hmm.states import StateKind, StateSpace
from repro.wrapper.base import DEFAULT_EMISSION_CACHE_SIZE, SourceWrapper
from repro.wrapper.ontology import SchemaOntology

__all__ = ["FullAccessWrapper"]

#: Schema-term evidence is discounted against instance evidence: a keyword
#: that literally occurs in the data is stronger proof than a name match.
_SCHEMA_TERM_SCALE = 0.8
#: Name similarities below this are treated as noise, not evidence. Genuine
#: matches (stems, lexicon synonyms, identifier-part hits) score >= 0.85;
#: Jaro-Winkler noise between unrelated short words peaks around 0.6.
_SIMILARITY_CUTOFF = 0.78


class FullAccessWrapper(SourceWrapper):
    """Wrapper over a fully accessible :class:`~repro.db.database.Database`."""

    def __init__(
        self,
        db: Database,
        ontology: SchemaOntology | None = None,
        fulltext: FullTextIndex | None = None,
        emission_cache_size: int = DEFAULT_EMISSION_CACHE_SIZE,
    ) -> None:
        super().__init__(db.schema, emission_cache_size=emission_cache_size)
        self._db = db
        self._fulltext = fulltext if fulltext is not None else FullTextIndex(db)
        self._catalog = Catalog.from_database(db)
        self._ontology = (
            ontology if ontology is not None else SchemaOntology(db.schema)
        )

    # -- capabilities --------------------------------------------------------

    @property
    def has_instance_access(self) -> bool:
        return True

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def fulltext(self) -> FullTextIndex:
        """The full-text index (exposed for baselines and diagnostics)."""
        return self._fulltext

    @property
    def database(self) -> Database:
        """The underlying database (exposed for baselines and tests)."""
        return self._db

    # -- emission scores ---------------------------------------------------------

    def compute_emission_scores(self, keyword: str, states: StateSpace) -> np.ndarray:
        """Full-text scores for DOMAIN states, ontology for schema states."""
        scores = np.zeros(len(states))
        domain_scores = self._fulltext.attribute_scores(keyword)
        for position, state in enumerate(states):
            if state.kind is StateKind.DOMAIN:
                ref = state.column_ref
                scores[position] = domain_scores.get(ref, 0.0)
            elif state.kind is StateKind.TABLE:
                similarity = self._ontology.table_score(keyword, state.table)
                if similarity >= _SIMILARITY_CUTOFF:
                    scores[position] = similarity * _SCHEMA_TERM_SCALE
            else:  # ATTRIBUTE
                similarity = self._ontology.attribute_score(
                    keyword, state.table, state.column
                )
                if similarity >= _SIMILARITY_CUTOFF:
                    scores[position] = similarity * _SCHEMA_TERM_SCALE
        return scores

    # -- execution -----------------------------------------------------------------

    def execute(self, query: SelectQuery) -> ResultSet:
        return execute(self._db, query)
