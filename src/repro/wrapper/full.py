"""Full-access wrapper: owned databases with full-text indexes.

The setup phase instantiates a full-text index over every attribute and
warms the catalog; at run time DOMAIN states are scored with the backend's
search function (the paper's preferred evidence), schema states with the
ontology, and generated SQL runs on the backend's engine.

The wrapper binds to a :class:`~repro.storage.base.StorageBackend` rather
than to one concrete store: pass a plain
:class:`~repro.db.database.Database` (wrapped into a
:class:`~repro.storage.memory.MemoryBackend` for compatibility) or any
backend from :mod:`repro.storage` — rankings are identical either way,
because backends guarantee score parity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import faults
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.executor import ResultSet
from repro.db.fulltext import FullTextIndex
from repro.db.query import SelectQuery
from repro.errors import QuestError
from repro.hmm.states import StateKind, StateSpace
from repro.storage import MemoryBackend, StorageBackend, as_backend
from repro.wrapper.base import DEFAULT_EMISSION_CACHE_SIZE, SourceWrapper
from repro.wrapper.ontology import SchemaOntology

__all__ = ["FullAccessWrapper"]

#: Schema-term evidence is discounted against instance evidence: a keyword
#: that literally occurs in the data is stronger proof than a name match.
_SCHEMA_TERM_SCALE = 0.8
#: Name similarities below this are treated as noise, not evidence. Genuine
#: matches (stems, lexicon synonyms, identifier-part hits) score >= 0.85;
#: Jaro-Winkler noise between unrelated short words peaks around 0.6.
_SIMILARITY_CUTOFF = 0.78


class FullAccessWrapper(SourceWrapper):
    """Wrapper over a fully accessible storage backend."""

    def __init__(
        self,
        source: Database | StorageBackend,
        ontology: SchemaOntology | None = None,
        fulltext: FullTextIndex | None = None,
        emission_cache_size: int = DEFAULT_EMISSION_CACHE_SIZE,
    ) -> None:
        if fulltext is not None:
            if not isinstance(source, Database):
                raise QuestError(
                    "a prebuilt FullTextIndex only applies to a plain "
                    "Database source; backends own their index"
                )
            backend: StorageBackend = MemoryBackend(source, fulltext=fulltext)
        else:
            backend = as_backend(source)
        # Set before super().__init__: the base class snapshots the
        # source version for emission-cache invalidation.
        self._backend = backend
        super().__init__(backend.schema, emission_cache_size=emission_cache_size)
        self._ontology = (
            ontology if ontology is not None else SchemaOntology(backend.schema)
        )
        #: Per-state-space index arrays for the batched emission path,
        #: keyed by the state tuple (an engine has one space; a foreign
        #: feedback model may add a second — the dict stays tiny).
        self._state_layouts: dict[tuple, tuple] = {}

    # -- capabilities --------------------------------------------------------

    def _source_version(self) -> int:
        return self._backend.version

    @property
    def has_instance_access(self) -> bool:
        return True

    @property
    def catalog(self) -> Catalog:
        return self._backend.catalog

    @property
    def backend(self) -> StorageBackend:
        """The storage backend this wrapper mediates access to."""
        return self._backend

    @property
    def fulltext(self) -> FullTextIndex:
        """The in-process full-text index (memory backends only).

        Exposed for baselines and diagnostics; backends that serve search
        engine-side (SQLite) have no in-process index to hand out.
        """
        fulltext = getattr(self._backend, "fulltext", None)
        if fulltext is None:
            raise QuestError(
                f"backend {self._backend.name!r} has no in-process full-text "
                "index; use the backend's search methods instead"
            )
        return fulltext

    @property
    def database(self) -> Database:
        """The underlying database (memory backends only; for baselines/tests)."""
        database = getattr(self._backend, "database", None)
        if database is None:
            raise QuestError(
                f"backend {self._backend.name!r} does not expose an in-memory "
                "Database; go through the StorageBackend protocol instead"
            )
        return database

    # -- emission scores ---------------------------------------------------------

    def compute_emission_scores(self, keyword: str, states: StateSpace) -> np.ndarray:
        """Full-text scores for DOMAIN states, ontology for schema states."""
        faults.fire("emission.compute")
        scores = np.zeros(len(states))
        domain_scores = self._backend.attribute_scores(keyword)
        for position, state in enumerate(states):
            if state.kind is StateKind.DOMAIN:
                ref = state.column_ref
                scores[position] = domain_scores.get(ref, 0.0)
            elif state.kind is StateKind.TABLE:
                similarity = self._ontology.table_score(keyword, state.table)
                if similarity >= _SIMILARITY_CUTOFF:
                    scores[position] = similarity * _SCHEMA_TERM_SCALE
            else:  # ATTRIBUTE
                similarity = self._ontology.attribute_score(
                    keyword, state.table, state.column
                )
                if similarity >= _SIMILARITY_CUTOFF:
                    scores[position] = similarity * _SCHEMA_TERM_SCALE
        return scores

    def _state_layout(self, states: StateSpace) -> tuple:
        """Cached split of a state space into DOMAIN and schema positions."""
        key = states.states
        layout = self._state_layouts.get(key)
        if layout is None:
            domain_positions: list[int] = []
            domain_refs: list = []
            schema_states: list[tuple[int, object]] = []
            for position, state in enumerate(states):
                if state.kind is StateKind.DOMAIN:
                    domain_positions.append(position)
                    domain_refs.append(state.column_ref)
                else:
                    schema_states.append((position, state))
            layout = (
                np.asarray(domain_positions, dtype=np.int64),
                tuple(domain_refs),
                tuple(schema_states),
            )
            self._state_layouts[key] = layout
        return layout

    def compute_emission_matrix(
        self, keywords: Sequence[str], states: StateSpace
    ) -> np.ndarray:
        """All keywords against all states in one vectorised pass.

        DOMAIN columns are filled from the backend's batched
        :meth:`~repro.storage.base.StorageBackend.emission_block` (columnar
        array slicing on the memory backend, one grouped SQL query on
        SQLite) instead of one ``attribute_scores`` dict walk per keyword;
        schema states go through the (memoised) ontology exactly like the
        per-keyword hook, so the matrix rows are bit-identical to
        :meth:`compute_emission_scores`.
        """
        faults.fire("emission.compute")
        domain_positions, domain_refs, schema_states = self._state_layout(states)
        matrix = np.zeros((len(keywords), len(states)))
        if len(domain_positions):
            matrix[:, domain_positions] = self._backend.emission_block(
                keywords, domain_refs
            )
        for row, keyword in zip(matrix, keywords):
            for position, state in schema_states:
                if state.kind is StateKind.TABLE:
                    similarity = self._ontology.table_score(keyword, state.table)
                else:  # ATTRIBUTE
                    similarity = self._ontology.attribute_score(
                        keyword, state.table, state.column
                    )
                if similarity >= _SIMILARITY_CUTOFF:
                    row[position] = similarity * _SCHEMA_TERM_SCALE
        return matrix

    # -- execution -----------------------------------------------------------------

    def execute(self, query: SelectQuery) -> ResultSet:
        return self._backend.execute(query)

    def result_count(self, query: SelectQuery, limit: int | None = None) -> int:
        """Count backend-side: SQLite answers with ``COUNT(*)``, no rows move."""
        return self._backend.result_count(query, limit)
