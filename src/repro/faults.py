"""Deterministic seeded fault injection for chaos tests and benchmarks.

Production code paths are instrumented with *named injection points* —
one cheap ``faults.fire("storage.query")`` call at each seam where the
real world can fail. With no plan installed (the default, and always in
production) ``fire`` is a module-global ``None`` check and costs
nothing. Tests install a :class:`FaultPlan` that maps points to fault
specs:

    plan = FaultPlan(seed=7).inject(
        "storage.query", kind="error", rate=0.1,
        error=sqlite3.OperationalError("injected: database is locked"),
    )
    with faults.injected(plan):
        ...   # ~10% of storage calls now raise, on a reproducible schedule

Determinism is the point: every injection point owns a ``random.Random``
stream seeded from ``(plan seed, point name)`` and a call counter, so the
same seed against the same call sequence reproduces the same schedule —
bit-for-bit, across runs and across the fork into serving workers (the
installed plan is inherited by forked children, which is how prefork
chaos tests crash a worker deterministically).

Injection points:

=================== =====================================================
``storage.query``    every guarded SQL call in ``SQLiteBackend``
``artifact.load``    ``FullTextIndex.load`` artifact open/validate
``worker.start``     ``PreforkServer`` worker boot, before the engine builds
``emission.compute`` ``FullAccessWrapper`` emission scoring entry
``steiner.expand``   the top-k Steiner enumeration loop (every 64 pops)
``journal.append``   ``MutationJournal.append``, before the record is written
``fs.fsync``         before every durability fsync (journal append, artifact
                     temp file) — the "power loss before the sync" window
``artifact.replace`` ``FullTextIndex.save``, before the atomic ``os.replace``
                     publishes the new artifact generation
``journal.replay``   recovery replay, before each journaled record re-applies
=================== =====================================================

Fault kinds: ``latency`` (sleep ``delay_s``), ``error`` (raise), ``crash``
(``os._exit`` — forked workers only), ``flake`` (raise for the first
``recover_after`` triggered calls, then pass forever — the
flake-then-recover schedule breaker tests are built on).
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import FaultInjectedError, QuestError
from repro.forksafe import register_lock_holder


def _reset_plan_lock(plan: "FaultPlan") -> None:
    plan._lock = threading.Lock()

__all__ = [
    "POINTS",
    "FaultPlan",
    "FaultSpec",
    "active",
    "clear",
    "fire",
    "injected",
    "install",
]

#: The registry of known injection points (unknown names are rejected so a
#: typo in a test fails loudly instead of silently injecting nothing).
POINTS = (
    "storage.query",
    "artifact.load",
    "worker.start",
    "emission.compute",
    "steiner.expand",
    "journal.append",
    "fs.fsync",
    "artifact.replace",
    "journal.replay",
)

_KINDS = ("latency", "error", "crash", "flake")


@dataclass
class FaultSpec:
    """What to do when one injection point fires.

    Attributes:
        kind: ``latency`` / ``error`` / ``crash`` / ``flake``.
        rate: probability a call triggers (drawn from the point's seeded
            stream; 1.0 = every call).
        after: skip the first *after* calls entirely (lets a test prime a
            cache or finish boot before the chaos starts).
        times: stop triggering after this many triggered calls
            (``None`` = unlimited).
        delay_s: sleep applied by ``latency`` faults (also honoured
            before ``error``/``flake`` raises when nonzero, for
            slow-failure schedules).
        error: exception *instance* or *class* raised by ``error`` and
            ``flake`` faults; defaults to :class:`FaultInjectedError`.
        recover_after: ``flake`` only — triggered calls raise until this
            many have failed, then every later call passes (the
            dependency "recovered").
        exit_code: ``crash`` only — the ``os._exit`` status.
    """

    kind: str
    rate: float = 1.0
    after: int = 0
    times: int | None = None
    delay_s: float = 0.0
    error: BaseException | type[BaseException] | None = None
    recover_after: int = 0
    exit_code: int = 13

    # Mutable per-plan counters (not part of the spec's identity).
    calls: int = field(default=0, compare=False)
    triggered: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise QuestError(f"unknown fault kind {self.kind!r} (use {_KINDS})")
        if not 0.0 <= self.rate <= 1.0:
            raise QuestError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.kind == "flake" and self.recover_after <= 0:
            raise QuestError("flake faults need recover_after > 0")

    def _raise(self, point: str) -> None:
        error = self.error
        if error is None:
            raise FaultInjectedError(point)
        if isinstance(error, type):
            raise error(f"injected fault at {point!r}")
        raise error


class FaultPlan:
    """A seeded, reproducible schedule of faults across injection points.

    Thread-safe: the per-point counters and RNG streams are advanced
    under one lock, so concurrent searches observe one global call order
    (tests that need *exact* cross-thread schedules use ``rate=1.0``
    specs, which do not depend on interleaving).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._lock = threading.Lock()
        # Installed plans are inherited across the prefork fork; a child
        # must not start life with this lock held (see repro.forksafe).
        register_lock_holder(self, _reset_plan_lock)
        self._specs: dict[str, FaultSpec] = {}
        self._streams: dict[str, random.Random] = {}
        self._decisions: dict[str, list[str]] = {}

    def inject(self, point: str, **spec: object) -> "FaultPlan":
        """Attach a :class:`FaultSpec` to *point*; chainable."""
        if point not in POINTS:
            raise QuestError(f"unknown injection point {point!r} (use {POINTS})")
        self._specs[point] = FaultSpec(**spec)  # type: ignore[arg-type]
        # One independent stream per point, derived stably from the seed.
        self._streams[point] = random.Random(f"{self.seed}:{point}")
        self._decisions[point] = []
        return self

    def decisions(self, point: str) -> tuple[str, ...]:
        """The recorded outcome per call at *point* (determinism checks)."""
        with self._lock:
            return tuple(self._decisions.get(point, ()))

    def _decide(self, point: str) -> FaultSpec | None:
        """Advance *point*'s schedule by one call; return the spec to apply."""
        spec = self._specs.get(point)
        if spec is None:
            return None
        log = self._decisions[point]
        spec.calls += 1
        if spec.calls <= spec.after:
            log.append("pass")
            return None
        if spec.times is not None and spec.triggered >= spec.times:
            log.append("pass")
            return None
        # Draw even for rate 1.0 so thinning a schedule (rate 1.0 -> 0.5)
        # only removes firings instead of reshuffling the whole stream.
        draw = self._streams[point].random()
        if draw >= spec.rate:
            log.append("pass")
            return None
        spec.triggered += 1
        if spec.kind == "flake" and spec.triggered > spec.recover_after:
            log.append("recovered")
            return None
        log.append(spec.kind)
        return spec

    def fire(self, point: str) -> None:
        """Apply *point*'s schedule to the current call (may sleep/raise).

        Unknown point names are a hard error: a typo'd instrumentation
        site would otherwise silently inject nothing and the chaos
        suite would quietly stop covering that seam. (The check runs
        only when a plan is installed, so the production fast path —
        no plan, module-level ``fire`` returns immediately — never
        pays for it; the static ``fault-points`` questlint rule covers
        the uninstalled case.)
        """
        if point not in POINTS:
            raise QuestError(
                f"unknown injection point {point!r} fired (use {POINTS})"
            )
        with self._lock:
            spec = self._decide(point)
        if spec is None:
            return
        if spec.delay_s > 0:
            time.sleep(spec.delay_s)
        if spec.kind == "latency":
            return
        if spec.kind == "crash":
            os._exit(spec.exit_code)
        spec._raise(point)


#: The installed plan (None = injection disabled, the production state).
_ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Install *plan* process-wide (inherited by forked children)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    """Remove the installed plan."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultPlan | None:
    """The installed plan, if any."""
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install *plan* for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def fire(point: str) -> None:
    """Hit injection point *point*; no-op unless a plan is installed."""
    plan = _ACTIVE
    if plan is not None:
        plan.fire(point)
