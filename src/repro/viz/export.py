"""Graphviz DOT export of schemas, schema graphs and join trees.

For users who want the demo GUI's "portion of the database involved by the
query" as an actual picture: feed the output to ``dot -Tsvg``.
"""

from __future__ import annotations

from repro.db.schema import Schema
from repro.steiner.graph import EdgeKind, SchemaGraph
from repro.steiner.tree import SteinerTree

__all__ = ["schema_to_dot", "graph_to_dot", "tree_to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def schema_to_dot(schema: Schema) -> str:
    """Tables as record nodes, foreign keys as edges."""
    lines = [f"digraph {schema.name} {{", "  node [shape=record];"]
    for table in schema.tables:
        fields = "|".join(
            f"{'<pk> ' if table.is_key_column(c.name) else ''}{c.name}"
            for c in table.columns
        )
        lines.append(f"  {table.name} [label={_quote(table.name + '|' + fields)}];")
    for fk in schema.foreign_keys:
        lines.append(
            f"  {fk.table} -> {fk.ref_table} "
            f"[label={_quote(fk.column + ' -> ' + fk.ref_column)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def graph_to_dot(graph: SchemaGraph, highlight: SteinerTree | None = None) -> str:
    """The attribute-level schema graph, optionally highlighting a tree."""
    highlighted = set()
    terminal_nodes = set()
    if highlight is not None:
        highlighted = {edge.key for edge in highlight.edges}
        terminal_nodes = set(highlight.terminals)
    lines = ["graph schema_graph {", "  node [shape=ellipse, fontsize=10];"]
    for node in graph.nodes:
        attributes = []
        if node in terminal_nodes:
            attributes.append("style=filled")
            attributes.append("fillcolor=gold")
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  {_quote(str(node))}{suffix};")
    for edge in graph.edges:
        style = "bold, color=red" if edge.key in highlighted else (
            "solid" if edge.kind == EdgeKind.JOIN else "dashed"
        )
        lines.append(
            f"  {_quote(str(edge.left))} -- {_quote(str(edge.right))} "
            f"[label={_quote(f'{edge.weight:.2f}')}, style={_quote(style)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def tree_to_dot(tree: SteinerTree) -> str:
    """Just the join tree, terminals highlighted."""
    lines = ["graph join_tree {", "  node [shape=ellipse, fontsize=10];"]
    for node in sorted(tree.nodes, key=str):
        if node in tree.terminals:
            lines.append(
                f"  {_quote(str(node))} [style=filled, fillcolor=gold];"
            )
        else:
            lines.append(f"  {_quote(str(node))};")
    for edge in sorted(tree.edges, key=str):
        lines.append(
            f"  {_quote(str(edge.left))} -- {_quote(str(edge.right))} "
            f"[label={_quote(f'{edge.weight:.2f}')}];"
        )
    lines.append("}")
    return "\n".join(lines)
