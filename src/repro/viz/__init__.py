"""Visualisation: ASCII answer rendering and Graphviz DOT export."""

from repro.viz.export import graph_to_dot, schema_to_dot, tree_to_dot
from repro.viz.render import (
    render_explanation,
    render_ranking,
    render_results,
    render_tree,
)

__all__ = [
    "graph_to_dot",
    "render_explanation",
    "render_ranking",
    "render_results",
    "render_tree",
    "schema_to_dot",
    "tree_to_dot",
]
