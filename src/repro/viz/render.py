"""Textual rendering of explanations: the demo GUI's answer view, in ASCII.

The paper's fifth demo message is "a new paradigm for visualizing query
answers, by coupling the list of tuples with a graphical representation of
the portion of the database involved by the query". These renderers produce
that coupling for terminals: the ranked SQL, the join tree, and the result
tuples.
"""

from __future__ import annotations

from repro.core.explanation import Explanation
from repro.db.executor import ResultSet
from repro.steiner.graph import EdgeKind
from repro.steiner.tree import SteinerTree

__all__ = ["render_tree", "render_explanation", "render_results", "render_ranking"]


def render_tree(tree: SteinerTree) -> str:
    """ASCII rendering of a join tree, grouped by table.

    Join edges are drawn between tables; the attributes the tree touches
    are listed under each table, terminals marked with ``*``.
    """
    lines = []
    for table in sorted(tree.tables):
        attributes = sorted(
            node.column for node in tree.nodes if node.table == table
        )
        marks = [
            f"{column}*"
            if any(t.table == table and t.column == column for t in tree.terminals)
            else column
            for column in attributes
        ]
        lines.append(f"[{table}] {', '.join(marks)}")
    for edge in sorted(tree.edges, key=str):
        if edge.kind == EdgeKind.JOIN:
            lines.append(f"  {edge.left} ={edge.weight:.2f}= {edge.right}")
    return "\n".join(lines)


def render_explanation(explanation: Explanation, rank: int | None = None) -> str:
    """One explanation: rank, probability, mapping, join tree and SQL."""
    header = f"#{rank} " if rank is not None else ""
    lines = [f"{header}probability={explanation.probability:.4f}"]
    if explanation.result_count is not None:
        lines[0] += f"  rows={explanation.result_count}"
    lines.append("  mapping:")
    for mapping in explanation.configuration.mappings:
        lines.append(f"    {mapping}")
    tree = explanation.interpretation.tree
    if tree.edges:
        lines.append("  join path:")
        for tree_line in render_tree(tree).splitlines():
            lines.append(f"    {tree_line}")
    lines.append(f"  SQL: {explanation.sql}")
    return "\n".join(lines)


def render_ranking(explanations: list[Explanation]) -> str:
    """The full ranked explanation list, best first."""
    blocks = [
        render_explanation(explanation, rank)
        for rank, explanation in enumerate(explanations, start=1)
    ]
    return "\n".join(blocks)


def render_results(results: ResultSet, limit: int = 10) -> str:
    """Tabulate a result set (first *limit* rows)."""
    header = " | ".join(results.columns)
    lines = [header, "-" * len(header)]
    for row in results.rows[:limit]:
        lines.append(" | ".join("NULL" if v is None else str(v) for v in row))
    if len(results) > limit:
        lines.append(f"... {len(results) - limit} more rows")
    return "\n".join(lines)
