"""questlint: project-specific static analysis for hard-won invariants.

Nine PRs of growth accreted invariants that nothing enforced
mechanically — every one added after a real bug, every one guarded only
by reviewer memory. This package closes that gap the way race detectors
and sanitizers gate large concurrent systems: an AST-walking analyzer
(stdlib :mod:`ast`, no third-party dependencies) with one checker per
invariant, runnable as ``python -m repro.analysis src/`` and wired into
CI as a hard gate alongside the perf and parity harnesses.

The enforced invariants (see ARCHITECTURE.md, "Correctness tooling"):

=================== =====================================================
``fork-safety``      every ``threading.Lock``/``RLock``/``Condition``
                     assigned to ``self.*`` must be re-initialised in
                     forked children via ``repro.forksafe`` (PR 5: a fork
                     while a sibling thread holds a copied lock deadlocks
                     the child).
``lock-order``       the static lock-acquisition graph built from nested
                     ``with self._lock``-style blocks must be acyclic
                     (a cycle is a potential ABBA deadlock).
``cache-revision``   cross-query cache keys must carry a revision /
                     version / generation stamp (PR 5: clear-then-stale-
                     put races poison unstamped caches).
``journal-discipline`` storage-backend mutations must journal before they
                     apply — validate → journal → apply (PR 9: the
                     journal append *is* the durability ack).
``fault-points``     every ``faults.fire("...")`` literal must be in the
                     declared ``POINTS`` registry, and every declared
                     point must be fired somewhere (PR 8: a typo'd point
                     silently injects nothing).
``clock-discipline`` deadline-aware layers (``pipeline``, ``resilience``,
                     ``service``) never read ``time.time()`` /
                     ``time.monotonic()`` directly — clocks are injected
                     so chaos tests can drive expiry deterministically.
=================== =====================================================

Suppressions: append ``# questlint: disable=RULE  # reason`` to the
flagged line, or put ``# questlint: disable-file=RULE`` anywhere in a
file to waive the rule file-wide. Findings can also be parked in a
committed baseline file (``questlint-baseline.json``) with a written
justification per entry; the CI gate fails on any non-baselined finding.

The runtime counterpart lives in :mod:`repro.analysis.lockwatch`: an
opt-in instrumented lock wrapper that records per-thread acquisition
order at test time, catching the inversions the static ``lock-order``
checker cannot see (locks acquired across call boundaries) plus
fork-while-held events. The concurrency and chaos suites run under it.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.driver import AnalysisResult, analyze_paths, main
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "analyze_paths",
    "main",
]
