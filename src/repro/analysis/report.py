"""Rendering questlint results: human text and machine JSON."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.driver import AnalysisResult

JSON_SCHEMA_VERSION = 1


def render_text(result: "AnalysisResult") -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if result.findings:
        lines.append("")
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        lines.append(
            f"questlint: {len(result.findings)} finding"
            f"{'' if len(result.findings) == 1 else 's'} ({summary}) "
            f"across {result.files_checked} files"
        )
    else:
        lines.append(
            f"questlint: clean ({result.files_checked} files, "
            f"{len(result.suppressed)} suppressed, "
            f"{len(result.baselined)} baselined)"
        )
    return "\n".join(lines) + "\n"


def render_json(result: "AnalysisResult") -> str:
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "rules": result.rules,
        "findings": [f.to_json() for f in result.findings],
        "counts": counts,
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2) + "\n"
