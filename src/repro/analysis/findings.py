"""The unit of questlint output: a single rule violation at a location.

Findings carry a *fingerprint* — a stable hash of (rule, path, message)
that deliberately excludes line/column numbers, so a baseline entry
keeps matching while unrelated edits shift the file around it. The
fingerprint changes when the violation itself changes (different lock
attribute, different cache receiver, ...), which is exactly when a
stale baseline entry should die.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fingerprint: str = field(default="", compare=False)

    @staticmethod
    def make(rule: str, path: str, line: int, col: int, message: str) -> "Finding":
        digest = hashlib.sha256(
            f"{rule}::{path}::{message}".encode("utf-8")
        ).hexdigest()[:16]
        return Finding(
            rule=rule,
            path=path,
            line=line,
            col=col,
            message=message,
            fingerprint=digest,
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
