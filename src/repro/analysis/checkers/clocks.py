"""clock-discipline: deadline-aware layers never read the clock directly.

The resilience tier's determinism rests on injected clocks: ``Deadline``,
the circuit breaker, TTL caches and the prefork supervisor all take a
``clock`` callable defaulting to ``time.monotonic``, so chaos tests can
drive expiry without sleeping. A direct ``time.time()`` /
``time.monotonic()`` *call* inside ``pipeline/``, ``resilience/`` or
``service/`` bypasses that seam — the test can no longer make that code
path believe time has passed.

Only calls are flagged. ``clock: Callable[[], float] = time.monotonic``
default parameters and ``self._clock = clock`` assignments are
*references* — they are the seam — and pass untouched. ``time.sleep``
and ``time.perf_counter`` (trace/bench timing, not deadline logic) are
out of scope.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, ModuleInfo, resolved_call_name
from repro.analysis.findings import Finding

RULE = "clock-discipline"
GUARDED_LAYERS = ("pipeline", "resilience", "service")
CLOCK_CALLS = ("time.time", "time.monotonic")


class ClockDisciplineChecker(Checker):
    rule = RULE
    description = (
        "pipeline/resilience/service code must use injected clocks, not "
        "direct time.time()/time.monotonic() calls"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        parts = module.rel_path.replace("\\", "/").split("/")
        if not any(layer in parts for layer in GUARDED_LAYERS):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolved_call_name(module, node)
            if resolved in CLOCK_CALLS:
                findings.append(
                    module.finding(
                        RULE,
                        node,
                        f"direct {resolved}() read in a deadline-aware "
                        "layer — inject a clock callable instead (see "
                        "repro.resilience.deadline.Deadline) so tests can "
                        "drive expiry deterministically",
                    )
                )
        return findings
