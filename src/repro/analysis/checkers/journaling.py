"""journal-discipline: storage mutations journal before they apply.

PR 9's durability contract: ``add_rows``/``delete_rows`` return ⇒ the
batch is fsync'd in the journal, because the journal append *is* the
durability ack and crash recovery replays from it. The shape that makes
that true is validate → journal → apply — an apply-side helper invoked
before its batch is journaled acknowledges state that a crash would
silently lose.

Mechanically: inside any class whose name (or base) mentions
``Backend``, a method that calls a ``self._apply_*`` helper must make a
journal call (an attribute access whose name contains ``journal``, e.g.
``self._journal_append(...)`` or ``self._journal.append(...)``) on an
earlier line of the same method. Textual order approximates dominance —
exact for the straight-line mutation paths this codebase uses. The
``_apply_*`` definitions themselves are exempt (they are the apply
side); the recovery replay path re-applies *already-journaled* records
and carries an inline disable explaining exactly that.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import (
    Checker,
    ModuleInfo,
    class_functions,
    terminal_attr,
)
from repro.analysis.findings import Finding

RULE = "journal-discipline"


def _is_backend_class(cls: ast.ClassDef) -> bool:
    if "Backend" in cls.name:
        return True
    for base in cls.bases:
        base_name = terminal_attr(base)
        if base_name is not None and "Backend" in base_name:
            return True
    return False


class JournalDisciplineChecker(Checker):
    rule = RULE
    description = (
        "storage-backend methods must journal (validate -> journal -> "
        "apply) before invoking self._apply_* helpers"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not _is_backend_class(node):
                continue
            for method in class_functions(node):
                if method.name.startswith("_apply_"):
                    continue
                findings.extend(self._check_method(module, node, method))
        return findings

    def _check_method(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        apply_calls: list[ast.Call] = []
        journal_lines: list[int] = []
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if (
                func.attr.startswith("_apply_")
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                apply_calls.append(node)
            elif "journal" in func.attr.lower():
                journal_lines.append(node.lineno)
        findings: list[Finding] = []
        for call in apply_calls:
            if any(line <= call.lineno for line in journal_lines):
                continue
            func = call.func
            assert isinstance(func, ast.Attribute)
            findings.append(
                module.finding(
                    RULE,
                    call,
                    f"{cls.name}.{method.name} calls self.{func.attr}() "
                    "without a preceding journal append — applied state "
                    "would not survive crash recovery (validate -> "
                    "journal -> apply)",
                )
            )
        return findings
