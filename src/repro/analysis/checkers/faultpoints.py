"""fault-points: fire("...") literals and the POINTS registry must agree.

PR 8's fault-injection harness is only as good as its point names: a
typo'd ``faults.fire("storage.qurey")`` silently injects nothing and the
chaos suite quietly stops covering that path. Both directions are
checked, whole-program:

- every ``faults.fire("<literal>")`` must name a point declared in the
  ``POINTS`` registry (anchored at the fire site);
- every declared point must be fired somewhere in the analysed tree
  (anchored at the POINTS declaration) — a declared-but-never-fired
  point means a fault plan targeting it is dead configuration.

Non-literal fire arguments are ignored (the runtime guard in
``repro.faults`` covers those; see FaultPlan.fire). If no POINTS
declaration is in the analysed tree (e.g. a partial run over one
subpackage), the checker stays silent rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.checkers.base import Checker, ModuleInfo, resolved_call_name
from repro.analysis.findings import Finding

RULE = "fault-points"


@dataclass(frozen=True)
class _FireSite:
    point: str
    rel_path: str
    line: int
    col: int


class FaultPointChecker(Checker):
    rule = RULE
    description = (
        'every faults.fire("...") literal must be a declared POINT, and '
        "every declared POINT must be fired somewhere"
    )

    def __init__(self) -> None:
        self._declared: dict[str, tuple[str, int, int]] = {}
        self._declaring_modules: set[str] = set()
        self._fires: list[_FireSite] = []

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                self._maybe_record_registry(module, node)
            elif isinstance(node, ast.Call):
                self._maybe_record_fire(module, node)
        return []

    def _maybe_record_registry(self, module: ModuleInfo, node: ast.Assign) -> None:
        if not any(
            isinstance(t, ast.Name) and t.id == "POINTS" for t in node.targets
        ):
            return
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return
        points: list[str] = []
        for element in node.value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                points.append(element.value)
            else:
                return  # not a pure string registry; ignore
        if not points:
            return
        self._declaring_modules.add(module.rel_path)
        for point in points:
            self._declared.setdefault(
                point, (module.rel_path, node.lineno, node.col_offset)
            )

    def _maybe_record_fire(self, module: ModuleInfo, node: ast.Call) -> None:
        resolved = resolved_call_name(module, node)
        if resolved is None or not resolved.endswith("faults.fire"):
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            self._fires.append(
                _FireSite(
                    point=arg.value,
                    rel_path=module.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    def finalize(self) -> list[Finding]:
        if not self._declared:
            return []
        findings: list[Finding] = []
        for fire in self._fires:
            if fire.point not in self._declared:
                findings.append(
                    Finding.make(
                        RULE,
                        fire.rel_path,
                        fire.line,
                        fire.col,
                        f'fire point "{fire.point}" is not declared in the '
                        "POINTS registry — this injection site is dead and "
                        "the chaos suite cannot target it",
                    )
                )
        fired = {f.point for f in self._fires}
        fired_outside_registry = any(
            f.rel_path not in self._declaring_modules for f in self._fires
        )
        if fired_outside_registry:
            for point, (rel_path, line, col) in sorted(self._declared.items()):
                if point not in fired:
                    findings.append(
                        Finding.make(
                            RULE,
                            rel_path,
                            line,
                            col,
                            f'declared fault point "{point}" is never '
                            "fired — fault plans targeting it are dead "
                            "configuration",
                        )
                    )
        return findings
