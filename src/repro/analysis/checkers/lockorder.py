"""lock-order: the static lock-acquisition graph must be acyclic.

Builds a whole-program directed graph from *textually nested* ``with``
blocks over lock-like expressions: an edge A → B means some function
acquires B while (statically) holding A. A cycle in that graph is a
potential ABBA deadlock — two threads entering the cycle from different
points block each other forever.

Lock identity is a *role*, not an instance: ``self._lock`` inside class
``C`` of module ``m`` is the node ``m.C._lock``, module-level ``_X_LOCK``
is ``m._X_LOCK``. Two instances of the same class share a node — which is
what you want, because the ordering discipline is per-role.

Also flagged: statically nested re-acquisition of a lock known (from its
same-class ``threading.Lock()`` assignment) to be non-reentrant — a
guaranteed self-deadlock, no second thread required.

This checker sees only lexical nesting; inversions assembled across call
boundaries are the runtime detector's job (`repro.analysis.lockwatch`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.checkers.base import Checker, ModuleInfo
from repro.analysis.checkers.forksafety import self_lock_assignments
from repro.analysis.findings import Finding

RULE = "lock-order"


@dataclass(frozen=True)
class _Edge:
    src: str
    dst: str
    rel_path: str
    line: int
    col: int


def _lock_node_id(
    module: ModuleInfo, class_name: str | None, expr: ast.expr
) -> str | None:
    """Role id for a lock-like with-expression, or None if not a lock."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    ):
        owner = class_name or "<module>"
        return f"{module.module_name}.{owner}.{expr.attr}"
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return f"{module.module_name}.{expr.id}"
    return None


class _FunctionLockVisitor(ast.NodeVisitor):
    """Walks one function body tracking the stack of held lock roles."""

    def __init__(
        self,
        module: ModuleInfo,
        class_name: str | None,
        lock_kinds: dict[str, str],
        edges: list[_Edge],
        self_findings: list[Finding],
    ) -> None:
        self.module = module
        self.class_name = class_name
        self.lock_kinds = lock_kinds
        self.edges = edges
        self.self_findings = self_findings
        self.held: list[str] = []

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            lock_id = _lock_node_id(self.module, self.class_name, item.context_expr)
            if lock_id is None:
                continue
            if lock_id in self.held:
                if self.lock_kinds.get(lock_id) == "Lock":
                    self.self_findings.append(
                        self.module.finding(
                            RULE,
                            item.context_expr,
                            f"nested acquisition of non-reentrant lock "
                            f"{lock_id} — guaranteed self-deadlock",
                        )
                    )
                continue
            for holder in self.held:
                self.edges.append(
                    _Edge(
                        src=holder,
                        dst=lock_id,
                        rel_path=self.module.rel_path,
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                    )
                )
            self.held.append(lock_id)
            acquired.append(lock_id)
        for child in node.body:
            self.visit(child)
        for lock_id in reversed(acquired):
            self.held.remove(lock_id)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # Nested defs get their own visitor (fresh held-stack): a closure is
    # not statically "inside" the enclosing with at call time.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return


class LockOrderChecker(Checker):
    rule = RULE
    description = (
        "nested `with lock` blocks define a lock-acquisition order; "
        "a cycle across the codebase is a potential ABBA deadlock"
    )

    def __init__(self) -> None:
        self._edges: list[_Edge] = []
        self._self_findings: list[Finding] = []
        self._lock_kinds: dict[str, str] = {}

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        # Pass 1: lock kinds, so nested same-lock `with`s can tell a
        # Lock (self-deadlock) from an RLock (fine).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for _, attr, kind in self_lock_assignments(module, node):
                    lock_id = f"{module.module_name}.{node.name}.{attr}"
                    self._lock_kinds[lock_id] = kind

        # Pass 2: per-function lexical nesting.
        def walk_scope(body: list[ast.stmt], class_name: str | None) -> None:
            for item in body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visitor = _FunctionLockVisitor(
                        module, class_name, self._lock_kinds,
                        self._edges, self._self_findings,
                    )
                    for stmt in item.body:
                        visitor.visit(stmt)
                    walk_scope(item.body, class_name)
                elif isinstance(item, ast.ClassDef):
                    walk_scope(item.body, item.name)

        walk_scope(module.tree.body, None)
        return []

    def finalize(self) -> list[Finding]:
        findings = list(self._self_findings)
        adjacency: dict[str, dict[str, _Edge]] = {}
        for edge in self._edges:
            adjacency.setdefault(edge.src, {}).setdefault(edge.dst, edge)

        # DFS cycle detection; report each cycle once, anchored at its
        # lexicographically-first edge so the finding is deterministic.
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[str, int] = {}
        stack: list[str] = []
        cycles: list[list[str]] = []

        def dfs(node: str) -> None:
            color[node] = GRAY
            stack.append(node)
            for neighbor in sorted(adjacency.get(node, {})):
                state = color.get(neighbor, WHITE)
                if state == GRAY:
                    cycle = stack[stack.index(neighbor):] + [neighbor]
                    cycles.append(cycle)
                elif state == WHITE:
                    dfs(neighbor)
            stack.pop()
            color[node] = BLACK

        for node in sorted(adjacency):
            if color.get(node, WHITE) == WHITE:
                dfs(node)

        seen: set[frozenset[str]] = set()
        for cycle in cycles:
            key = frozenset(cycle)
            if key in seen:
                continue
            seen.add(key)
            edge_sites = []
            for src, dst in zip(cycle, cycle[1:]):
                edge = adjacency[src][dst]
                edge_sites.append(f"{src} -> {dst} ({edge.rel_path}:{edge.line})")
            anchor = adjacency[cycle[0]][cycle[1]]
            findings.append(
                Finding.make(
                    RULE,
                    anchor.rel_path,
                    anchor.line,
                    anchor.col,
                    "lock-acquisition cycle (potential ABBA deadlock): "
                    + "; ".join(edge_sites),
                )
            )
        return findings
