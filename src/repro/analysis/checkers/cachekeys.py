"""cache-revision: cross-query cache keys must carry a revision stamp.

The PR 5 race this guards: thread A computes an entry against schema
version N, the schema mutates to N+1 and clears the cache, then A's
stale ``put`` lands — and without a version term in the key, every
future lookup at N+1 hits the poisoned entry. With the version in the
key, the stale entry lands under a key nobody at N+1 will ever ask for:
stale-put becomes garbage, not corruption.

Heuristics (syntactic by design, see ``checkers.base``):

- A call site is *cache-like* when it is ``recv.get(key, ...)`` /
  ``recv.put(key, ...)`` and the receiver's terminal name contains
  ``cache``, or the receiver is ``self.X`` where the enclosing class
  assigns ``self.X = SomethingCache(...)`` (catches ``self._results =
  TTLResultCache(...)``).
- The key expression passes when any identifier, attribute, keyword or
  string constant inside it contains ``version`` / ``revision`` /
  ``generation``. A bare-``Name`` key is resolved through enclosing
  function scopes (``key = (kw, k, self._engine_version())`` then
  ``cache.get(key)`` passes).

Intentionally version-free caches (the stale-answer cache, sealed
per-snapshot caches) take an inline
``# questlint: disable=cache-revision  # reason``.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import (
    Checker,
    ModuleInfo,
    is_self_attribute,
    terminal_attr,
)
from repro.analysis.findings import Finding

RULE = "cache-revision"
STAMP_TERMS = ("version", "revision", "generation")


def _collect_scope_assignments(
    body: list[ast.stmt],
) -> dict[str, list[ast.expr]]:
    """Name → RHS exprs for simple assignments in one scope.

    Does not descend into nested function/class definitions — those are
    separate scopes with their own frames.
    """
    assignments: dict[str, list[ast.expr]] = {}

    def walk(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assignments.setdefault(target.id, []).append(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    assignments.setdefault(stmt.target.id, []).append(stmt.value)
            for child_body in _stmt_bodies(stmt):
                walk(child_body)

    walk(body)
    return assignments


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    handlers = getattr(stmt, "handlers", None)
    if handlers:
        for handler in handlers:
            bodies.append(handler.body)
    return bodies


def _expr_has_stamp(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        text: str | None = None
        if isinstance(node, ast.Name):
            text = node.id
        elif isinstance(node, ast.Attribute):
            text = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value
        elif isinstance(node, ast.keyword) and node.arg:
            text = node.arg
        if text is not None:
            lowered = text.lower()
            if any(term in lowered for term in STAMP_TERMS):
                return True
    return False


def _key_has_stamp(
    expr: ast.expr, scopes: list[dict[str, list[ast.expr]]]
) -> bool:
    if _expr_has_stamp(expr):
        return True
    # Resolve bare names through enclosing scopes, innermost first.
    pending = [expr]
    seen: set[str] = set()
    while pending:
        node = pending.pop()
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Name) or inner.id in seen:
                continue
            seen.add(inner.id)
            for scope in reversed(scopes):
                values = scope.get(inner.id)
                if not values:
                    continue
                for value in values:
                    if _expr_has_stamp(value):
                        return True
                    pending.append(value)
                break
    return False


def _class_cache_attrs(cls: ast.ClassDef) -> set[str]:
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        ctor = terminal_attr(node.value.func)
        if ctor is None or not ctor.endswith("Cache"):
            continue
        for target in node.targets:
            if is_self_attribute(target):
                assert isinstance(target, ast.Attribute)
                attrs.add(target.attr)
    return attrs


class CacheRevisionChecker(Checker):
    rule = RULE
    description = (
        "cache get/put keys must carry a version/revision/generation "
        "stamp so clear-then-stale-put races poison nothing"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        module_scope = _collect_scope_assignments(module.tree.body)

        def visit(
            stmts: list[ast.stmt],
            class_attrs: list[set[str]],
            scopes: list[dict[str, list[ast.expr]]],
        ) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, class_attrs + [_class_cache_attrs(stmt)], scopes)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    frame = _collect_scope_assignments(stmt.body)
                    self._scan_calls(
                        module, stmt, class_attrs, scopes + [frame], findings
                    )
                    visit(stmt.body, class_attrs, scopes + [frame])
                else:
                    # Defs nested inside try/if/with blocks are still
                    # definitions in the enclosing scope.
                    for body in _stmt_bodies(stmt):
                        visit(body, class_attrs, scopes)

        visit(module.tree.body, [], [module_scope])
        return findings

    def _scan_calls(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        class_attrs: list[set[str]],
        scopes: list[dict[str, list[ast.expr]]],
        findings: list[Finding],
    ) -> None:
        for node in self._own_calls(func):
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in ("get", "put") or not node.args:
                continue
            receiver = node.func.value
            if not self._is_cache_receiver(receiver, class_attrs):
                continue
            if _key_has_stamp(node.args[0], scopes):
                continue
            recv_name = terminal_attr(receiver) or "<expr>"
            findings.append(
                module.finding(
                    RULE,
                    node,
                    f"key for {recv_name}.{method}() carries no "
                    "version/revision/generation stamp — a clear-then-"
                    "stale-put race can poison this cache across schema "
                    "mutations",
                )
            )

    @staticmethod
    def _own_calls(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[ast.Call]:
        """Call nodes in *func* excluding nested def/class bodies."""
        calls: list[ast.Call] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(child, ast.Call):
                    calls.append(child)
                walk(child)

        walk(func)
        return calls

    @staticmethod
    def _is_cache_receiver(
        receiver: ast.expr, class_attrs: list[set[str]]
    ) -> bool:
        terminal = terminal_attr(receiver)
        if terminal is not None and "cache" in terminal.lower():
            return True
        if is_self_attribute(receiver):
            assert isinstance(receiver, ast.Attribute)
            return any(receiver.attr in attrs for attrs in class_attrs)
        return False
