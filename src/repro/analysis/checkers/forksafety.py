"""fork-safety: every instance-held lock must register with repro.forksafe.

PR 5's fork story: ``os.fork`` copies a lock in whatever state a sibling
thread left it, so a child that inherits a *held* lock deadlocks the
first time it touches the guarded structure. ``repro.forksafe`` fixes
this by re-initialising registered locks in ``after_in_child`` hooks —
but only for holders that actually registered. This checker makes the
registration mechanical: any class that assigns a
``threading.Lock``/``RLock``/``Condition`` to ``self.*`` must call
``register_lock_holder`` somewhere in its body (the universal idiom in
this codebase is a module-level resetter plus a
``register_lock_holder(self, _reset_x)`` call in ``__init__``).

Module-level locks are exempt: they are rebuilt per-process on import in
forked *spawn* children and reset explicitly where it matters
(``core/batch.py``); the fork-deadlock bugs PR 5 chased all involved
instance state captured by a live engine.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import (
    Checker,
    ModuleInfo,
    is_self_attribute,
    resolved_call_name,
)
from repro.analysis.findings import Finding

LOCK_CONSTRUCTORS = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
}

RULE = "fork-safety"


def self_lock_assignments(
    module: ModuleInfo, cls: ast.ClassDef
) -> list[tuple[ast.AST, str, str]]:
    """``(node, attr, kind)`` for each ``self.X = threading.Lock()`` in *cls*.

    Shared with the lock-order checker, which needs lock kinds to decide
    whether a nested re-acquisition is a self-deadlock (Lock) or benign
    reentrancy (RLock).
    """
    found: list[tuple[ast.AST, str, str]] = []
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            targets: list[ast.expr] = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        resolved = resolved_call_name(module, value)
        kind = LOCK_CONSTRUCTORS.get(resolved or "")
        if kind is None:
            continue
        for target in targets:
            if is_self_attribute(target):
                assert isinstance(target, ast.Attribute)
                found.append((node, target.attr, kind))
    return found


def _registers_forksafe(module: ModuleInfo, cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        resolved = resolved_call_name(module, node)
        if resolved is not None and resolved.endswith("register_lock_holder"):
            return True
    return False


class ForkSafetyChecker(Checker):
    rule = RULE
    description = (
        "threading locks assigned to self.* must register with "
        "repro.forksafe.register_lock_holder so forked children reset them"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks = self_lock_assignments(module, node)
            if not locks or _registers_forksafe(module, node):
                continue
            for assign, attr, kind in locks:
                findings.append(
                    module.finding(
                        RULE,
                        assign,
                        f"{node.name}.{attr} is a threading.{kind} held on "
                        f"self, but {node.name} never calls "
                        "repro.forksafe.register_lock_holder — a fork while "
                        "a sibling thread holds it deadlocks the child",
                    )
                )
        return findings
