"""Checker protocol plus the shared AST plumbing every checker leans on.

Checkers see one :class:`ModuleInfo` at a time via ``check_module`` and
may hold cross-file state for a final ``finalize`` pass (the lock-order
graph and the fault-point registry are whole-program properties). The
driver guarantees ``check_module`` is called for every module before
``finalize``.

The helpers here deliberately stay *syntactic*: questlint never imports
the code it analyses, so "what does this name refer to" is answered by
the module's import table and simple assignment scans, not a type
system. That is the right trade for invariant linting — heuristic
receivers plus inline suppressions beat a type-checker-shaped
dependency the container cannot install.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.suppress import Suppressions


@dataclass
class ModuleInfo:
    """One parsed source file plus everything checkers need about it."""

    path: Path
    rel_path: str
    module_name: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    imports: "ImportMap" = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap.from_tree(self.tree)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding.make(rule, self.rel_path, int(line), int(col), message)


class Checker:
    """Base class for questlint checkers."""

    rule: str = ""
    description: str = ""

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        return []

    def finalize(self) -> list[Finding]:
        """Whole-program findings, after every module has been visited."""
        return []


class ImportMap:
    """Local name → dotted origin, from a module's import statements.

    ``import threading`` maps ``threading -> threading``;
    ``from threading import Lock as L`` maps ``L -> threading.Lock``;
    ``from repro import faults`` maps ``faults -> repro.faults``.
    """

    def __init__(self, names: dict[str, str]) -> None:
        self._names = names

    @staticmethod
    def from_tree(tree: ast.Module) -> "ImportMap":
        names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    names[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    names[local] = f"{node.module}.{alias.name}"
        return ImportMap(names)

    def resolve(self, name: str) -> str:
        return self._names.get(name, name)


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def resolved_call_name(module: ModuleInfo, call: ast.Call) -> str | None:
    """Dotted name of a call target with its head import-resolved.

    ``Lock()`` after ``from threading import Lock`` resolves to
    ``threading.Lock``; ``threading.RLock()`` stays ``threading.RLock``;
    ``self.thing()`` resolves to ``self.thing``.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved_head = module.imports.resolve(head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def terminal_attr(node: ast.expr) -> str | None:
    """The last identifier of a name/attribute chain (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_self_attribute(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def class_functions(cls: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
