"""Checker registry: one checker per enforced invariant."""

from __future__ import annotations

from repro.analysis.checkers.base import Checker, ModuleInfo
from repro.analysis.checkers.cachekeys import CacheRevisionChecker
from repro.analysis.checkers.clocks import ClockDisciplineChecker
from repro.analysis.checkers.faultpoints import FaultPointChecker
from repro.analysis.checkers.forksafety import ForkSafetyChecker
from repro.analysis.checkers.journaling import JournalDisciplineChecker
from repro.analysis.checkers.lockorder import LockOrderChecker


def all_checkers() -> list[Checker]:
    """Fresh checker instances (checkers carry cross-file state)."""
    return [
        ForkSafetyChecker(),
        LockOrderChecker(),
        CacheRevisionChecker(),
        JournalDisciplineChecker(),
        FaultPointChecker(),
        ClockDisciplineChecker(),
    ]


__all__ = [
    "Checker",
    "ModuleInfo",
    "all_checkers",
    "CacheRevisionChecker",
    "ClockDisciplineChecker",
    "FaultPointChecker",
    "ForkSafetyChecker",
    "JournalDisciplineChecker",
    "LockOrderChecker",
]
