"""Suppression comments: ``# questlint: disable=RULE`` parsing.

Two forms, both parsed from raw source lines (not the AST, so comments
on any line work — including lines the parser folds away):

- ``# questlint: disable=rule-a,rule-b`` — suppresses those rules for
  findings anchored to *that line*. Convention: follow with a second
  ``#`` comment giving the reason, e.g.
  ``# questlint: disable=cache-revision  # sealed snapshot, cache dies with it``.
- ``# questlint: disable-file=rule-a`` — anywhere in the file,
  suppresses the rule for the whole file.

``disable=all`` / ``disable-file=all`` waive every rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(r"#\s*questlint:\s*disable=([A-Za-z0-9_,\- ]+)")
_FILE_RE = re.compile(r"#\s*questlint:\s*disable-file=([A-Za-z0-9_,\- ]+)")


def _split_rules(raw: str) -> frozenset[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


@dataclass
class Suppressions:
    """Parsed suppression directives for one file."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = field(default_factory=frozenset)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_wide or "all" in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return rule in rules or "all" in rules


def parse_suppressions(source: str) -> Suppressions:
    by_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "questlint" not in text:
            continue
        match = _FILE_RE.search(text)
        if match:
            file_wide.update(_split_rules(match.group(1)))
            continue
        match = _LINE_RE.search(text)
        if match:
            existing = by_line.get(lineno, frozenset())
            by_line[lineno] = existing | _split_rules(match.group(1))
    return Suppressions(by_line=by_line, file_wide=frozenset(file_wide))
