"""The committed questlint baseline: parked findings with justifications.

The baseline is a JSON file listing finding fingerprints the team has
explicitly accepted, each with a written justification. The CI gate
fails on any finding *not* in the baseline, so the file is a ratchet:
it should only ever shrink. (Prefer inline
``# questlint: disable=RULE  # reason`` for intentionally-exempt sites;
the baseline is for bulk onboarding of pre-existing debt.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "questlint-baseline.json"


@dataclass
class Baseline:
    """Accepted findings, keyed by fingerprint."""

    entries: dict[str, dict[str, Any]] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    @staticmethod
    def load(path: Path) -> "Baseline":
        if not path.exists():
            return Baseline()
        raw = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline format in {path}")
        entries: dict[str, dict[str, Any]] = {}
        for entry in raw.get("entries", []):
            fingerprint = str(entry["fingerprint"])
            entries[fingerprint] = dict(entry)
        return Baseline(entries=entries)

    @staticmethod
    def from_findings(
        findings: Iterable[Finding],
        justification: str = "TODO: justify or fix",
    ) -> "Baseline":
        entries: dict[str, dict[str, Any]] = {}
        for finding in findings:
            entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "justification": justification,
            }
        return Baseline(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": sorted(
                self.entries.values(),
                key=lambda e: (str(e.get("path", "")), str(e.get("fingerprint", ""))),
            ),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
