"""Runtime lock-order race detection for the test suites.

The static ``lock-order`` questlint rule only sees *lexically* nested
``with`` blocks; real inversions assemble across call boundaries — a
method acquires the cache lock, then calls into the graph, which takes
the derived lock. This module is the runtime half, in the spirit of
pthread lock-order witnesses and Go's mutex profiling: an instrumented
lock wrapper that maintains each thread's stack of held locks and a
global acquired-after graph, flagging

- **inversion** — acquiring B while holding A when some earlier
  acquisition established the opposite order (an ABBA deadlock waiting
  for the right interleaving, even if this run got lucky);
- **self-deadlock** — re-acquiring a non-reentrant lock the same thread
  already holds (raised immediately as :class:`LockWatchError` rather
  than letting the test hang);
- **fork-while-held** — an ``os.fork`` while *any* thread holds a
  watched lock (recorded as an event, not a failure: the concurrency
  suite deliberately forks under load to prove the
  :mod:`repro.forksafe` resets work).

Lock identity is the *creation site* (``module:line``), not the
instance — matching the static checker's per-role graph, so two
``LRUCache`` instances share one node and an ordering discipline is
enforced per role. Edges between different instances of the *same* role
are skipped (no ordering exists between sibling caches).

Enabled per-test by the conftest fixture (see ``tests/conftest.py``):
:func:`install` monkeypatches ``threading.Lock``/``RLock`` with
factories that wrap locks created by ``repro.*`` modules only — stdlib
internals (``threading.Condition``'s waiter locks, semaphores) keep
their raw primitives. Overhead is a dict update and a list append per
acquire; edge discovery work happens only the first time a new ordered
pair appears.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "LockWatchError",
    "LockWatcher",
    "Violation",
    "WatchedLock",
    "install",
    "uninstall",
    "active_watcher",
]


class LockWatchError(RuntimeError):
    """Raised on a guaranteed self-deadlock instead of hanging the test."""


@dataclass(frozen=True)
class Violation:
    """One detected ordering violation."""

    kind: str  # "inversion" | "self-deadlock"
    message: str
    stack: str = ""


@dataclass(frozen=True)
class ForkEvent:
    """A fork observed while watched locks were held."""

    held: tuple[str, ...]
    forking_thread_held: tuple[str, ...]


@dataclass
class _ThreadState:
    """Held-lock bookkeeping for one thread."""

    stack: list["WatchedLock"] = field(default_factory=list)
    counts: dict[int, int] = field(default_factory=dict)  # id(lock) -> depth


class WatchedLock:
    """A Lock/RLock wrapper reporting acquisitions to its watcher.

    Duck-compatible with the stdlib primitives for every use in this
    codebase (``with``, ``acquire``/``release``, ``locked``), and safe
    to hand to ``threading.Condition`` (which falls back to plain
    acquire/release when ``_release_save`` is absent).
    """

    __slots__ = ("name", "reentrant", "_lock", "_watcher")

    def __init__(
        self,
        watcher: "LockWatcher",
        name: str,
        lock: Any,
        reentrant: bool,
    ) -> None:
        self.name = name
        self.reentrant = reentrant
        self._lock = lock
        self._watcher = watcher

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._watcher._before_acquire(self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._watcher._note_acquired(self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._watcher._note_released(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._lock.locked())

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        kind = "RLock" if self.reentrant else "Lock"
        return f"<WatchedLock {kind} {self.name}>"


class LockWatcher:
    """Collects acquisition order across threads; owns the violation list.

    One watcher per test: the acquired-after graph is cumulative, so a
    shared watcher would let an edge from one test convict an unrelated
    ordering in another.
    """

    def __init__(self) -> None:
        # The watcher's own mutex is a raw lock (never watched), held
        # only for short bookkeeping sections that acquire nothing else.
        self._mutex = _RAW_LOCK()
        self._threads: dict[int, _ThreadState] = {}
        #: src role -> dst role -> site description of the first edge.
        self._edges: dict[str, dict[str, str]] = {}
        self._violations: list[Violation] = []
        self._fork_events: list[ForkEvent] = []

    # -- public API --------------------------------------------------------

    def lock(self, name: str, reentrant: bool = False) -> WatchedLock:
        """A watched lock with an explicit role name (for tests)."""
        raw = _RAW_RLOCK() if reentrant else _RAW_LOCK()
        return WatchedLock(self, name, raw, reentrant)

    def wrap(self, name: str, lock: Any, reentrant: bool) -> WatchedLock:
        """Wrap an existing primitive under a role name."""
        return WatchedLock(self, name, lock, reentrant)

    def violations(self) -> tuple[Violation, ...]:
        with self._mutex:
            return tuple(self._violations)

    def fork_events(self) -> tuple[ForkEvent, ...]:
        with self._mutex:
            return tuple(self._fork_events)

    def held_by_current_thread(self) -> tuple[str, ...]:
        state = self._thread_state()
        return tuple(lock.name for lock in state.stack)

    # -- bookkeeping -------------------------------------------------------

    def _thread_state(self) -> _ThreadState:
        ident = threading.get_ident()
        with self._mutex:
            state = self._threads.get(ident)
            if state is None:
                state = self._threads[ident] = _ThreadState()
            return state

    def _before_acquire(self, lock: WatchedLock) -> None:
        state = self._thread_state()
        if not lock.reentrant and state.counts.get(id(lock), 0) > 0:
            message = (
                f"self-deadlock: thread would re-acquire non-reentrant "
                f"lock {lock.name} it already holds "
                f"(held: {[l.name for l in state.stack]})"
            )
            with self._mutex:
                self._violations.append(
                    Violation(
                        kind="self-deadlock",
                        message=message,
                        stack="".join(traceback.format_stack(limit=12)),
                    )
                )
            raise LockWatchError(message)

    def _note_acquired(self, lock: WatchedLock) -> None:
        state = self._thread_state()
        depth = state.counts.get(id(lock), 0)
        state.counts[id(lock)] = depth + 1
        if depth > 0:  # reentrant re-acquisition: no new ordering facts
            state.stack.append(lock)
            return
        holders = [
            held for held in state.stack
            # Same-role siblings (two caches from one creation site)
            # carry no ordering discipline between them.
            if held.name != lock.name
        ]
        if holders:
            site = _caller_site()
            with self._mutex:
                for held in holders:
                    self._record_edge(held.name, lock.name, site)
        state.stack.append(lock)

    def _note_released(self, lock: WatchedLock) -> None:
        state = self._thread_state()
        depth = state.counts.get(id(lock), 0)
        if depth <= 1:
            state.counts.pop(id(lock), None)
        else:
            state.counts[id(lock)] = depth - 1
        # Remove the most recent occurrence (locks release LIFO in
        # practice, but tolerate out-of-order release).
        for i in range(len(state.stack) - 1, -1, -1):
            if state.stack[i] is lock:
                del state.stack[i]
                break

    def _record_edge(self, src: str, dst: str, site: str) -> None:
        """Add src -> dst (mutex held); flag if a reverse path exists."""
        targets = self._edges.setdefault(src, {})
        if dst in targets:
            return
        targets[dst] = site
        reverse = self._find_path(dst, src)
        if reverse is not None:
            chain = " -> ".join(reverse)
            first_site = self._edges[dst][reverse[1]]
            self._violations.append(
                Violation(
                    kind="inversion",
                    message=(
                        f"lock-order inversion: acquired {dst} before "
                        f"{src} (at {first_site}), but now {src} is held "
                        f"while acquiring {dst} (at {site}); cycle: "
                        f"{src} -> {dst}, {chain}"
                    ),
                    stack="".join(traceback.format_stack(limit=16)),
                )
            )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """A path start -> ... -> goal in the edge graph, if any."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for neighbor in self._edges.get(node, {}):
                if neighbor == goal:
                    return path + [goal]
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append((neighbor, path + [neighbor]))
        return None

    # -- fork integration --------------------------------------------------

    def _note_fork(self) -> None:
        """Called in the parent immediately before a fork."""
        ident = threading.get_ident()
        with self._mutex:
            held: list[str] = []
            own: list[str] = []
            for thread_ident, state in self._threads.items():
                names = [lock.name for lock in state.stack]
                held.extend(names)
                if thread_ident == ident:
                    own.extend(names)
            if held:
                self._fork_events.append(
                    ForkEvent(
                        held=tuple(sorted(held)),
                        forking_thread_held=tuple(sorted(own)),
                    )
                )

    def _reset_in_child(self) -> None:
        """Called in a forked child: sibling threads do not survive."""
        self._mutex = _RAW_LOCK()
        ident = threading.get_ident()
        self._threads = {
            ident: self._threads.get(ident, _ThreadState())
        }


# -- monkeypatch installation ---------------------------------------------

#: Pristine primitives, captured at import before any patching.
_RAW_LOCK = threading.Lock
_RAW_RLOCK = threading.RLock

_active: LockWatcher | None = None
_active_prefixes: tuple[str, ...] = ()
_fork_hooks_registered = False


def active_watcher() -> LockWatcher | None:
    return _active


def _caller_site(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    # Walk out of this module's own frames to the acquiring code.
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back  # type: ignore[assignment]
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    module = frame.f_globals.get("__name__", "<unknown>")
    return f"{module}:{frame.f_lineno}"


def _creation_site() -> tuple[str, str]:
    """(module, module:line) of the frame creating a lock."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back  # type: ignore[assignment]
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>", "<unknown>"
    module = frame.f_globals.get("__name__", "<unknown>")
    return module, f"{module}:{frame.f_lineno}"


def _make_factory(raw: Callable[[], Any], reentrant: bool) -> Callable[..., Any]:
    def factory(*args: Any, **kwargs: Any) -> Any:
        lock = raw(*args, **kwargs)
        watcher = _active
        if watcher is None:
            return lock
        module, site = _creation_site()
        if not module.startswith(_active_prefixes):
            return lock
        return WatchedLock(watcher, site, lock, reentrant)

    return factory


def _fork_before() -> None:
    watcher = _active
    if watcher is not None:
        watcher._note_fork()


def _fork_after_in_child() -> None:
    watcher = _active
    if watcher is not None:
        watcher._reset_in_child()


def install(
    watcher: LockWatcher, module_prefixes: tuple[str, ...] = ("repro",)
) -> None:
    """Patch ``threading.Lock``/``RLock`` to watch *module_prefixes* locks.

    Only locks *created while installed* are watched — long-lived
    session objects keep their raw (or previously-wrapped) locks. The
    :mod:`repro.forksafe` child resets re-create locks through the
    patched factories, so forked children stay watched too.
    """
    global _active, _active_prefixes, _fork_hooks_registered
    if _active is not None:
        raise LockWatchError("a LockWatcher is already installed")
    _active = watcher
    _active_prefixes = module_prefixes
    if not _fork_hooks_registered:
        os.register_at_fork(
            before=_fork_before, after_in_child=_fork_after_in_child
        )
        _fork_hooks_registered = True
    threading.Lock = _make_factory(_RAW_LOCK, reentrant=False)  # type: ignore[misc,assignment]
    threading.RLock = _make_factory(_RAW_RLOCK, reentrant=True)  # type: ignore[misc,assignment]


def uninstall() -> None:
    """Restore the raw primitives; already-wrapped locks keep reporting
    to their (now inert) watcher, which is harmless."""
    global _active
    threading.Lock = _RAW_LOCK  # type: ignore[misc]
    threading.RLock = _RAW_RLOCK  # type: ignore[misc]
    _active = None
